#!/usr/bin/env bash
# Refreshes BENCH_sim.json: times a --quick artefact sweep (into a temp
# dir, so committed results/ stay untouched) and hands the measurement
# to the sim_throughput harness, which adds driver-only and full-row
# events/sec and writes the JSON at the repo root.
#
#   scripts/bench_sim.sh            # full snapshot (commit the result)
#   scripts/bench_sim.sh --smoke    # small event counts, no quick study
#                                   # (CI: exercises the path only)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
    SMOKE=1
fi

# Build everything first so cargo run below measures runtime, not
# compilation.
cargo build --release -p dynvote-experiments -p dynvote-bench

if [[ "$SMOKE" == 1 ]]; then
    # CI path: keep it to seconds and leave the committed JSON alone.
    cargo run --release -p dynvote-bench --bin sim_throughput -- \
        --events 200000 --out "$(mktemp -d)/BENCH_sim.json"
    exit 0
fi

TMP_RESULTS="$(mktemp -d)"
trap 'rm -rf "$TMP_RESULTS"' EXIT
echo ">>> timing regenerate_results.sh --quick (into $TMP_RESULTS)"
START_NS=$(date +%s%N)
DYNVOTE_RESULTS_DIR="$TMP_RESULTS" scripts/regenerate_results.sh --quick
END_NS=$(date +%s%N)
QUICK_SECS=$(( (END_NS - START_NS) / 1000000 ))
QUICK_SECS="$((QUICK_SECS / 1000)).$(printf '%03d' $((QUICK_SECS % 1000)))"
echo ">>> quick study took ${QUICK_SECS}s"

cargo run --release -p dynvote-bench --bin sim_throughput -- \
    --quick-study-secs "$QUICK_SECS"
