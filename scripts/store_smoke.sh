#!/usr/bin/env bash
# End-to-end smoke test for the networked store: boots a real 3-node
# loopback cluster from the release binaries, drives it through
# put / partition / put / heal / get with dynvote-ctl, and asserts the
# voting guarantees hold over actual sockets:
#
#   * the majority side keeps accepting writes during the partition;
#   * the isolated minority refuses both reads and writes;
#   * after healing + recovery, every node serves the surviving value;
#   * a node killed -9 mid-write-stream restarts from its --data-dir
#     (snapshot + WAL), reports its durability counters, reruns
#     RECOVER, and serves the value committed while it was dead.
#
# Finishes with a small loopback throughput sanity check over ONE
# persistent pipelined connection (dynvote-ctl --repeat) and writes the
# numbers to store-smoke-logs/BENCH_smoke.json (override with
# BENCH_OUT=...). The committed repo-root BENCH_store.json is owned by
# the real load driver, `dynvote-bench store_throughput` — this smoke
# number only proves the batch path works end to end from the CLI.
#
# With `--shards`, runs the *multi-shard* phase instead: 2 shard
# groups over the same 3 nodes (`--shards 2 --shard-placement ring:3`),
# keyed puts routed across both groups, kill -9 of a replica that
# serves in both shards mid-stream, restart-from-disk with per-shard
# WAL namespaces (`--data-dir/shard-<k>/`), per-shard RECOVER through
# the shard envelope, and a full keyed read-back of every key.
#
#   scripts/store_smoke.sh            # full run
#   scripts/store_smoke.sh --shards   # multi-shard phase
#   BENCH_OUT=/tmp/b.json scripts/store_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-}"

PORT_BASE="${STORE_SMOKE_PORT_BASE:-7141}"
LOG_DIR="store-smoke-logs"
BENCH_OUT="${BENCH_OUT:-$LOG_DIR/BENCH_smoke.json}"
BENCH_OPS="${STORE_SMOKE_OPS:-500}"
BENCH_PIPELINE="${STORE_SMOKE_PIPELINE:-16}"

STORED=target/release/dynvote-stored
CTL=target/release/dynvote-ctl

cargo build --release -p dynvote-store

rm -rf "$LOG_DIR"
mkdir -p "$LOG_DIR"

A="127.0.0.1:$PORT_BASE"
B="127.0.0.1:$((PORT_BASE + 1))"
C="127.0.0.1:$((PORT_BASE + 2))"
PEERS="0=$A,1=$B,2=$C"

# PIDS is indexed by site (the *current* incarnation, for targeted
# kills); ALL_PIDS is append-only and holds every process this script
# ever spawned — daemons restarted mid-phase AND the background writer
# — so the EXIT trap reaps stragglers no matter when the script dies.
# Killing an already-dead pid is a harmless no-op.
PIDS=(0 0 0)
ALL_PIDS=()
cleanup() {
    for pid in "${ALL_PIDS[@]}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

# Starts (or restarts) one site. The data directory lives under
# LOG_DIR so CI's log artifact upload captures snapshot + WAL + epoch
# on failure. --bind-retry-ms rides out the kernel reclaiming a port a
# kill -9 abandoned.
start_node() {
    local site="$1"
    local role_flags
    if [[ "$MODE" == "--shards" ]]; then
        role_flags="--shards 2 --shard-placement ring:3"
    else
        role_flags="--value v0"
    fi
    # shellcheck disable=SC2086 # role_flags is a deliberate word list
    "$STORED" --site "$site" --policy odv --peers "$PEERS" $role_flags \
        --connect-timeout-ms 250 --read-timeout-ms 2000 \
        --backoff-ms 20 --backoff-cap-ms 200 \
        --data-dir "$LOG_DIR/data/node$site" --snapshot-every 8 \
        --bind-retry-ms 15000 --boot-recover-ms 20000 \
        --log "$LOG_DIR/node$site.log" &
    PIDS[site]=$!
    ALL_PIDS+=("${PIDS[site]}")
}

# Polls until the site answers status. Fails loudly — with the node's
# log — if the daemon process dies before ever binding (a silent exit
# here used to surface much later as a confusing protocol refusal).
wait_up() {
    local site="$1" addr="$2"
    for _ in $(seq 1 150); do
        if "$CTL" --node "$addr" status >/dev/null 2>&1; then
            return 0
        fi
        if ! kill -0 "${PIDS[$site]}" 2>/dev/null; then
            echo "FAIL: node $site ($addr) exited before binding; its log:" >&2
            sed 's/^/    /' "$LOG_DIR/node$site.log" >&2 || true
            exit 1
        fi
        sleep 0.1
    done
    echo "FAIL: node $site ($addr) never came up; its log:" >&2
    sed 's/^/    /' "$LOG_DIR/node$site.log" >&2 || true
    exit 1
}

for site in 0 1 2; do
    start_node "$site"
done
for site_addr in "0 $A" "1 $B" "2 $C"; do
    read -r site addr <<<"$site_addr"
    wait_up "$site" "$addr"
done
echo "== 3-node ODV cluster up on $PEERS (durable data dirs in $LOG_DIR/data)"


expect_granted() {
    local what="$1"; shift
    if ! "$@" >/dev/null; then
        echo "FAIL: $what should have been granted" >&2
        exit 1
    fi
    echo "ok: $what granted"
}

expect_refused() {
    local what="$1"; shift
    local status=0
    "$@" >/dev/null 2>&1 || status=$?
    if [[ "$status" -ne 1 ]]; then
        echo "FAIL: $what should have been refused (exit 1), got exit $status" >&2
        exit 1
    fi
    echo "ok: $what refused"
}

expect_value() {
    local what="$1" addr="$2" want="$3"
    local got
    got="$("$CTL" --node "$addr" get 2>/dev/null)"
    if [[ "$got" != "$want" ]]; then
        echo "FAIL: $what: wanted $want, got $got" >&2
        exit 1
    fi
    echo "ok: $what serves $want"
}

# ---------------------------------------------------------------------
# Multi-shard phase (scripts/store_smoke.sh --shards): both shard
# groups live on all three nodes (ring:3 on 3 sites), with shard 0
# coordinated by node 0 and shard 1 by node 1 — so killing node 2
# takes one *replica* out of each group while both coordinator funnels
# stay up.
# ---------------------------------------------------------------------
if [[ "$MODE" == "--shards" ]]; then
    KEYS=$(seq 1 24 | sed 's/^/key-/')

    echo "== shard map"
    MAP="$("$CTL" --node "$A" shardmap)"
    echo "$MAP" | sed 's/^/    /'
    for want in "epoch=1" "shards=2" "shard.0.placement=0,1,2" "shard.1.placement=1,2,0"; do
        if ! grep -q "^$want$" <<<"$MAP"; then
            echo "FAIL: shard map missing $want" >&2
            exit 1
        fi
    done

    echo "== keyed puts across both shard groups"
    for key in $KEYS; do
        expect_granted "putk $key" "$CTL" --node "$A" putk "$key" "v1-$key"
    done
    STATUS_A="$("$CTL" --node "$A" status)"
    for field in "shard.map_epoch=1" "shard.count=2" "shard.hosted=0,1"; do
        if ! grep -q "$field" <<<"$STATUS_A"; then
            echo "FAIL: sharded status missing $field:" >&2
            echo "$STATUS_A" >&2
            exit 1
        fi
    done
    # Both groups must actually have committed keyed writes — a broken
    # router that funnels every key to one shard fails here, not at
    # read-back.
    for shard in 0 1; do
        version=$(grep "^shard.$shard.version=" <<<"$STATUS_A" | cut -d= -f2)
        if [[ -z "$version" || "$version" -le 1 ]]; then
            echo "FAIL: shard $shard never committed a keyed write (version=${version:-missing})" >&2
            exit 1
        fi
    done
    echo "ok: both shard groups committed keyed writes"

    echo "== kill -9 node 2 (a replica in BOTH shard groups) mid-stream"
    kill -9 "${PIDS[2]}"
    PIDS[2]=0
    for key in $KEYS; do
        expect_granted "putk $key with node 2 dead" \
            "$CTL" --node "$A" putk "$key" "v2-$key"
    done

    echo "== restarting node 2 from its per-shard data dirs"
    for shard_dir in "$LOG_DIR/data/node2/shard-0" "$LOG_DIR/data/node2/shard-1"; do
        if [[ ! -d "$shard_dir" ]]; then
            echo "FAIL: expected per-shard durable namespace $shard_dir" >&2
            exit 1
        fi
    done
    start_node 2
    wait_up 2 "$C"
    for shard in 0 1; do
        expect_granted "recover shard $shard at restarted node 2" \
            "$CTL" --node "$C" --shard "$shard" recover
    done

    echo "== verifying every key after heal"
    for key in $KEYS; do
        got="$("$CTL" --node "$A" getk "$key" 2>/dev/null)"
        if [[ "$got" != "v2-$key" ]]; then
            echo "FAIL: getk $key: wanted v2-$key, got $got" >&2
            exit 1
        fi
    done
    echo "ok: all 24 keys serve their post-crash values"
    echo "PASS: multi-shard store smoke"
    exit 0
fi

# Healthy cluster: a write lands and replicates.
expect_granted "initial put" "$CTL" --node "$A" put hello
expect_value "replicated read at node 2" "$C" hello

# Cut node 2 off (both directions, like a dead link).
echo "== partitioning node 2 away"
"$CTL" --node "$A" deny 2 >/dev/null
"$CTL" --node "$B" deny 2 >/dev/null
"$CTL" --node "$C" deny 0 >/dev/null
"$CTL" --node "$C" deny 1 >/dev/null

# Majority keeps working; the minority must refuse everything.
expect_granted "majority put during partition" "$CTL" --node "$A" put world
expect_refused "minority put" "$CTL" --node "$C" put poison
expect_refused "minority get" "$CTL" --node "$C" get

# Heal, reintegrate, converge.
echo "== healing"
for addr in "$A" "$B" "$C"; do
    "$CTL" --node "$addr" heal-links >/dev/null
done
expect_granted "recover at node 2" "$CTL" --node "$C" recover
for addr in "$A" "$B" "$C"; do
    expect_value "healed read at $addr" "$addr" world
done
"$CTL" --node "$A" status | sed 's/^/    /'

# Crash-restart: kill -9 node 2 while a write stream is in flight,
# let the majority keep committing, then restart node 2 from its data
# directory and require it to converge on the last committed value.
echo "== kill -9 node 2 mid-write stream"
(
    for i in $(seq 1 20); do
        "$CTL" --node "$A" put "crash-$i" >/dev/null 2>&1 || true
    done
) &
WRITER=$!
ALL_PIDS+=("$WRITER")
sleep 0.2
kill -9 "${PIDS[2]}"
PIDS[2]=0
wait "$WRITER"
expect_granted "majority put with node 2 dead" "$CTL" --node "$A" put survivor

echo "== restarting node 2 from disk"
start_node 2
wait_up 2 "$C"
STATUS_C="$("$CTL" --node "$C" status)"
for field in "durability.enabled=true" "durability.snapshot_seq=" \
    "durability.wal_records=" "durability.last_fsync="; do
    if ! grep -q "$field" <<<"$STATUS_C"; then
        echo "FAIL: restarted node 2 status missing $field:" >&2
        echo "$STATUS_C" >&2
        exit 1
    fi
done
echo "ok: restarted node 2 reports durability counters"
expect_granted "recover at restarted node 2" "$CTL" --node "$C" recover
for addr in "$A" "$B" "$C"; do
    expect_value "post-crash read at $addr" "$addr" survivor
done

# Loopback throughput sanity check: one dynvote-ctl process, ONE
# persistent pipelined connection, $BENCH_OPS operations — the batch
# path the pipelined transport exists for. (The committed saturation
# numbers come from `dynvote-bench store_throughput`.)
echo "== measuring $BENCH_OPS puts + $BENCH_OPS gets (pipeline $BENCH_PIPELINE, one connection each)"
start_ns=$(date +%s%N)
"$CTL" --node "$A" put bench --repeat "$BENCH_OPS" --pipeline "$BENCH_PIPELINE" >/dev/null
put_ns=$(( $(date +%s%N) - start_ns ))
start_ns=$(date +%s%N)
"$CTL" --node "$B" get --repeat "$BENCH_OPS" --pipeline "$BENCH_PIPELINE" >/dev/null
get_ns=$(( $(date +%s%N) - start_ns ))

awk -v ops="$BENCH_OPS" -v depth="$BENCH_PIPELINE" -v put_ns="$put_ns" -v get_ns="$get_ns" 'BEGIN {
    put_secs = put_ns / 1e9; get_secs = get_ns / 1e9
    printf "{\n"
    printf "  \"generated_by\": \"scripts/store_smoke.sh (3-node ODV loopback cluster, dynvote-ctl --repeat batch mode)\",\n"
    printf "  \"cluster\": { \"nodes\": 3, \"policy\": \"odv\", \"transport\": \"tcp loopback\", \"durable\": true },\n"
    printf "  \"pipeline_depth\": %d,\n", depth
    printf "  \"put\": { \"ops\": %d, \"secs\": %.3f, \"requests_per_sec\": %.0f },\n", ops, put_secs, ops / put_secs
    printf "  \"get\": { \"ops\": %d, \"secs\": %.3f, \"requests_per_sec\": %.0f },\n", ops, get_secs, ops / get_secs
    printf "  \"note\": \"one persistent connection per command, durable (fsync) daemons; see BENCH_store.json for the non-durable saturation numbers\"\n"
    printf "}\n"
}' > "$BENCH_OUT"

echo "== wrote $BENCH_OUT"
cat "$BENCH_OUT"
echo "PASS: store smoke"
