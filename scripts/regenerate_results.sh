#!/usr/bin/env bash
# Regenerates every experiment artefact into results/ at full fidelity.
# Takes a few minutes; pass --quick through for a fast smoke run, e.g.:
#   scripts/regenerate_results.sh --quick
# Set DYNVOTE_RESULTS_DIR to write somewhere other than results/ (e.g.
# a temp dir when timing a --quick run without clobbering the committed
# full-fidelity artefacts).
set -euo pipefail
cd "$(dirname "$0")/.."
RESULTS_DIR="${DYNVOTE_RESULTS_DIR:-results}"
mkdir -p "$RESULTS_DIR"
BINS=(table1 table2 table3 analytic_check reliability access_rate_sweep \
      witness_study weight_study ablation_rejoin ablation_lexicon \
      ci_calibration outage_causes p2p_study study)
for bin in "${BINS[@]}"; do
    echo ">>> $bin $*"
    cargo run --release -p dynvote-experiments --bin "$bin" -- "$@" \
        > "$RESULTS_DIR/$bin.txt"
done
echo "done; see $RESULTS_DIR/"
