#!/usr/bin/env bash
# Regenerates every experiment artefact into results/ at full fidelity.
# Takes a few minutes; pass --quick through for a fast smoke run, e.g.:
#   scripts/regenerate_results.sh --quick
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
BINS=(table1 table2 table3 analytic_check reliability access_rate_sweep \
      witness_study weight_study ablation_rejoin ablation_lexicon \
      ci_calibration outage_causes p2p_study study)
for bin in "${BINS[@]}"; do
    echo ">>> $bin $*"
    cargo run --release -p dynvote-experiments --bin "$bin" -- "$@" \
        > "results/$bin.txt"
done
echo "done; see results/"
