#![warn(missing_docs)]

//! Dynamic voting protocols for replicated data — a full reproduction
//! of *"Efficient Dynamic Voting Algorithms"* (Pâris & Long,
//! ICDE 1988).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`types`] — site identifiers, one-word site sets, vote maps;
//! * [`topology`] — non-partitionable segments joined by gateway hosts;
//! * [`core`] — the protocols: Algorithm 1, the READ/WRITE/RECOVER
//!   planners, and the MCV/DV/LDV/ODV/TDV/OTDV policy state machines
//!   (plus Available-Copy, weighted, witness and vote-reassignment
//!   extensions);
//! * [`sim`] — the discrete-event engine with batch-means statistics;
//! * [`availability`] — the paper's §4 study: Table 1 site models, the
//!   Figure 8 network, configurations A–H, and the experiment runner;
//! * [`replica`] — a message-level replicated store (and multi-file
//!   directory) that executes the same planners, with fault injection
//!   and an always-on invariant monitor;
//! * [`analytic`] — exact Markov-chain models cross-validating the
//!   simulator.
//!
//! # Example: a replicated value under Optimistic Dynamic Voting
//!
//! ```
//! use dynamic_voting::replica::{ClusterBuilder, Protocol};
//! use dynamic_voting::types::SiteId;
//!
//! let mut cluster = ClusterBuilder::new()
//!     .copies([0, 1, 2])
//!     .protocol(Protocol::Odv)
//!     .build_with_value(String::from("v1"));
//!
//! cluster.write(SiteId::new(0), "v2".into())?;
//! cluster.fail_site(SiteId::new(1)); // 2 of 3 is still a majority
//! assert_eq!(cluster.read(SiteId::new(2))?, "v2");
//!
//! cluster.repair_site(SiteId::new(1));
//! cluster.recover(SiteId::new(1))?; // Figure 3's RECOVER
//! assert!(cluster.checker().violations().is_empty());
//! # Ok::<(), dynamic_voting::types::AccessError>(())
//! ```
//!
//! # Example: measuring availability the paper's way
//!
//! ```
//! use dynamic_voting::availability::config::CONFIG_B;
//! use dynamic_voting::availability::run::{simulate, Params};
//! use dynamic_voting::core::policy::PolicyKind;
//!
//! let result = simulate(PolicyKind::Ldv, &CONFIG_B, &Params::quick_test());
//! assert!(result.unavailability < 0.01);
//! ```

pub use dynvote_analytic as analytic;
pub use dynvote_availability as availability;
pub use dynvote_core as core;
pub use dynvote_replica as replica;
pub use dynvote_sim as sim;
pub use dynvote_topology as topology;
pub use dynvote_types as types;
