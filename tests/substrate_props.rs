//! Property tests on the substrates: topology reachability, the event
//! queue, and vote arithmetic. These are the foundations every
//! availability number rests on.

use dynamic_voting::sim::{EventQueue, SimRng, SimTime};
use dynamic_voting::topology::{Network, NetworkBuilder};
use dynamic_voting::types::{SiteId, SiteSet, VoteMap};
use proptest::prelude::*;

/// An arbitrary (valid) three-segment network over 9 sites with
/// gateways chosen by the generator.
fn arb_network() -> impl Strategy<Value = Network> {
    // Gateways: one member of segment A bridging to B, one bridging to C.
    (0usize..3, 0usize..3).prop_map(|(gw_b, gw_c)| {
        NetworkBuilder::new()
            .segment("a", [0, 1, 2])
            .segment("b", [3, 4, 5])
            .segment("c", [6, 7, 8])
            .bridge(gw_b, "b")
            .bridge(gw_c, "c")
            .build()
            .expect("generator produces valid topologies")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reachability groups are always a partition of the up sites.
    #[test]
    fn reachability_is_a_partition(net in arb_network(), up_bits in 0u64..512) {
        let up = SiteSet::from_bits(up_bits);
        let reach = net.reachability(up);
        let mut union = SiteSet::EMPTY;
        for &g in reach.groups() {
            prop_assert!(!g.is_empty());
            prop_assert!(union.is_disjoint(g));
            union |= g;
        }
        prop_assert_eq!(union, up & net.sites());
    }

    /// Bringing a site up only *coarsens* the partition: every group of
    /// the smaller up-set is contained in a single group of the larger.
    /// (Repairs can merge partitions; they can never split one.)
    #[test]
    fn repairs_coarsen_reachability(net in arb_network(), up_bits in 0u64..512, extra in 0usize..9) {
        let up = SiteSet::from_bits(up_bits) & net.sites();
        let more = up.with(SiteId::new(extra));
        let before = net.reachability(up);
        let after = net.reachability(more);
        for &g in before.groups() {
            let containing = after
                .groups()
                .iter()
                .filter(|&&h| !(g & h).is_empty())
                .count();
            prop_assert_eq!(containing, 1, "group {} split by a repair", g);
            let host = after
                .groups()
                .iter()
                .find(|&&h| g.is_subset_of(h))
                .copied();
            prop_assert!(host.is_some(), "group {} not contained after repair", g);
        }
    }

    /// Co-segment sites are in the same group whenever both are up —
    /// the non-partitionable-segment axiom TDV relies on.
    #[test]
    fn co_segment_sites_never_separate(net in arb_network(), up_bits in 0u64..512) {
        let up = SiteSet::from_bits(up_bits) & net.sites();
        let reach = net.reachability(up);
        for a in up.iter() {
            for b in up.iter() {
                if net.same_segment(a, b) {
                    prop_assert!(
                        reach.can_communicate(a, b),
                        "{a} and {b} share a segment but were separated"
                    );
                }
            }
        }
    }

    /// The event queue pops every scheduled event exactly once, in
    /// non-decreasing time order, FIFO among equal times.
    #[test]
    fn queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u32..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::at_days(f64::from(t)), i);
        }
        let mut popped: Vec<(f64, usize)> = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_days(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated among equal times");
            }
        }
        // Every index exactly once.
        let mut seen: Vec<usize> = popped.iter().map(|p| p.1).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
    }

    /// Vote arithmetic: group votes are additive over disjoint groups
    /// and bounded by the total; at most one of two disjoint groups can
    /// hold a strict majority.
    #[test]
    fn vote_map_arithmetic(
        weights in proptest::collection::vec(0u32..5, 8),
        split in 0u64..256,
    ) {
        let mut votes = VoteMap::empty();
        for (i, &w) in weights.iter().enumerate() {
            votes.set(SiteId::new(i), w);
        }
        let all = SiteSet::first_n(8);
        let a = SiteSet::from_bits(split) & all;
        let b = all - a;
        prop_assert_eq!(votes.of(a) + votes.of(b), votes.total());
        prop_assert!(votes.of(a) <= votes.total());
        prop_assert!(
            !(votes.is_strict_majority(a) && votes.is_strict_majority(b)),
            "two disjoint strict majorities"
        );
    }

    /// The RNG's exponential sampler is memoryless enough for our use:
    /// all draws positive, and the empirical mean of a big batch lands
    /// near the requested mean.
    #[test]
    fn exponential_sampler_sane(seed in any::<u64>(), mean_x10 in 1u32..100) {
        let mean = f64::from(mean_x10) / 10.0;
        let mut rng = SimRng::new(seed);
        let n = 4_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let draw = rng.exponential(mean);
            prop_assert!(draw >= 0.0);
            sum += draw;
        }
        let sample_mean = sum / f64::from(n);
        // 6 sigma of the sample-mean distribution (σ = mean/√n).
        let tolerance = 6.0 * mean / f64::from(n).sqrt();
        prop_assert!(
            (sample_mean - mean).abs() < tolerance,
            "mean {sample_mean} vs {mean} (tolerance {tolerance})"
        );
    }
}
