//! Replays every minimized counterexample trace under `tests/traces/`
//! through the real cluster code and checks each file's pinned
//! expectation, so a behavioral change that invalidates a corpus trace
//! fails loudly with the file name attached.
//!
//! The corpus is the durable output of `dynvote-check` runs: hazard
//! traces are written verbatim from `--trace-dir` artifacts, and the
//! `expect: none` files pin correct behavior at the exact event
//! sequences where a bug (injected or historical) would surface.

use std::path::PathBuf;

use dynvote_check::{
    run, verify, CheckConfig, CheckEvent, Expectation, Scenario, TraceFile, World,
};
use dynvote_replica::Protocol;
use dynvote_types::{AccessError, SiteId};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/traces")
}

fn corpus() -> Vec<(String, TraceFile)> {
    let mut files: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/traces/ must exist")
        .map(|entry| entry.unwrap().path())
        .filter(|path| path.extension().is_some_and(|e| e == "trace"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).unwrap();
            let file = TraceFile::parse(&text)
                .unwrap_or_else(|error| panic!("{name}: malformed trace: {error}"));
            (name, file)
        })
        .collect()
}

/// Every corpus file replays to its pinned expectation.
#[test]
fn every_corpus_trace_replays_to_its_expectation() {
    let corpus = corpus();
    assert!(corpus.len() >= 6, "corpus unexpectedly small: {corpus:?}");
    for (name, file) in &corpus {
        verify(file).unwrap_or_else(|error| panic!("{name}: {error}"));
    }
}

/// The corpus covers both outcomes: minimized hazard forks AND
/// clean-replay pins. A corpus of only one kind has lost half its
/// regression value.
#[test]
fn corpus_covers_hazards_and_clean_pins() {
    let corpus = corpus();
    let forks = corpus
        .iter()
        .filter(|(_, f)| {
            matches!(
                &f.expect,
                Expectation::Violation { invariant, known_hazard }
                    if invariant == "lineage-fork" && *known_hazard
            )
        })
        .count();
    let clean = corpus
        .iter()
        .filter(|(_, f)| f.expect == Expectation::None)
        .count();
    assert!(forks >= 3, "expected ≥3 lineage-fork traces, got {forks}");
    assert!(clean >= 2, "expected ≥2 clean-pin traces, got {clean}");

    // Both topological claim policies are represented.
    for policy in [Protocol::Tdv, Protocol::Otdv] {
        assert!(
            corpus.iter().any(|(_, f)| f.scenario.policy == policy),
            "no corpus trace for {policy:?}"
        );
    }
}

/// Round-trip stability: re-rendering a parsed corpus file and parsing
/// it again yields the same trace, so the on-disk format is canonical.
#[test]
fn corpus_files_roundtrip_through_the_renderer() {
    for (name, file) in corpus() {
        let rendered = file.render();
        let reparsed = TraceFile::parse(&rendered)
            .unwrap_or_else(|error| panic!("{name}: re-render broke parsing: {error}"));
        assert_eq!(reparsed, file, "{name}: render/parse is not a fixpoint");
    }
}

/// Every pinned lineage-fork kernel is *rediscovered* by the parallel,
/// symmetry-quotiented checker — not merely replayed. For each fork
/// trace the checker runs at exactly the trace's depth with 4 worker
/// threads and `--symmetry on`, and must (a) classify the hazard and
/// (b) shrink some finding to the corpus trace's length, proving the
/// engine rewrite neither hid a kernel behind the quotient nor lost
/// ddmin minimality under parallel merge order.
#[test]
fn fork_kernels_survive_the_parallel_symmetric_checker() {
    let forks: Vec<_> = corpus()
        .into_iter()
        .filter(|(_, f)| {
            matches!(
                &f.expect,
                Expectation::Violation { invariant, .. } if invariant == "lineage-fork"
            )
        })
        .collect();
    assert!(forks.len() >= 4, "expected ≥4 fork kernels, got {forks:?}");
    for (name, file) in forks {
        let depth = file.events.len();
        let mut config = CheckConfig::new(file.scenario, depth)
            .threads(4)
            .symmetry(true);
        // Generous cap: on the two-segment topology dozens of
        // at-most-one-majority hazards surface a layer before the
        // lineage fork and would otherwise crowd it out of the record.
        config.max_findings = 256;
        let report = run(&config);
        assert!(
            report.known_hazards > 0,
            "{name}: the quotiented run lost the hazard"
        );
        assert_eq!(
            report.real_violations, 0,
            "{name}: unexpected real violation"
        );
        let minimal = report
            .findings
            .iter()
            .filter(|f| f.violation.invariant == "lineage-fork")
            .map(|f| f.shrunk.len())
            .min()
            .unwrap_or_else(|| panic!("{name}: no lineage-fork finding recorded"));
        assert_eq!(
            minimal, depth,
            "{name}: minimal shrunk length changed (corpus pins {depth})"
        );
    }
}

/// Replays one event sequence through an MCV world and an LDV world in
/// lockstep and returns the final `(mcv, ldv)` outcomes.
fn lockstep(
    events: &[CheckEvent],
) -> (
    dynvote_check::world::StepOutcome,
    dynvote_check::world::StepOutcome,
) {
    let mut mcv = World::new(&Scenario::new(Protocol::Mcv, 4, 1).unwrap());
    let mut ldv = World::new(&Scenario::new(Protocol::Ldv, 4, 1).unwrap());
    let mut last = None;
    for &event in events {
        let mcv_outcome = mcv.apply(event);
        let ldv_outcome = ldv.apply(event);
        assert!(mcv_outcome.granted, "MCV must grant every event here");
        assert!(mcv_outcome.oracle.is_none(), "MCV replay must stay clean");
        last = Some((mcv_outcome, ldv_outcome));
    }
    last.expect("at least one event")
}

/// The divergence behind `mcv-lone-rejoin-clean.trace`, pinned as a
/// dual-world replay since one trace file carries one policy: MCV
/// recovery is vacuous (no partition bookkeeping to rebuild), so MCV
/// grants the `recover 0` of a still-down site that LDV refuses with
/// OriginUnavailable. This is the minimal witness that MCV grants are
/// not a subset of LDV grants; `dynvote-check --diff mcv-ldv`
/// rediscovers it exhaustively.
#[test]
fn mcv_grants_the_lone_rejoin_that_ldv_refuses() {
    let (_, ldv) = lockstep(&[
        CheckEvent::Crash(SiteId::new(0)),
        CheckEvent::Recover(SiteId::new(0)),
    ]);
    assert!(!ldv.granted, "LDV must refuse the lone rejoin");
    assert!(
        matches!(ldv.refusal, Some(AccessError::OriginUnavailable { .. })),
        "expected OriginUnavailable, got {:?}",
        ldv.refusal
    );
}

/// The deeper, write-level divergence: after S0 misses a write, LDV's
/// current partition shrinks to {S1,S2,S3}. Crash S2 and S3, repair S0,
/// and write again — MCV sees two of four static votes with the
/// top-ranked copy S0 present and grants via its half-with-top-copy
/// tie-breaker, while LDV counts only S1 of its three-member partition
/// and refuses with NoQuorum. MCV's static majority counts the
/// repaired-but-stale S0; LDV's shrunk partition excludes it until it
/// recovers.
#[test]
fn mcv_tiebreak_grants_the_write_that_ldv_refuses() {
    let (_, ldv) = lockstep(&[
        CheckEvent::Crash(SiteId::new(0)),
        CheckEvent::Write(SiteId::new(1)),
        CheckEvent::Crash(SiteId::new(2)),
        CheckEvent::Crash(SiteId::new(3)),
        CheckEvent::Repair(SiteId::new(0)),
        CheckEvent::Write(SiteId::new(1)),
    ]);
    assert!(!ldv.granted, "LDV must refuse the post-repair write");
    assert!(
        matches!(ldv.refusal, Some(AccessError::NoQuorum { .. })),
        "expected NoQuorum, got {:?}",
        ldv.refusal
    );
}
