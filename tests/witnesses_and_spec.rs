//! Integration tests for the two §5 extensions working together with
//! the rest of the system: witness copies at message level, and the
//! plain-text study specification.

use dynamic_voting::availability::run::{run_trace, simulate_row, Params};
use dynamic_voting::availability::spec::{parse_study, ucsd_spec_text};
use dynamic_voting::core::policy::PolicyKind;
use dynamic_voting::replica::{Cluster, ClusterBuilder, Protocol};
use dynamic_voting::sim::Duration;
use dynamic_voting::types::{SiteId, SiteSet};
use proptest::prelude::*;

// ---- witnesses --------------------------------------------------------------

/// The paper's pitch for witnesses, end to end: 2 copies + 1 witness
/// keeps serving through any single participant failure, like 3 full
/// copies would — and the data always survives.
#[test]
fn two_copies_one_witness_survives_any_single_failure() {
    for down in 0..3usize {
        let mut c: Cluster<String> = ClusterBuilder::new()
            .copies([0, 1])
            .witnesses([2])
            .protocol(Protocol::Odv)
            .build_with_value("v1".into());
        c.write(SiteId::new(0), "v2".into()).unwrap();
        c.fail_site(SiteId::new(down));
        let origin = SiteId::new(if down == 0 { 1 } else { 0 });
        assert_eq!(c.read(origin).unwrap(), "v2", "after failing S{down}");
        c.write(origin, "v3".into()).unwrap();
        // Repair + recover restores the third participant.
        c.repair_site(SiteId::new(down));
        c.recover(SiteId::new(down)).unwrap();
        assert!(c.checker().violations().is_empty());
    }
}

/// The witness-placement availability claim from the `witness_study`
/// experiment, pinned as a test: a witness on reliable site 3 gives
/// 2-copies+witness the same measured availability as 3 full copies.
#[test]
fn witness_placement_matches_third_copy_availability() {
    use dynamic_voting::core::policy::{AvailabilityPolicy, DynamicPolicy, WitnessPolicy};
    let network = dynamic_voting::availability::network::ucsd_network();
    let params = Params {
        batch_len: Duration::days(5_000.0),
        batches: 6,
        ..Params::quick_test()
    };
    let policies: Vec<Box<dyn AvailabilityPolicy>> = vec![
        Box::new(WitnessPolicy::with_mode(
            SiteSet::from_indices([0, 1]),
            SiteSet::from_indices([2]),
            false,
        )),
        Box::new(DynamicPolicy::ldv(SiteSet::from_indices([0, 1, 2]))),
    ];
    let results = run_trace(
        &network,
        &dynamic_voting::availability::sites::UCSD_SITES,
        policies,
        &params,
        "wit",
    );
    let (witness, full) = (results[0].unavailability, results[1].unavailability);
    assert!(
        (witness - full).abs() <= (witness + full) * 0.5 + 1e-6,
        "witness {witness} vs third copy {full}: should be comparable"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Witness clusters keep all safety invariants under random
    /// schedules, exactly like copy-only clusters.
    #[test]
    fn witness_clusters_never_violate_invariants(
        steps in proptest::collection::vec((0usize..5, 0usize..4), 1..100),
    ) {
        let mut c: Cluster<u64> = ClusterBuilder::new()
            .copies([0, 1, 3])
            .witnesses([2])
            .protocol(Protocol::Odv)
            .build_with_value(0);
        let mut counter = 1u64;
        for (action, site) in steps {
            let site = SiteId::new(site);
            match action {
                0 => { let _ = c.read(site); }
                1 => {
                    if c.write(site, counter).is_ok() {
                        counter += 1;
                    }
                }
                2 => { let _ = c.recover(site); }
                3 => c.fail_site(site),
                _ => c.repair_site(site),
            }
        }
        prop_assert!(
            c.checker().violations().is_empty(),
            "{:?}",
            c.checker().violations()
        );
    }
}

// ---- study spec --------------------------------------------------------------

/// The built-in spec reproduces the exact `table2` numbers: the spec
/// path and the code path describe the same study.
#[test]
fn spec_study_equals_code_study() {
    let spec = parse_study(ucsd_spec_text()).unwrap();
    let params = Params {
        batch_len: Duration::days(2_000.0),
        batches: 4,
        ..Params::quick_test()
    };
    // Row G via the code path.
    let code = simulate_row(&dynamic_voting::availability::config::CONFIG_G, &params);
    // Row G via the spec path.
    let (name, copies) = spec
        .configs
        .iter()
        .find(|(name, _)| name == "G")
        .expect("spec has config G");
    let policies: Vec<Box<dyn dynamic_voting::core::policy::AvailabilityPolicy>> =
        PolicyKind::TABLE
            .iter()
            .map(|k| k.build(*copies, &spec.network))
            .collect();
    let from_spec = run_trace(&spec.network, &spec.models, policies, &params, name);
    for (a, b) in code.iter().zip(&from_spec) {
        assert_eq!(a.policy, b.policy);
        assert_eq!(
            a.unavailability, b.unavailability,
            "{}: spec and code paths must agree bit-for-bit",
            a.policy
        );
        assert_eq!(a.outage_count, b.outage_count, "{}", a.policy);
    }
}

/// Spec parsing is total over arbitrary junk: never panics, either
/// parses or reports a lined error.
#[test]
fn spec_parser_handles_junk_gracefully() {
    for junk in [
        "",
        "segment",
        "segment a 0\nsite 0 x\nconfig X 0",
        "\u{0}\u{1}\u{2}",
        "segment a 0 0", // duplicate member within one segment is fine (set semantics)
        "config X 99",
        "site 99 z mttf_days=1 hw=0 restart_min=1 hw_floor_h=0 hw_exp_h=0",
        "access_rate nan_but_not",
    ] {
        let _ = parse_study(junk); // must not panic
    }
}
