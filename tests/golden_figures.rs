//! Golden-trace regressions for the paper's procedure figures: every
//! READ / WRITE / RECOVER decision of Figures 1–3 (the ODV procedures)
//! and Figures 5–7 (the topological OTDV procedures) pinned on
//! hand-worked four-site scenarios, with the deciding clause of the
//! procedure quoted at each step.
//!
//! The majority test common to all the figures (Algorithm 1): gather
//! the (o, v, P) triples of the reachable sites; let Q be the
//! reachable sites holding the maximum operation number o_max and P
//! the partition set of one such site. The group is the (unique)
//! majority partition iff
//!
//! > |Q ∩ P| > |P| / 2, or
//! > |Q ∩ P| = |P| / 2 and Q contains the highest-ranked site of P
//!
//! with ranks in lexicographic order (site A outranks B outranks C…).
//! A granted operation then mints o_max + 1 and installs the new
//! partition set; a granted WRITE also advances the version number.

use dynamic_voting::replica::{Cluster, ClusterBuilder, Protocol};
use dynamic_voting::topology::NetworkBuilder;
use dynamic_voting::types::{SiteId, SiteSet};

fn s(indices: &[usize]) -> SiteSet {
    SiteSet::from_indices(indices.iter().copied())
}

const A: SiteId = SiteId::new(0);
const B: SiteId = SiteId::new(1);
const C: SiteId = SiteId::new(2);
const D: SiteId = SiteId::new(3);

fn assert_triple<T: Clone>(cluster: &Cluster<T>, site: SiteId, o: u64, v: u64, p: &[usize]) {
    let state = cluster.state_at(site);
    assert_eq!(state.op, o, "{site}: operation number");
    assert_eq!(state.version, v, "{site}: version number");
    assert_eq!(state.partition, s(p), "{site}: partition set");
}

/// Figures 1–3 (ODV READ / WRITE / RECOVER) on four copies A, B, C, D
/// of a single segment, worked through shrink, tie-break, refusal and
/// recovery — each (o, v, P) triple checked after each decision.
#[test]
fn figures_1_to_3_odv_four_site_walkthrough() {
    let mut cluster: Cluster<u32> = ClusterBuilder::new()
        .copies([0, 1, 2, 3])
        .protocol(Protocol::Odv)
        .build_with_value(0);

    // Initial state: o = v = 1 and P = {A, B, C, D} at every copy.
    for site in [A, B, C, D] {
        assert_triple(&cluster, site, 1, 1, &[0, 1, 2, 3]);
    }

    // Figure 2, WRITE at A, everyone up: Q = {A,B,C,D}, P = {A,B,C,D},
    // |Q ∩ P| = 4 > 2 — "the request is granted"; o and v advance and
    // all participants install P = Q.
    cluster.write(A, 10).unwrap();
    for site in [A, B, C, D] {
        assert_triple(&cluster, site, 2, 2, &[0, 1, 2, 3]);
    }

    // D fails. "Information is exchanged only at access time": no
    // state changes until the next operation.
    cluster.fail_site(D);
    assert_triple(&cluster, A, 2, 2, &[0, 1, 2, 3]);

    // Figure 1, READ at B: Q = {A,B,C}, P = {A,B,C,D},
    // |Q ∩ P| = 3 > 2 — granted. The survivors mint o = 3 and shrink
    // the partition set to {A,B,C}; a READ leaves the version alone.
    // D's stable storage still holds the stale triple.
    assert_eq!(cluster.read(B).unwrap(), 10);
    for site in [A, B, C] {
        assert_triple(&cluster, site, 3, 2, &[0, 1, 2]);
    }
    assert_triple(&cluster, D, 2, 2, &[0, 1, 2, 3]);

    // C fails too. Figure 2, WRITE at A: Q = {A,B}, P = {A,B,C},
    // |Q ∩ P| = 2 > 3/2 — granted. P shrinks to {A,B}, v advances.
    cluster.fail_site(C);
    cluster.write(A, 20).unwrap();
    for site in [A, B] {
        assert_triple(&cluster, site, 4, 3, &[0, 1]);
    }
    assert_triple(&cluster, C, 3, 2, &[0, 1, 2]);

    // The A–B link fails: each survivor is alone. Figure 1's tie
    // clause decides both sides of the partition against P = {A,B}:
    //  - READ at B: |Q ∩ P| = |{B}| = 1 = |P|/2, but the
    //    highest-ranked site of P is A ∉ Q — "the request is refused".
    //  - READ at A: |Q ∩ P| = 1 = |P|/2 and A ∈ Q — granted; A alone
    //    becomes the new majority partition P = {A} with o = 5.
    cluster.force_partition(vec![s(&[0]), s(&[1])]);
    assert!(cluster.read(B).is_err(), "B loses the tie to A");
    assert_eq!(cluster.read(A).unwrap(), 20);
    assert_triple(&cluster, A, 5, 3, &[0]);
    assert_triple(&cluster, B, 4, 3, &[0, 1]);

    // Figure 3, RECOVER at D once the link heals: D's own triple is
    // two generations stale, but the majority partition P = {A} is
    // reachable, so the recovery is granted: D fetches the current
    // version from a current copy and is added to the partition set.
    // B — reachable again and still holding the current version 3 —
    // takes part in the exchange too, so the new partition set is
    // {A, B, D}: P is "the set of sites that took part in the last
    // successful operation", and B participated.
    cluster.heal_partition();
    cluster.repair_site(D);
    cluster.recover(D).unwrap();
    assert_eq!(cluster.value_at(D), 20);
    for site in [A, B, D] {
        assert_triple(&cluster, site, 6, 3, &[0, 1, 3]);
    }
    assert_triple(&cluster, C, 3, 2, &[0, 1, 2]);

    // C — genuinely stale at version 2 — re-enters the same way:
    // RECOVER against the live majority restores the full partition.
    cluster.repair_site(C);
    cluster.recover(C).unwrap();
    assert_eq!(cluster.value_at(C), 20);
    for site in [A, B, C, D] {
        assert_triple(&cluster, site, 7, 3, &[0, 1, 2, 3]);
    }

    // The monitor saw a single lineage throughout.
    assert!(cluster.checker().violations().is_empty());
}

/// Builds the two-segment LAN of the topological walkthrough: copies
/// A, B on segment α, copies C, D on segment β, joined by the
/// dedicated repeater X (site 8) — the only partition point.
fn two_segment_cluster(protocol: Protocol) -> Cluster<u32> {
    let network = NetworkBuilder::new()
        .segment("alpha", [0, 1, 8])
        .segment("beta", [2, 3])
        .bridge(8, "beta")
        .build()
        .unwrap();
    ClusterBuilder::new()
        .network(network)
        .copies([0, 1, 2, 3])
        .protocol(protocol)
        .build_with_value(0)
}

/// Figures 5–7 (OTDV READ / WRITE / RECOVER) on the two-segment LAN:
/// the topological procedures extend the Figure 1–3 majority test with
/// vote claiming — "a live member of the previous majority partition
/// may claim the votes of unreachable members that reside on its own
/// segment" (they cannot be across a partition; they must be down).
#[test]
fn figures_5_to_7_otdv_two_segment_walkthrough() {
    let mut cluster = two_segment_cluster(Protocol::Otdv);

    // Figure 6, WRITE at A with the whole network up: plain majority,
    // no claiming needed — granted, P = {A,B,C,D}.
    cluster.write(A, 10).unwrap();
    for site in [A, B, C, D] {
        assert_triple(&cluster, site, 2, 2, &[0, 1, 2, 3]);
    }

    // The repeater X fails: α = {A,B} and β = {C,D} are cut apart.
    // Figure 6's majority test on the α side: Q = {A,B}, P =
    // {A,B,C,D}, |Q ∩ P| = 2 = |P|/2 and the top-ranked site A ∈ Q —
    // granted by the lexicographic tie-break, NOT by claiming: C and D
    // are unreachable but on the *other* segment, so their votes are
    // unclaimable (they may well be alive across the partition).
    cluster.fail_site(SiteId::new(8));
    cluster.write(A, 20).unwrap();
    for site in [A, B] {
        assert_triple(&cluster, site, 3, 3, &[0, 1]);
    }

    // Figure 5, READ on the β side: Q = {C,D} still holds the stale
    // P = {A,B,C,D}; |Q ∩ P| = 2 = |P|/2 but A ∉ Q, and neither A nor
    // B is on segment β, so no vote can be claimed — refused. The cut
    // off segment stays read-only-nothing, exactly the safety the
    // same-segment restriction buys.
    assert!(cluster.read(C).is_err(), "β loses the tie and cannot claim");
    assert_triple(&cluster, C, 2, 2, &[0, 1, 2, 3]);

    // A fails. Figure 6, WRITE at B: Q = {B}, P = {A,B},
    // |Q ∩ P| = 1 = |P|/2 and the top-ranked A ∉ Q — the plain test
    // refuses. But A is an unreachable member of P on B's *own*
    // segment α, so B claims A's vote: the claimed quorum carries the
    // majority and the write is granted with P = {B}.
    cluster.fail_site(A);
    cluster.write(B, 30).unwrap();
    assert_triple(&cluster, B, 4, 4, &[1]);

    // Contrast: the non-topological ODV of Figures 1–3 refuses the
    // same write — same history, no claiming clause.
    let mut odv = two_segment_cluster(Protocol::Odv);
    odv.write(A, 10).unwrap();
    odv.fail_site(SiteId::new(8));
    odv.write(A, 20).unwrap();
    odv.fail_site(A);
    assert!(odv.write(B, 30).is_err(), "ODV has no claim to make");

    // Figure 7, RECOVER at A: the current majority partition P = {B}
    // is reachable on α, so A's recovery is granted — A fetches the
    // current version (B's claimed-quorum write included) and rejoins.
    cluster.repair_site(A);
    cluster.recover(A).unwrap();
    assert_eq!(cluster.value_at(A), 30);
    assert_triple(&cluster, A, 5, 4, &[0, 1]);

    // The repeater returns and β rejoins through Figure 7 as well:
    // RECOVER at C and D against the live majority {A, B}.
    cluster.repair_site(SiteId::new(8));
    cluster.recover(C).unwrap();
    cluster.recover(D).unwrap();
    assert_eq!(cluster.value_at(C), 30);
    assert_eq!(cluster.value_at(D), 30);
    assert_triple(&cluster, D, 7, 4, &[0, 1, 2, 3]);

    // One lineage, no stale reads: the claims were all safe.
    assert!(cluster.checker().violations().is_empty());
}
