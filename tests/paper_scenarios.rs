//! End-to-end replays of the scenarios the paper walks through,
//! executed at message level through the replicated store.

use dynamic_voting::replica::{Cluster, ClusterBuilder, Protocol};
use dynamic_voting::topology::NetworkBuilder;
use dynamic_voting::types::{SiteId, SiteSet};

fn s(indices: &[usize]) -> SiteSet {
    SiteSet::from_indices(indices.iter().copied())
}

/// The §2.1 worked example: three copies A, B, C; seven writes; B
/// fails; three writes; the A–C link fails; A wins the tie; four more
/// writes. Every pictured (o, v, P) triple is checked.
#[test]
fn section_2_1_worked_example_at_message_level() {
    let a = SiteId::new(0);
    let b = SiteId::new(1);
    let c = SiteId::new(2);
    let mut cluster: Cluster<u32> = ClusterBuilder::new()
        .copies([0, 1, 2])
        .protocol(Protocol::Odv)
        .build_with_value(0);

    // Initial state: o = v = 1, P = {A, B, C} everywhere.
    for site in [a, b, c] {
        assert_eq!(cluster.state_at(site).op, 1);
        assert_eq!(cluster.state_at(site).version, 1);
        assert_eq!(cluster.state_at(site).partition, s(&[0, 1, 2]));
    }

    // "After seven write operations are successfully completed":
    for i in 1..=7u32 {
        cluster.write(a, i).unwrap();
    }
    for site in [a, b, c] {
        assert_eq!(cluster.state_at(site).op, 8);
        assert_eq!(cluster.state_at(site).version, 8);
    }

    // "Suppose now that site B fails. Information is exchanged only at
    //  access time, so there is no change in the state information."
    cluster.fail_site(b);
    assert_eq!(cluster.state_at(a).partition, s(&[0, 1, 2]));

    // "After three more write operations": o, v = 11, P = {A, C}.
    for i in 8..=10u32 {
        cluster.write(c, i).unwrap();
    }
    for site in [a, c] {
        assert_eq!(cluster.state_at(site).op, 11);
        assert_eq!(cluster.state_at(site).version, 11);
        assert_eq!(cluster.state_at(site).partition, s(&[0, 2]));
    }
    // B's stable storage still holds the stale triple.
    assert_eq!(cluster.state_at(b).op, 8);
    assert_eq!(cluster.state_at(b).partition, s(&[0, 1, 2]));

    // "Assume that the link between A and C fails."
    cluster.force_partition(vec![s(&[0]), s(&[2])]);

    // "Site A, by itself, constitutes the new majority partition."
    // "By the same reasoning, site C determines that it is not."
    assert!(cluster.read(a).is_ok());
    assert!(cluster.read(c).is_err());

    // "Four more write operations would leave the file in the state":
    // A: o, v = 16, P = {A}  (15 writes + 1 read above = op 16; the
    // paper's trace has o = 15 because it performs no read — versions
    // are what matter, and the version matches after 14 writes… we
    // replay the paper's exact arithmetic instead with fresh numbers:
    for i in 11..=14u32 {
        cluster.write(a, i).unwrap();
    }
    assert_eq!(cluster.state_at(a).partition, s(&[0]));
    assert_eq!(cluster.value_at(a), 14);
    // C untouched since the partition.
    assert_eq!(cluster.state_at(c).op, 11);
    assert!(cluster.checker().violations().is_empty());
}

/// After the §2.1 ending, B and C together still cannot form a quorum —
/// only a group containing A can regenerate the majority partition.
#[test]
fn section_2_1_aftermath_regeneration() {
    let a = SiteId::new(0);
    let b = SiteId::new(1);
    let c = SiteId::new(2);
    let mut cluster: Cluster<u32> = ClusterBuilder::new()
        .copies([0, 1, 2])
        .protocol(Protocol::Odv)
        .build_with_value(0);
    for i in 1..=7u32 {
        cluster.write(a, i).unwrap();
    }
    cluster.fail_site(b);
    cluster.write(c, 8).unwrap(); // P := {A, C}
    cluster.force_partition(vec![s(&[0]), s(&[1, 2])]);
    cluster.repair_site(b);

    // B (stale, P = {A,B,C}) + C (P = {A,C}): Q = {C}, 1 = half of
    // {A, C} but max is A — refused.
    assert!(cluster.read(c).is_err());
    assert!(cluster.recover(b).is_err());

    // A comes back into view: the majority partition regenerates and B
    // is folded back in by RECOVER.
    cluster.heal_partition();
    cluster.fail_site(a); // even with A *down*…
    assert!(
        cluster.read(c).is_err(),
        "…C alone still loses the tie to A"
    );
    cluster.repair_site(a);
    cluster.recover(b).unwrap();
    assert_eq!(cluster.value_at(b), 8);
    assert!(cluster.checker().violations().is_empty());
}

/// The §3 example network: A, B on segment α, C on γ, D on δ, with the
/// repeaters X and Y as the only partition points. Checks the paper's
/// claim that the only possible partitions are {{A,B,C},{D}},
/// {{A,B,D},{C}} and {{A,B},{C},{D}}.
#[test]
fn section_3_partition_structure() {
    let network = NetworkBuilder::new()
        .segment("alpha", [0, 1, 8, 9])
        .segment("gamma", [2])
        .segment("delta", [3])
        .bridge(8, "gamma")
        .bridge(9, "delta")
        .build()
        .unwrap();
    let copies = s(&[0, 1, 2, 3]);
    let partitions = network.possible_partitions(copies);
    let canonical: Vec<Vec<SiteSet>> = vec![
        vec![s(&[0, 1, 2, 3])],
        vec![s(&[0, 1, 2]), s(&[3])],
        vec![s(&[0, 1, 3]), s(&[2])],
        vec![s(&[0, 1]), s(&[2]), s(&[3])],
    ];
    for expected in &canonical {
        assert!(
            partitions.contains(expected),
            "missing partition {expected:?}; got {partitions:?}"
        );
    }
    assert_eq!(
        partitions.len(),
        canonical.len(),
        "no other partition is possible"
    );
}

/// The §3 vote-claiming walkthrough at message level: with the file's
/// majority block at {A, B} and A failed, LDV refuses B but TDV lets B
/// claim A's vote — and the data stays consistent through A's recovery.
#[test]
fn section_3_claim_walkthrough() {
    for (protocol, granted) in [(Protocol::Ldv, false), (Protocol::Tdv, true)] {
        let network = NetworkBuilder::new()
            .segment("alpha", [0, 1, 8, 9])
            .segment("gamma", [2])
            .segment("delta", [3])
            .bridge(8, "gamma")
            .bridge(9, "delta")
            .build()
            .unwrap();
        let mut cluster: Cluster<u32> = ClusterBuilder::new()
            .network(network)
            .copies([0, 1, 2, 3])
            .protocol(protocol)
            .build_with_value(0);
        // Shrink the majority block to {A, B}: both repeaters fail.
        cluster.fail_site(SiteId::new(8));
        cluster.fail_site(SiteId::new(9));
        cluster.write(SiteId::new(0), 15).unwrap();
        assert_eq!(cluster.state_at(SiteId::new(0)).partition, s(&[0, 1]));
        // A fails; can B continue?
        cluster.fail_site(SiteId::new(0));
        assert_eq!(
            cluster.write(SiteId::new(1), 16).is_ok(),
            granted,
            "{}",
            protocol.name()
        );
        // A recovers and rejoins; no violation either way.
        cluster.repair_site(SiteId::new(0));
        cluster.recover(SiteId::new(0)).unwrap();
        let expected = if granted { 16 } else { 15 };
        assert_eq!(cluster.value_at(SiteId::new(0)), expected);
        assert!(
            cluster.checker().violations().is_empty(),
            "{}",
            protocol.name()
        );
    }
}

/// The paper's degenerate-case claim: "when all the sites are on the
/// same segment, the modified topological algorithm degenerates into an
/// available copy protocol as a quorum is guaranteed as long as one
/// copy remains available" — here: TDV keeps serving all the way down
/// to a single surviving copy, and recovers cleanly.
#[test]
fn tdv_single_segment_is_available_copy() {
    let mut cluster: Cluster<u32> = ClusterBuilder::new()
        .copies([0, 1, 2, 3])
        .protocol(Protocol::Tdv)
        .build_with_value(0);
    let last = SiteId::new(3);
    for dying in [0usize, 1, 2] {
        cluster.write(last, dying as u32).unwrap();
        cluster.fail_site(SiteId::new(dying));
    }
    // One copy left — still writable.
    cluster.write(last, 99).unwrap();
    // Everyone returns and recovers from the survivor.
    for site in [0usize, 1, 2] {
        cluster.repair_site(SiteId::new(site));
        cluster.recover(SiteId::new(site)).unwrap();
        assert_eq!(cluster.value_at(SiteId::new(site)), 99);
    }
    assert!(cluster.checker().violations().is_empty());
}

/// The sequential-claim hazard, demonstrated at message level: OTDV as
/// published loses a committed write after alternating co-segment
/// claims, and the invariant monitor reports the stale read.
#[test]
fn sequential_claim_hazard_loses_a_write() {
    let mut cluster: Cluster<u32> = ClusterBuilder::new()
        .copies([0, 1])
        .protocol(Protocol::Otdv)
        .build_with_value(0);
    let a = SiteId::new(0);
    let b = SiteId::new(1);
    // A fails; B claims A's co-segment vote and commits a write.
    cluster.fail_site(a);
    cluster.write(b, 41).unwrap();
    cluster.write(b, 42).unwrap();
    // B fails before A returns; A recovers *alone*, claiming B.
    cluster.fail_site(b);
    cluster.repair_site(a);
    // Figure 7 grants this recovery — that is the hazard.
    cluster.recover(a).unwrap();
    let read = cluster.read(a).unwrap();
    assert_eq!(read, 0, "B's committed writes are invisible to A's block");
    assert!(
        !cluster.checker().violations().is_empty(),
        "the monitor must flag the stale read"
    );
}
