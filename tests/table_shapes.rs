//! Regression guards for the reproduction's headline shapes, at
//! test-suite-friendly run lengths. The full checklists live in the
//! `table2`/`table3` binaries; these pin the findings that define the
//! paper into `cargo test`, so a protocol regression cannot land
//! silently.

use dynamic_voting::availability::config::{CONFIG_A, CONFIG_D, CONFIG_F};
use dynamic_voting::availability::run::{simulate_row, Params, RunResult};
use dynamic_voting::sim::Duration;

fn row(config: &'static dynamic_voting::availability::config::Configuration) -> Vec<RunResult> {
    let params = Params {
        batch_len: Duration::days(8_000.0),
        batches: 5,
        ..Params::quick_test()
    };
    simulate_row(config, &params)
}

fn cell<'a>(row: &'a [RunResult], name: &str) -> &'a RunResult {
    row.iter()
        .find(|r| r.policy == name)
        .expect("policy present")
}

/// The paper's reason to exist: dynamic voting with the tie-break beats
/// static voting, and the topological variant crushes both when copies
/// share a segment (configuration A).
#[test]
fn headline_orderings_on_config_a() {
    let row = row(&CONFIG_A);
    let (mcv, dv, ldv, tdv) = (
        cell(&row, "MCV").unavailability,
        cell(&row, "DV").unavailability,
        cell(&row, "LDV").unavailability,
        cell(&row, "TDV").unavailability,
    );
    assert!(ldv < mcv, "LDV {ldv} must beat MCV {mcv}");
    assert!(dv > ldv, "plain DV {dv} must lose to LDV {ldv} (ties)");
    assert!(
        tdv < ldv / 2.0,
        "TDV {tdv} must crush LDV {ldv} with two co-segment copies"
    );
}

/// The paper's cautionary tale: DV without a tie-break collapses on
/// configuration F — the gateway's failure freezes a 2-2 tie for its
/// two-week repair, producing unavailability near the gateway's own.
#[test]
fn dv_collapses_on_config_f() {
    let row = row(&CONFIG_F);
    let dv = cell(&row, "DV").unavailability;
    let ldv = cell(&row, "LDV").unavailability;
    assert!(
        dv > 0.05,
        "DV on F must be catastrophic (paper: 0.108), got {dv}"
    );
    assert!(
        dv > 20.0 * ldv,
        "the tie-break must be worth >20x on F: dv {dv}, ldv {ldv}"
    );
}

/// Configuration D is everyone's worst row (three copies on the flaky
/// subordinate segments), and even there the protocol ordering holds.
#[test]
fn config_d_is_bad_for_everyone_but_ordered() {
    let row = row(&CONFIG_D);
    for r in &row {
        assert!(
            r.unavailability > 0.01,
            "{} on D should exceed 1%: {}",
            r.policy,
            r.unavailability
        );
    }
    let mcv = cell(&row, "MCV").unavailability;
    let dv = cell(&row, "DV").unavailability;
    let ldv = cell(&row, "LDV").unavailability;
    let tdv = cell(&row, "TDV").unavailability;
    assert!(dv > mcv, "three copies: DV worse than MCV");
    assert!(ldv < mcv);
    assert!(tdv < ldv, "sites 7+8 share a segment: claiming helps");
}
