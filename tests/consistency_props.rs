//! Property-based consistency testing: random fault/operation schedules
//! must never produce a stale read, duplicate version, or lineage fork
//! under the non-topological protocols.

use dynamic_voting::core::decision::{decide, Rule};
use dynamic_voting::core::state::StateTable;
use dynamic_voting::replica::{Cluster, ClusterBuilder, Protocol};
use dynamic_voting::topology::Network;
use dynamic_voting::types::{SiteId, SiteSet};
use proptest::prelude::*;

/// One step of a random schedule.
#[derive(Clone, Debug)]
enum Step {
    Read(usize),
    Write(usize),
    Recover(usize),
    Fail(usize),
    Repair(usize),
    /// Partition the sites into two groups by bitmask.
    Split(u8),
    Heal,
}

fn step_strategy(n: usize) -> impl Strategy<Value = Step> {
    let site = 0..n;
    prop_oneof![
        4 => site.clone().prop_map(Step::Read),
        4 => site.clone().prop_map(Step::Write),
        2 => site.clone().prop_map(Step::Recover),
        2 => site.clone().prop_map(Step::Fail),
        2 => site.prop_map(Step::Repair),
        1 => any::<u8>().prop_map(Step::Split),
        1 => Just(Step::Heal),
    ]
}

fn run_schedule(protocol: Protocol, n: usize, steps: &[Step]) -> Cluster<u64> {
    let mut cluster: Cluster<u64> = ClusterBuilder::new()
        .network(Network::single_segment(n))
        .copies(0..n)
        .protocol(protocol)
        .build_with_value(0);
    let mut counter = 1u64;
    for step in steps {
        match step {
            Step::Read(s) => {
                let _ = cluster.read(SiteId::new(*s));
            }
            Step::Write(s) => {
                if cluster.write(SiteId::new(*s), counter).is_ok() {
                    counter += 1;
                }
            }
            Step::Recover(s) => {
                let _ = cluster.recover(SiteId::new(*s));
            }
            Step::Fail(s) => cluster.fail_site(SiteId::new(*s)),
            Step::Repair(s) => cluster.repair_site(SiteId::new(*s)),
            Step::Split(mask) => {
                let all = SiteSet::first_n(n);
                let one = SiteSet::from_bits(u64::from(*mask)) & all;
                let two = all - one;
                let groups: Vec<SiteSet> =
                    [one, two].into_iter().filter(|g| !g.is_empty()).collect();
                cluster.heal_partition();
                cluster.force_partition(groups);
            }
            Step::Heal => cluster.heal_partition(),
        }
    }
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline safety property: whatever happens, the
    /// non-topological protocols never serve a stale read, never reuse
    /// a version, and never fork the lineage.
    #[test]
    fn no_violations_under_random_schedules(
        protocol_idx in 0usize..4,
        n in 2usize..6,
        steps in proptest::collection::vec(step_strategy(5), 1..120),
    ) {
        let protocol = [Protocol::Mcv, Protocol::Dv, Protocol::Ldv, Protocol::Odv][protocol_idx];
        // Clamp step site indices into range.
        let steps: Vec<Step> = steps
            .into_iter()
            .map(|s| match s {
                Step::Read(x) => Step::Read(x % n),
                Step::Write(x) => Step::Write(x % n),
                Step::Recover(x) => Step::Recover(x % n),
                Step::Fail(x) => Step::Fail(x % n),
                Step::Repair(x) => Step::Repair(x % n),
                other => other,
            })
            .collect();
        let cluster = run_schedule(protocol, n, &steps);
        prop_assert!(
            cluster.checker().violations().is_empty(),
            "{}: {:?}",
            protocol.name(),
            cluster.checker().violations()
        );
    }

    /// Liveness floor: with every site up and connected, operations are
    /// always granted, whatever history preceded.
    #[test]
    fn full_connectivity_restores_service(
        protocol_idx in 0usize..4,
        steps in proptest::collection::vec(step_strategy(4), 1..80),
    ) {
        let protocol = [Protocol::Mcv, Protocol::Dv, Protocol::Ldv, Protocol::Odv][protocol_idx];
        let n = 4;
        let mut cluster = run_schedule(protocol, n, &steps);
        cluster.heal_partition();
        for i in 0..n {
            cluster.repair_site(SiteId::new(i));
        }
        // Recovering every site must eventually succeed…
        for i in 0..n {
            let _ = cluster.recover(SiteId::new(i));
        }
        // …after which reads and writes are granted everywhere.
        for i in 0..n {
            prop_assert!(cluster.read(SiteId::new(i)).is_ok(), "read at S{i}");
        }
        prop_assert!(cluster.write(SiteId::new(0), 777_777).is_ok());
        prop_assert!(cluster.checker().violations().is_empty());
    }

    /// Algorithm 1's mutual exclusion, stated directly on the decision
    /// function: for any reachable protocol state and any 2-way split of
    /// the sites, at most one side is the majority partition.
    #[test]
    fn decision_mutual_exclusion_over_reachable_states(
        n in 2usize..6,
        history in proptest::collection::vec(any::<u8>(), 0..24),
        split in any::<u8>(),
    ) {
        let copies = SiteSet::first_n(n);
        let mut states = StateTable::fresh(copies);
        let rule = Rule::lexicographic();
        // Drive the state through a random sequence of group syncs —
        // exactly the commits the protocol itself would perform, so
        // every visited state is protocol-reachable.
        for mask in &history {
            let group = SiteSet::from_bits(u64::from(*mask)) & copies;
            if group.is_empty() {
                continue;
            }
            let d = decide(group, copies, &states, &rule, None);
            if d.is_granted() {
                states.commit(group, d.max_op + 1, d.max_version + 1, group);
            }
        }
        let one = SiteSet::from_bits(u64::from(split)) & copies;
        let two = copies - one;
        let d1 = decide(one, copies, &states, &rule, None);
        let d2 = decide(two, copies, &states, &rule, None);
        prop_assert!(
            !(d1.is_granted() && d2.is_granted()),
            "both {one} and {two} granted"
        );
    }

    /// The same, three ways: any 3-way partition grants at most one
    /// group.
    #[test]
    fn decision_mutual_exclusion_three_way(
        history in proptest::collection::vec(any::<u8>(), 0..24),
        cut1 in any::<u8>(),
        cut2 in any::<u8>(),
    ) {
        let n = 5;
        let copies = SiteSet::first_n(n);
        let mut states = StateTable::fresh(copies);
        let rule = Rule::lexicographic();
        for mask in &history {
            let group = SiteSet::from_bits(u64::from(*mask)) & copies;
            if group.is_empty() {
                continue;
            }
            let d = decide(group, copies, &states, &rule, None);
            if d.is_granted() {
                states.commit(group, d.max_op + 1, d.max_version, group);
            }
        }
        let a = SiteSet::from_bits(u64::from(cut1)) & copies;
        let b = (SiteSet::from_bits(u64::from(cut2)) & copies) - a;
        let c = copies - a - b;
        let granted = [a, b, c]
            .into_iter()
            .filter(|g| !g.is_empty())
            .filter(|&g| decide(g, copies, &states, &rule, None).is_granted())
            .count();
        prop_assert!(granted <= 1, "{granted} groups granted");
    }

    /// Topological protocols are safe under segment-respecting faults
    /// as long as no *co-segment total failure* occurs: with the
    /// tie-winning segment containing at least one up copy at all
    /// times, random schedules never violate the invariants. (Total
    /// failures admit the sequential-claim hazard — demonstrated in
    /// `paper_scenarios.rs` — so the generator here keeps one site of
    /// the first segment permanently up.)
    #[test]
    fn topological_safe_without_total_failures(
        steps in proptest::collection::vec(step_strategy(5), 1..100),
    ) {
        // Two segments: {0, 1, 2} bridged to {3, 4} via gateway S2.
        let network = dynamic_voting::topology::NetworkBuilder::new()
            .segment("alpha", [0, 1, 2])
            .segment("beta", [3, 4])
            .bridge(2, "beta")
            .build()
            .expect("static");
        let mut cluster: Cluster<u64> = ClusterBuilder::new()
            .network(network)
            .copies(0..5)
            .protocol(Protocol::Otdv)
            .build_with_value(0);
        let mut counter = 1u64;
        for step in &steps {
            match step {
                Step::Read(s) => { let _ = cluster.read(SiteId::new(s % 5)); }
                Step::Write(s) => {
                    if cluster.write(SiteId::new(s % 5), counter).is_ok() {
                        counter += 1;
                    }
                }
                Step::Recover(s) => { let _ = cluster.recover(SiteId::new(s % 5)); }
                // Site 0 is the anchor: never failed, so neither
                // segment ever totally dies while holding the lineage…
                Step::Fail(s) => {
                    let site = s % 5;
                    if site != 0 {
                        cluster.fail_site(SiteId::new(site));
                    }
                }
                Step::Repair(s) => {
                    let site = SiteId::new(s % 5);
                    cluster.repair_site(site);
                    let _ = cluster.recover(site);
                }
                // Forced partitions may not split segments for the
                // topological rules: skip them; gateway failures above
                // already exercise partitioning.
                Step::Split(_) | Step::Heal => {}
            }
        }
        prop_assert!(
            cluster.checker().violations().is_empty(),
            "{:?}",
            cluster.checker().violations()
        );
    }

    /// The non-mutating probe always agrees with an immediately
    /// attempted read: `probe(origin)` is exactly "would `read(origin)`
    /// succeed".
    #[test]
    fn probe_predicts_read(
        protocol_idx in 0usize..4,
        n in 2usize..6,
        steps in proptest::collection::vec(step_strategy(5), 1..80),
        origin in 0usize..5,
    ) {
        let protocol = [Protocol::Mcv, Protocol::Dv, Protocol::Ldv, Protocol::Odv][protocol_idx];
        let steps: Vec<Step> = steps
            .into_iter()
            .map(|s| match s {
                Step::Read(x) => Step::Read(x % n),
                Step::Write(x) => Step::Write(x % n),
                Step::Recover(x) => Step::Recover(x % n),
                Step::Fail(x) => Step::Fail(x % n),
                Step::Repair(x) => Step::Repair(x % n),
                other => other,
            })
            .collect();
        let mut cluster = run_schedule(protocol, n, &steps);
        let origin = SiteId::new(origin % n);
        let predicted = cluster.probe(origin);
        let actual = cluster.read(origin).is_ok();
        prop_assert_eq!(predicted, actual, "{} at {}", protocol.name(), origin);
    }

    /// Version numbers at every copy are monotone along any schedule
    /// (stable storage never goes backwards).
    #[test]
    fn versions_monotone_everywhere(
        protocol_idx in 0usize..4,
        steps in proptest::collection::vec(step_strategy(4), 1..100),
    ) {
        let protocol = [Protocol::Mcv, Protocol::Dv, Protocol::Ldv, Protocol::Odv][protocol_idx];
        let n = 4;
        let mut cluster: Cluster<u64> = ClusterBuilder::new()
            .network(Network::single_segment(n))
            .copies(0..n)
            .protocol(protocol)
            .build_with_value(0);
        let mut counter = 1u64;
        let mut versions = vec![1u64; n];
        for step in &steps {
            match step {
                Step::Read(s) => { let _ = cluster.read(SiteId::new(s % n)); }
                Step::Write(s) => {
                    if cluster.write(SiteId::new(s % n), counter).is_ok() {
                        counter += 1;
                    }
                }
                Step::Recover(s) => { let _ = cluster.recover(SiteId::new(s % n)); }
                Step::Fail(s) => cluster.fail_site(SiteId::new(s % n)),
                Step::Repair(s) => cluster.repair_site(SiteId::new(s % n)),
                Step::Split(mask) => {
                    let all = SiteSet::first_n(n);
                    let one = SiteSet::from_bits(u64::from(*mask)) & all;
                    let groups: Vec<SiteSet> =
                        [one, all - one].into_iter().filter(|g| !g.is_empty()).collect();
                    cluster.heal_partition();
                    cluster.force_partition(groups);
                }
                Step::Heal => cluster.heal_partition(),
            }
            for (i, seen) in versions.iter_mut().enumerate() {
                let v = cluster.state_at(SiteId::new(i)).version;
                prop_assert!(v >= *seen, "S{i} went from v{seen} to v{v}");
                *seen = v;
            }
        }
    }
}
