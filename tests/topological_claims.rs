//! Property tests for the §4 vote-claiming precondition: a topological
//! rule may only claim the votes of *unreachable* members of the
//! previous majority partition that reside on the *same segment* as a
//! reachable member — such sites cannot be across a partition, they
//! must be down. Random topologies up to 12 sites, both as a pure
//! check of Algorithm 1's `decide` and end-to-end against clusters
//! driven through random fault schedules.

use dynamic_voting::core::decision::{decide, Rule};
use dynamic_voting::core::state::{ReplicaState, StateTable};
use dynamic_voting::replica::{ClusterBuilder, Protocol};
use dynamic_voting::topology::{Network, NetworkBuilder};
use dynamic_voting::types::{SiteId, SiteSet};
use dynvote_check::{groups_of, state_table_of};
use proptest::prelude::*;

/// An arbitrary hub-and-spoke LAN: up to 12 sites spread over up to 4
/// segments, every non-hub segment bridged from a generator-chosen
/// gateway on the hub segment. Every reachability structure the paper
/// considers (fully-connected, star of segments, isolated segments
/// after gateway loss) is reachable from this family.
fn arb_network() -> impl Strategy<Value = (Network, usize)> {
    (
        2usize..13,
        proptest::collection::vec(0u8..4, 12),
        proptest::collection::vec(0usize..12, 4),
    )
        .prop_map(|(n, labels, gateways)| {
            // Partition sites 0..n by label, dropping empty segments;
            // segment of site 0 is the hub.
            let mut members: Vec<Vec<usize>> = vec![Vec::new(); 4];
            for site in 0..n {
                members[labels[site] as usize % 4].push(site);
            }
            let mut segments: Vec<Vec<usize>> =
                members.into_iter().filter(|m| !m.is_empty()).collect();
            let hub_index = segments
                .iter()
                .position(|m| m.contains(&0))
                .expect("site 0 is somewhere");
            segments.swap(0, hub_index);

            let names = ["a", "b", "c", "d"];
            let mut builder = NetworkBuilder::new();
            for (i, m) in segments.iter().enumerate() {
                builder = builder.segment(names[i], m.iter().copied());
            }
            let hub = &segments[0];
            for (i, _) in segments.iter().enumerate().skip(1) {
                let gateway = hub[gateways[i] % hub.len()];
                builder = builder.bridge(gateway, names[i]);
            }
            (builder.build().expect("generator produces valid LANs"), n)
        })
}

/// Fully arbitrary per-site states: operation and version numbers with
/// non-empty partition sets drawn from the copy set. Topological
/// `decide` must uphold the claiming precondition for *any* stored
/// states — including the incoherent ones a sequential-claim fork
/// leaves behind — so no coherence is imposed. (Non-topological rules
/// assume members of Q agree on P, so they get [`arb_coherent_states`]
/// instead.)
fn arb_states(n: usize) -> impl Strategy<Value = StateTable> {
    proptest::collection::vec((1u64..6, 1u64..6, 1u64..(1 << 12)), n).prop_map(move |rows| {
        let copies = SiteSet::first_n(rows.len());
        let mut table = StateTable::fresh(copies);
        for (site, (op, version, bits)) in rows.iter().enumerate() {
            let mut partition = SiteSet::from_bits(*bits) & copies;
            if partition.is_empty() {
                partition = copies;
            }
            table.set(
                SiteId::new(site),
                ReplicaState {
                    op: *op,
                    version: *version,
                    partition,
                },
            );
        }
        table
    })
}

/// Random states that uphold the invariant real (non-forked)
/// executions maintain: every operation number was minted with exactly
/// one partition set, so all sites holding the same `o` store the same
/// `P` — the precondition of `decide` for non-topological rules.
fn arb_coherent_states(n: usize) -> impl Strategy<Value = StateTable> {
    (
        proptest::collection::vec((1u64..6, 1u64..6), n),
        proptest::collection::vec(1u64..(1 << 12), 6),
    )
        .prop_map(move |(rows, op_partitions)| {
            let copies = SiteSet::first_n(rows.len());
            let mut table = StateTable::fresh(copies);
            for (site, (op, version)) in rows.iter().enumerate() {
                let mut partition = SiteSet::from_bits(op_partitions[*op as usize]) & copies;
                if partition.is_empty() {
                    partition = copies;
                }
                table.set(
                    SiteId::new(site),
                    ReplicaState {
                        op: *op,
                        version: *version,
                        partition,
                    },
                );
            }
            table
        })
}

/// Checks the §4 precondition on one decision: every *claimed* vote —
/// counted but not reachable — belongs to the previous partition set
/// and shares a segment with a reachable member of it.
fn assert_claims_are_topological(network: &Network, d: &dynamic_voting::core::decision::Decision) {
    let claimed = d.counted - d.reachable;
    let anchors = d.prev_partition & d.reachable;
    for c in claimed.iter() {
        assert!(
            d.prev_partition.contains(c),
            "claimed {c} outside P_m = {}",
            d.prev_partition
        );
        assert!(
            anchors.iter().any(|a| network.same_segment(a, c)),
            "claimed {c} with no reachable co-segment member of P_m = {} (anchors {})",
            d.prev_partition,
            anchors
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Pure Algorithm 1: for any topology, any stored states, and any
    /// reachable group, the topological rule claims only same-segment
    /// votes of the previous partition — and counts every reachable
    /// quorum member it would have counted anyway.
    #[test]
    fn decide_claims_only_cosegment_votes(
        net_n in arb_network(),
        states in arb_states(12),
        group_bits in 1u64..(1 << 12),
    ) {
        let (network, n) = net_n;
        let copies = SiteSet::first_n(n);
        let group = SiteSet::from_bits(group_bits) & copies;
        let d = decide(group, copies, &states, &Rule::topological(), Some(&network));
        if (group & copies).is_empty() {
            return;
        }
        assert_claims_are_topological(&network, &d);
        // Claiming only ever widens the counted set within P_m.
        prop_assert!(
            (d.quorum_set & d.prev_partition).is_subset_of(d.counted),
            "counted {} lost quorum members {}",
            d.counted,
            d.quorum_set & d.prev_partition
        );
    }

    /// The same states and groups under a non-topological rule never
    /// claim anything: counted is exactly the quorum set.
    #[test]
    fn non_topological_rules_claim_nothing(
        net_n in arb_network(),
        states in arb_coherent_states(12),
        group_bits in 1u64..(1 << 12),
    ) {
        let (network, n) = net_n;
        let copies = SiteSet::first_n(n);
        let group = SiteSet::from_bits(group_bits) & copies;
        if group.is_empty() {
            return;
        }
        let d = decide(group, copies, &states, &Rule::lexicographic(), Some(&network));
        prop_assert_eq!(d.counted, d.quorum_set);
        prop_assert!((d.counted - d.reachable).is_empty());
    }

    /// End-to-end: drive a TDV/OTDV cluster over a random topology
    /// through a random fault schedule, then re-run Algorithm 1 from
    /// every live site's viewpoint on the *actual* replica states and
    /// check the precondition on what it claims.
    #[test]
    fn cluster_states_only_admit_cosegment_claims(
        net_n in arb_network(),
        optimistic in any::<bool>(),
        schedule in proptest::collection::vec((0usize..12, 0u8..4), 0..24),
    ) {
        let (network, n) = net_n;
        let protocol = if optimistic { Protocol::Otdv } else { Protocol::Tdv };
        let mut cluster = ClusterBuilder::new()
            .network(network.clone())
            .copies(0..n)
            .protocol(protocol)
            .build_with_value(0u32);
        let mut token = 1u32;
        for (raw, kind) in schedule {
            let site = SiteId::new(raw % n);
            match kind {
                0 => cluster.fail_site(site),
                1 => cluster.repair_site(site),
                2 => {
                    let _ = cluster.recover(site);
                }
                _ => {
                    token += 1;
                    let _ = cluster.write(site, token);
                }
            }
        }
        let states = state_table_of(&cluster);
        let copies = cluster.participants();
        for group in groups_of(&cluster) {
            if (group & copies).is_empty() {
                continue;
            }
            let d = decide(group, copies, &states, &Rule::topological(), Some(&network));
            assert_claims_are_topological(&network, &d);
        }
    }
}
