//! Integration tests spanning crates: policy equivalences, analytic
//! cross-validation of the simulator, determinism guarantees.

use dynamic_voting::analytic::{
    dv_unavailability, ldv_unavailability, mcv_unavailability, ParSystem,
};
use dynamic_voting::availability::config::{CONFIG_C, CONFIG_E, CONFIG_G};
use dynamic_voting::availability::run::{run_trace, simulate, simulate_row, Params};
use dynamic_voting::availability::sites::identical_sites;
use dynamic_voting::core::policy::{
    AvailabilityPolicy, AvailableCopyPolicy, DynamicPolicy, McvPolicy, PolicyKind,
};
use dynamic_voting::sim::{Duration, SimRng};
use dynamic_voting::topology::{Network, Reachability};
use dynamic_voting::types::SiteSet;

/// TDV on a single segment degenerates into Available Copy (paper §3):
/// whenever AC can serve, TDV can too, and as long as no *total*
/// failure has occurred the two answer identically. After a total
/// failure TDV-as-published is strictly *more* available than AC —
/// that surplus is exactly the unsafe stale regeneration of the
/// sequential-claim hazard, so we assert it is confined to
/// AC-unavailable states.
#[test]
fn tdv_degenerates_into_available_copy_on_single_segment() {
    let n = 4;
    let copies = SiteSet::first_n(n);
    let network = Network::single_segment(n);
    let mut tdv = DynamicPolicy::tdv(copies, network.clone());
    let mut ac = AvailableCopyPolicy::new(copies);
    let mut rng = SimRng::new(0xE0);
    let mut up = copies;
    let mut total_failure_seen = false;
    let mut divergences = 0u32;
    for step in 0..20_000 {
        // Random flip of one site's liveness.
        let site = dynvote_types::SiteId::new(rng.below(n));
        if up.contains(site) {
            up.remove(site);
        } else {
            up.insert(site);
        }
        total_failure_seen |= up.is_empty();
        let reach = network.reachability(up);
        tdv.on_topology_change(&reach);
        ac.on_topology_change(&reach);
        let (t, a) = (tdv.is_available(&reach), ac.is_available(&reach));
        assert!(t || !a, "step {step}: AC available but TDV not, up = {up}");
        if t != a {
            divergences += 1;
            assert!(
                total_failure_seen,
                "step {step}: divergence before any total failure, up = {up}"
            );
            assert!(!a, "divergence must be TDV-over-AC, not the reverse");
        }
    }
    assert!(
        divergences > 0,
        "the walk should hit the post-total-failure surplus at least once"
    );
}

/// The simulator agrees with the exact CTMC models on the tractable
/// cases (identical sites, exponential repair, no partitions).
#[test]
fn simulator_matches_ctmc_models() {
    let params = Params {
        seed: 0xCAFE,
        access_rate: 0.0,
        warmup: Duration::days(100.0),
        batch_len: Duration::days(20_000.0),
        batches: 8,
    };
    for n in [2usize, 3, 4] {
        let sys = ParSystem {
            n,
            mttf: 10.0,
            mttr: 0.5,
        };
        let network = Network::single_segment(n);
        let models = identical_sites(n, Duration::days(10.0), Duration::hours(12.0));
        let copies = SiteSet::first_n(n);
        let policies: Vec<Box<dyn AvailabilityPolicy>> = vec![
            Box::new(McvPolicy::strict(copies)),
            Box::new(DynamicPolicy::dv(copies)),
            Box::new(DynamicPolicy::ldv(copies)),
        ];
        let results = run_trace(&network, &models, policies, &params, "ctmc");
        let exact = [
            mcv_unavailability(&sys),
            dv_unavailability(&sys),
            ldv_unavailability(&sys),
        ];
        for (result, exact) in results.iter().zip(exact) {
            let err = (result.unavailability - exact).abs();
            // Within the CI, with a modest absolute floor for the tiny
            // n = 4 dynamic-voting values.
            assert!(
                err <= result.ci_half.max(2e-4),
                "n={n} {}: simulated {} vs exact {} (CI ±{})",
                result.policy,
                result.unavailability,
                exact,
                result.ci_half
            );
        }
    }
}

/// Common-random-numbers rows equal independently simulated cells: the
/// shared trace must not leak state between policies.
#[test]
fn row_simulation_equals_individual_simulation() {
    let params = Params {
        seed: 11,
        access_rate: 1.0,
        warmup: Duration::days(360.0),
        batch_len: Duration::days(1_000.0),
        batches: 3,
    };
    let row = simulate_row(&CONFIG_G, &params);
    for kind in PolicyKind::TABLE {
        let single = simulate(kind, &CONFIG_G, &params);
        let in_row = row
            .iter()
            .find(|r| r.policy == kind.name())
            .expect("policy in row");
        assert_eq!(
            single.unavailability, in_row.unavailability,
            "{kind} diverged between row and single runs"
        );
        assert_eq!(single.outage_count, in_row.outage_count, "{kind}");
    }
}

/// The C-configuration identity from Table 2: with every copy on its
/// own segment, the topological protocols reduce exactly to their
/// non-topological counterparts — same trace, same numbers, bit for
/// bit.
#[test]
fn config_c_topological_identity() {
    let params = Params {
        seed: 5,
        access_rate: 1.0,
        warmup: Duration::days(360.0),
        batch_len: Duration::days(2_000.0),
        batches: 4,
    };
    let row = simulate_row(&CONFIG_C, &params);
    let by_name = |name: &str| {
        row.iter()
            .find(|r| r.policy == name)
            .expect("policy present")
    };
    assert_eq!(by_name("TDV").unavailability, by_name("LDV").unavailability);
    assert_eq!(
        by_name("OTDV").unavailability,
        by_name("ODV").unavailability
    );
    assert_eq!(by_name("TDV").outage_count, by_name("LDV").outage_count);
}

/// On configuration E (one Ethernet, no partitions possible) the
/// topological protocols essentially never go down — the paper's
/// "available for more than three hundred years" claim.
#[test]
fn config_e_topological_near_perfect() {
    let params = Params {
        seed: 21,
        access_rate: 1.0,
        warmup: Duration::days(360.0),
        batch_len: Duration::days(10_000.0),
        batches: 5,
    };
    let row = simulate_row(&CONFIG_E, &params);
    let tdv = row.iter().find(|r| r.policy == "TDV").unwrap();
    assert!(
        tdv.unavailability < 1e-5,
        "TDV on E should be near-perfect, got {}",
        tdv.unavailability
    );
    // MCV on the same trace is orders of magnitude worse.
    let mcv = row.iter().find(|r| r.policy == "MCV").unwrap();
    assert!(mcv.unavailability > 10.0 * tdv.unavailability.max(1e-9));
}

/// End-to-end determinism: identical parameters give identical results,
/// different seeds give different traces.
#[test]
fn simulation_is_deterministic_in_the_seed() {
    let params = Params {
        seed: 99,
        access_rate: 1.0,
        warmup: Duration::days(360.0),
        batch_len: Duration::days(1_000.0),
        batches: 3,
    };
    let a = simulate(PolicyKind::Odv, &CONFIG_G, &params);
    let b = simulate(PolicyKind::Odv, &CONFIG_G, &params);
    assert_eq!(a.unavailability, b.unavailability);
    assert_eq!(a.mean_outage_days, b.mean_outage_days);
    let mut other = params.clone();
    other.seed = 100;
    let c = simulate(PolicyKind::Odv, &CONFIG_G, &other);
    assert_ne!(
        (a.unavailability, a.outage_count),
        (c.unavailability, c.outage_count),
        "different seeds should explore different traces"
    );
}

/// A two-policy sanity ladder on the identical-site system: more copies
/// help LDV; and LDV(n) beats MCV(n) for n ≥ 3 (analytically).
#[test]
fn analytic_orderings() {
    for n in 3..=6 {
        let sys = ParSystem {
            n,
            mttf: 20.0,
            mttr: 1.0,
        };
        assert!(
            ldv_unavailability(&sys) <= mcv_unavailability(&sys),
            "n = {n}"
        );
        if n >= 4 {
            let smaller = ParSystem {
                n: n - 2,
                mttf: 20.0,
                mttr: 1.0,
            };
            assert!(
                ldv_unavailability(&sys) <= ldv_unavailability(&smaller),
                "adding two copies must not hurt LDV (n = {n})"
            );
        }
    }
}

/// Reachability objects coming out of the Figure 8 network are always
/// well-formed: disjoint groups covering exactly the up sites.
#[test]
fn reachability_well_formed_under_random_liveness() {
    let network = dynamic_voting::availability::network::ucsd_network();
    let mut rng = SimRng::new(3);
    for _ in 0..2_000 {
        let up = SiteSet::from_bits(u64::from(rng.below(256) as u8));
        let reach: Reachability = network.reachability(up);
        let mut union = SiteSet::EMPTY;
        for &g in reach.groups() {
            assert!(!g.is_empty());
            assert!(union.is_disjoint(g), "groups overlap");
            union |= g;
        }
        assert_eq!(union, up & network.sites());
    }
}
