//! The strongest coherence check in the repository: the availability
//! simulator's policy state machines and the message-level replicated
//! store are *the same protocol*.
//!
//! Both are driven through identical failure/repair/access traces; at
//! every step the policy's `is_available` probe must agree with the
//! cluster's message-level `probe`. Any divergence would mean the
//! numbers in the reproduced Tables 2 and 3 are measuring something
//! other than what the store actually does.

use dynamic_voting::core::policy::{AvailabilityPolicy, DynamicPolicy, McvPolicy};
use dynamic_voting::replica::{Cluster, ClusterBuilder, Protocol};
use dynamic_voting::sim::SimRng;
use dynamic_voting::topology::Network;
use dynamic_voting::types::{SiteId, SiteSet};

/// One random walk: flip site liveness; at random points run an
/// "access" (a read at a random up site, retried across sites the way
/// the paper's single user may reach any of them). After every event
/// both sides must agree on availability.
fn equivalence_walk(
    protocol: Protocol,
    mut policy: Box<dyn AvailabilityPolicy>,
    network: Network,
    n: usize,
    optimistic: bool,
    seed: u64,
    steps: usize,
) {
    let mut cluster: Cluster<u64> = ClusterBuilder::new()
        .network(network.clone())
        .copies(0..n)
        .protocol(protocol)
        .build_with_value(0);
    let mut rng = SimRng::new(seed);
    let mut up = SiteSet::first_n(n);
    policy.reset();
    policy.on_topology_change(&network.reachability(up));
    let mut counter = 1u64;

    for step in 0..steps {
        if rng.bernoulli(0.7) {
            // Topology event.
            let site = SiteId::new(rng.below(n));
            if up.contains(site) {
                up.remove(site);
                cluster.fail_site(site);
            } else {
                up.insert(site);
                cluster.repair_site(site);
            }
            policy.on_topology_change(&network.reachability(up));
            // The instantaneous protocols exchange state at every
            // change (the connection vector); mirror that at message
            // level with a RECOVER round — each granted RECOVER both
            // shrinks the partition set to the current group and
            // reintegrates the recovering site, exactly the policy's
            // sync step.
            if !optimistic {
                for site in up.iter() {
                    let _ = cluster.recover(site);
                }
            }
        } else {
            // Access event: the paper's user reaches any site; apply
            // the access wherever it is granted, plus RECOVER for
            // optimistic protocols (their reintegration moment).
            policy.on_access(&network.reachability(up));
            for origin in up.iter() {
                if cluster.probe(origin) {
                    if optimistic {
                        for site in up.iter() {
                            let _ = cluster.recover(site);
                        }
                    }
                    cluster.write(origin, counter).expect("probe said yes");
                    counter += 1;
                    break;
                }
            }
        }
        assert_eq!(
            policy.is_available(&network.reachability(up)),
            cluster.is_available(),
            "{}: divergence at step {step} with up = {up}",
            protocol.name()
        );
    }
    assert!(
        cluster.checker().violations().is_empty(),
        "{}: {:?}",
        protocol.name(),
        cluster.checker().violations()
    );
}

#[test]
fn mcv_policy_equals_mcv_cluster() {
    let n = 4;
    equivalence_walk(
        Protocol::Mcv,
        Box::new(McvPolicy::new(SiteSet::first_n(n))),
        Network::single_segment(n),
        n,
        false,
        11,
        4_000,
    );
}

#[test]
fn ldv_policy_equals_ldv_cluster() {
    let n = 4;
    equivalence_walk(
        Protocol::Ldv,
        Box::new(DynamicPolicy::ldv(SiteSet::first_n(n))),
        Network::single_segment(n),
        n,
        false,
        13,
        4_000,
    );
}

#[test]
fn odv_policy_equals_odv_cluster() {
    let n = 4;
    equivalence_walk(
        Protocol::Odv,
        Box::new(DynamicPolicy::odv(SiteSet::first_n(n))),
        Network::single_segment(n),
        n,
        true,
        17,
        4_000,
    );
}

#[test]
fn ldv_equivalence_on_the_figure_8_network() {
    // Gateways partition the copies: the walk now exercises multi-group
    // reachability. Copies on paper sites 1, 2, 6, 8 (config G) — but
    // liveness flips over *all* 8 sites, so gateways fail too.
    let network = dynamic_voting::availability::network::ucsd_network();
    let copies = SiteSet::from_indices([0, 1, 5, 7]);
    let mut policy = DynamicPolicy::ldv(copies);
    let mut cluster: Cluster<u64> = ClusterBuilder::new()
        .network(network.clone())
        .copies(copies.iter().map(|s| s.index()))
        .protocol(Protocol::Ldv)
        .build_with_value(0);
    let mut rng = SimRng::new(23);
    let mut up = SiteSet::first_n(8);
    policy.reset();
    policy.on_topology_change(&network.reachability(up));

    for step in 0..6_000 {
        let site = SiteId::new(rng.below(8));
        if up.contains(site) {
            up.remove(site);
            cluster.fail_site(site);
        } else {
            up.insert(site);
            cluster.repair_site(site);
            if copies.contains(site) {
                let _ = cluster.recover(site);
            }
        }
        policy.on_topology_change(&network.reachability(up));
        // Instantaneous semantics at message level: every reachable
        // stale copy retries RECOVER after each change.
        for site in (up & copies).iter() {
            let _ = cluster.recover(site);
        }
        assert_eq!(
            policy.is_available(&network.reachability(up)),
            cluster.is_available(),
            "divergence at step {step}, up = {up}"
        );
    }
    assert!(cluster.checker().violations().is_empty());
}
