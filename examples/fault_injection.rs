//! Fault-storm demonstration: hammer each protocol with a random
//! failure/repair/operation schedule and let the invariant monitor
//! judge the outcome.
//!
//! MCV, DV, LDV and ODV come out clean under any schedule. The
//! topological protocols are clean under *segment-respecting* faults —
//! except for the sequential-claim hazard this run deliberately
//! provokes (see DESIGN.md), which the monitor reports as a lineage
//! fork, demonstrating at message level why the published Figures 5–7
//! need a guard after total co-segment failures.
//!
//! ```text
//! cargo run --example fault_injection
//! ```

use dynamic_voting::replica::{Cluster, ClusterBuilder, Protocol};
use dynamic_voting::topology::Network;
use dynamic_voting::types::SiteId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SITES: usize = 5;
const STEPS: usize = 4_000;

fn storm(protocol: Protocol, seed: u64) -> (u64, u64, usize) {
    let mut cluster: Cluster<u64> = ClusterBuilder::new()
        .network(Network::single_segment(SITES))
        .copies(0..SITES)
        .protocol(protocol)
        .build_with_value(0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_value = 1u64;

    for _ in 0..STEPS {
        let site = SiteId::new(rng.gen_range(0..SITES));
        match rng.gen_range(0..100) {
            // Mostly operations…
            0..=39 => {
                let _ = cluster.read(site);
            }
            40..=69 => {
                if cluster.write(site, next_value).is_ok() {
                    next_value += 1;
                }
            }
            70..=79 => {
                let _ = cluster.recover(site);
            }
            // …with a steady trickle of failures and repairs.
            80..=89 => cluster.fail_site(site),
            _ => {
                cluster.repair_site(site);
                let _ = cluster.recover(site);
            }
        }
    }
    let stats = cluster.stats();
    (
        stats.granted(),
        stats.refused(),
        cluster.checker().violations().len(),
    )
}

fn main() {
    println!("{STEPS} random steps on {SITES} copies (single segment), per protocol:\n");
    println!(
        "{:<6} {:>9} {:>9} {:>12}",
        "proto", "granted", "refused", "violations"
    );
    for protocol in Protocol::ALL {
        let (granted, refused, violations) = storm(protocol, 0x5EED);
        println!(
            "{:<6} {:>9} {:>9} {:>12}{}",
            protocol.name(),
            granted,
            refused,
            violations,
            if violations > 0 {
                "   <- the sequential-claim hazard (see DESIGN.md)"
            } else {
                ""
            }
        );
    }
    println!(
        "\nOn a single segment, TDV/OTDV behave like Available Copy — any one\n\
         surviving copy keeps the file available — which is why they grant the\n\
         most operations. The same aggressiveness is what admits rival claims\n\
         after a total failure; the monitor reports those as violations."
    );
}
