//! A miniature Gemini: a directory of replicated files with per-file
//! placements and protocols over the Figure 8 network, surviving a
//! gateway failure.
//!
//! ```text
//! cargo run --example file_system
//! ```

use dynamic_voting::availability::network::ucsd_network;
use dynamic_voting::replica::{Directory, Protocol};
use dynamic_voting::types::SiteId;

fn main() {
    // Paper site k = index k-1. Gateway to the second segment is site 4
    // (index 3); site 6 (index 5) sits behind it.
    let mut dir: Directory<String> = Directory::new(ucsd_network());

    // A hot config file on the reliable main-segment trio, with a
    // witness on amos for cheap tie-breaking.
    dir.create(
        "etc/cluster.conf",
        [0, 1, 2],
        [4],
        Protocol::Odv,
        "v1".into(),
    )
    .unwrap();
    // A log replicated across segments — exposed to the partition point.
    dir.create(
        "var/events.log",
        [0, 5, 7],
        [],
        Protocol::Odv,
        String::new(),
    )
    .unwrap();
    // A scratch file living entirely on one Ethernet: topological
    // voting gives it available-copy behaviour.
    dir.create(
        "tmp/scratch",
        [0, 1, 2, 3],
        [],
        Protocol::Otdv,
        String::new(),
    )
    .unwrap();

    println!("files: {:?}\n", dir.file_names().collect::<Vec<_>>());

    let on_main = SiteId::new(0);
    let behind_gw = SiteId::new(5); // paper site 6

    dir.write("etc/cluster.conf", on_main, "v2".into()).unwrap();
    dir.write("var/events.log", behind_gw, "boot".into())
        .unwrap();

    println!("== gateway site 4 fails: the second segment detaches ==");
    dir.fail_site(SiteId::new(3));

    // The config file has no copy behind the gateway: unaffected.
    println!(
        "etc/cluster.conf read on main: {:?}",
        dir.read("etc/cluster.conf", on_main).unwrap()
    );
    // The log's majority {1, 8} is on the main side; site 6's side is
    // refused.
    println!(
        "var/events.log write on main: {:?}",
        dir.write("var/events.log", on_main, "boot+gw4-down".into())
    );
    println!(
        "var/events.log read behind the gateway: {:?}",
        dir.read("var/events.log", behind_gw)
            .map_err(|e| e.to_string())
    );
    // The scratch file lost a copy (the gateway hosts one!) but OTDV
    // claims its co-segment vote.
    println!(
        "tmp/scratch write: {:?}",
        dir.write("tmp/scratch", on_main, "still writable".into())
    );

    println!("\n== gateway repairs; its copies RECOVER ==");
    dir.repair_site(SiteId::new(3));
    let recovered = dir.recover_all(SiteId::new(3));
    println!("files recovered at site 4: {recovered}");
    println!(
        "tmp/scratch at the gateway: {:?}",
        dir.file("tmp/scratch").unwrap().value_at(SiteId::new(3))
    );
    assert_eq!(dir.total_violations(), 0);
    println!("\ninvariant monitors: clean across all files");
}
