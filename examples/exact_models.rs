//! The analytic side of the repository: exact availability and
//! reliability for every protocol on the tractable identical-site
//! system — no simulation, just Markov chains.
//!
//! ```text
//! cargo run --release --example exact_models
//! ```

use dynamic_voting::analytic::{
    ac_mttf, ac_unavailability, dv_mttf, dv_unavailability, ldv_mttf, ldv_unavailability, mcv_mttf,
    mcv_unavailability, odv_unavailability, tdv_unavailability, ParSystem,
};

fn main() {
    // Five identical sites: MTTF 30 days, MTTR 1 day.
    let sys = ParSystem {
        n: 5,
        mttf: 30.0,
        mttr: 1.0,
    };
    println!(
        "five identical sites, MTTF {} d, MTTR {} d (per-site availability {:.4})\n",
        sys.mttf,
        sys.mttr,
        sys.site_availability()
    );

    println!("exact steady-state unavailability:");
    println!("  MCV              {:>12.3e}", mcv_unavailability(&sys));
    println!("  DV               {:>12.3e}", dv_unavailability(&sys));
    println!("  LDV              {:>12.3e}", ldv_unavailability(&sys));
    for rate in [0.5, 2.0, 8.0] {
        println!(
            "  ODV @{rate:>4}/day    {:>12.3e}",
            odv_unavailability(&sys, rate)
        );
    }
    println!("  Available Copy   {:>12.3e}", ac_unavailability(&sys));

    println!("\nexact mean time to first outage (days):");
    println!("  MCV              {:>12.1}", mcv_mttf(&sys));
    println!("  DV               {:>12.1}", dv_mttf(&sys));
    println!("  LDV              {:>12.1}", ldv_mttf(&sys));
    println!("  Available Copy   {:>12.1}", ac_mttf(&sys));

    println!("\nTDV across segmentations (same five sites):");
    let segmentations: [(&str, Vec<u32>); 3] = [
        ("every site its own segment (≡ LDV)", vec![1, 2, 4, 8, 16]),
        (
            "one pair shares a segment",
            vec![0b00011, 0b00100, 0b01000, 0b10000],
        ),
        ("all on one Ethernet (≡ AC)", vec![0b11111]),
    ];
    for (label, segments) in segmentations {
        println!(
            "  {label:<38} {:>12.3e}",
            tdv_unavailability(&sys, &segments)
        );
    }
    println!(
        "\nThe two ends of that ladder are the paper's degenerate-case claims,\n\
         here as machine-checked identities; the middle rung isolates the pure\n\
         value of one co-segment pair."
    );
}
