//! Topological Dynamic Voting in action: claiming the votes of
//! co-segment sites that cannot be on the far side of a partition.
//!
//! Reproduces the paper's §3 scenario — copies A, B on one Ethernet
//! segment, C and D alone behind gateways — and shows the exact access
//! that LDV must refuse but TDV can safely grant.
//!
//! ```text
//! cargo run --example topology_study
//! ```

use dynamic_voting::replica::{ClusterBuilder, Protocol};
use dynamic_voting::topology::NetworkBuilder;
use dynamic_voting::types::SiteId;

fn build(protocol: Protocol) -> dynamic_voting::replica::Cluster<String> {
    // Sites: A=S0, B=S1 on segment alpha; C=S2 on gamma; D=S3 on delta;
    // X=S8, Y=S9 are the repeaters (gateway hosts holding no copies).
    let network = NetworkBuilder::new()
        .segment("alpha", [0, 1, 8, 9])
        .segment("gamma", [2])
        .segment("delta", [3])
        .bridge(8, "gamma")
        .bridge(9, "delta")
        .build()
        .expect("static topology");
    ClusterBuilder::new()
        .network(network)
        .copies([0, 1, 2, 3])
        .protocol(protocol)
        .build_with_value(String::from("v1"))
}

fn main() {
    let a = SiteId::new(0);
    let b = SiteId::new(1);

    for protocol in [Protocol::Ldv, Protocol::Tdv] {
        println!("== {} ==", protocol.name());
        let mut cluster = build(protocol);

        // Drive the file into the paper's state: the majority block
        // shrinks to {A, B} after the gateways fail.
        cluster.fail_site(SiteId::new(8)); // repeater X: C partitioned
        cluster.fail_site(SiteId::new(9)); // repeater Y: D partitioned
        cluster
            .write(a, "v2: majority block {A,B}".into())
            .expect("A,B majority");
        println!("partition set at A: {}", cluster.state_at(a).partition);

        // Now site A fails. B alone holds half of {A, B} — and A is the
        // maximum, so LDV refuses. But B *knows* A shares its segment:
        // no partition can separate them, so A must be down, and TDV
        // lets B claim A's vote.
        cluster.fail_site(a);
        match cluster.write(b, "v3: B carries A's vote".into()) {
            Ok(()) => println!("B's write GRANTED — A's co-segment vote was claimed"),
            Err(e) => println!("B's write refused: {e}"),
        }

        // Either way, once A repairs and recovers, service is normal.
        cluster.repair_site(a);
        cluster.recover(a).expect("B reachable");
        println!("A's copy after recovery: {:?}", cluster.value_at(a));
        println!("violations: {:?}\n", cluster.checker().violations());
    }

    println!("LDV refuses B (availability lost); TDV grants it (the paper's gain).");
    println!("The trade-off: after a *total* failure of a segment, sequential rival");
    println!("claims become possible — run `fault_injection` to see the monitor");
    println!("catch that hazard, and see DESIGN.md for the analysis.");
}
