//! Quickstart: a replicated value kept consistent by Optimistic Dynamic
//! Voting, surviving site failures and a network partition.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dynamic_voting::replica::{ClusterBuilder, Protocol};
use dynamic_voting::types::{SiteId, SiteSet};

fn main() {
    // Three copies of a value on sites S0, S1, S2, managed by ODV.
    let mut cluster = ClusterBuilder::new()
        .copies([0, 1, 2])
        .protocol(Protocol::Odv)
        .build_with_value(String::from("genesis"));

    let a = SiteId::new(0);
    let b = SiteId::new(1);
    let c = SiteId::new(2);

    println!("== all sites up ==");
    cluster
        .write(a, "v2: written at A".into())
        .expect("majority up");
    println!("read at C: {:?}", cluster.read(c).unwrap());

    println!("\n== site B fails ==");
    cluster.fail_site(b);
    // Two of three copies still form a majority; the partition set
    // shrinks to {A, C} at the next operation.
    cluster
        .write(a, "v3: written without B".into())
        .expect("2 of 3");
    println!("read at C: {:?}", cluster.read(c).unwrap());
    println!("partition set at A: {}", cluster.state_at(a).partition);

    println!("\n== network partitions: A alone vs C alone ==");
    cluster.force_partition(vec![SiteSet::from_indices([0]), SiteSet::from_indices([2])]);
    // A 1-1 tie on the majority partition {A, C}: the lexicographic
    // rule awards it to A (the maximum of the ordering).
    match cluster.write(a, "v4: A wins the tie".into()) {
        Ok(()) => println!("A's side proceeds"),
        Err(e) => println!("A refused: {e}"),
    }
    match cluster.read(c) {
        Ok(v) => println!("C read {v:?} (should not happen!)"),
        Err(e) => println!("C's side refused, as it must be: {e}"),
    }

    println!("\n== partition heals, B repairs and recovers ==");
    cluster.heal_partition();
    cluster.repair_site(b);
    println!("B's copy before RECOVER: {:?}", cluster.value_at(b));
    cluster.recover(b).expect("majority reachable");
    println!("B's copy after  RECOVER: {:?}", cluster.value_at(b));
    cluster.recover(c).expect("majority reachable");
    println!("read at B: {:?}", cluster.read(b).unwrap());

    println!("\n== bookkeeping ==");
    let stats = cluster.stats();
    println!(
        "granted: {} (reads {}, writes {}, recoveries {}); refused: {}",
        stats.granted(),
        stats.reads_ok,
        stats.writes_ok,
        stats.recovers_ok,
        stats.refused()
    );
    println!("protocol messages exchanged: {}", cluster.trace().total());
    assert!(
        cluster.checker().violations().is_empty(),
        "the invariant monitor saw no stale read, duplicate version, or fork"
    );
    println!("invariant monitor: clean");
}
