//! Test hygiene for the study pipeline: the rendered output of a quick
//! in-process study must be *byte-identical* across two runs in the
//! same process. Everything downstream — CI diffs, EXPERIMENTS.md
//! numbers, golden tables — relies on the whole chain (spec parsing,
//! common-random-numbers traces, statistics, formatting) being free of
//! wall-clock time, unseeded randomness, and iteration-order leaks.

use dynvote_availability::run::run_trace;
use dynvote_availability::run::Params;
use dynvote_availability::spec::{parse_study, ucsd_spec_text};
use dynvote_core::policy::{AvailabilityPolicy, PolicyKind};
use dynvote_experiments::output::{fmt_unavail, Table};
use dynvote_sim::Duration;

/// Small but non-degenerate workload at the pinned paper seed — long
/// enough for every configuration to accumulate real statistics.
fn quick_params() -> Params {
    Params {
        seed: Params::paper().seed,
        access_rate: 1.0,
        warmup: Duration::days(60.0),
        batch_len: Duration::days(800.0),
        batches: 3,
    }
}

/// The `study` binary's pipeline, in-process: built-in UCSD spec, every
/// configuration, every policy — rendered as both the human table and
/// the CSV, concatenated into one byte string.
fn render_quick_study() -> String {
    let spec = parse_study(ucsd_spec_text()).expect("built-in spec parses");
    let mut params = quick_params();
    params.access_rate = spec.access_rate;

    let mut headers = vec!["Config".to_string()];
    headers.extend(PolicyKind::TABLE.iter().map(|k| k.name().to_string()));
    let mut table = Table::new(headers);
    for (name, copies) in &spec.configs {
        let policies: Vec<Box<dyn AvailabilityPolicy>> = PolicyKind::TABLE
            .iter()
            .map(|k| k.build(*copies, &spec.network))
            .collect();
        let results = run_trace(&spec.network, &spec.models, policies, &params, name);
        let mut row = vec![name.clone()];
        row.extend(results.iter().map(|r| fmt_unavail(r.unavailability)));
        table.row(row);
    }
    format!("{}\n{}", table.render(), table.to_csv())
}

#[test]
fn quick_study_output_is_byte_identical_across_runs() {
    let first = render_quick_study();
    let second = render_quick_study();

    // Byte-compare the *rendered* output: this is what lands in docs
    // and CI logs, so formatting is part of the contract.
    assert!(
        first == second,
        "study output differs between runs:\n--- first ---\n{first}\n--- second ---\n{second}"
    );

    // Guard against the comparison degenerating: all eight UCSD
    // configurations must be present and at least one measured
    // unavailability must be non-zero.
    let spec = parse_study(ucsd_spec_text()).unwrap();
    for (name, _) in &spec.configs {
        assert!(first.contains(name.as_str()), "config {name} missing");
    }
    assert!(
        first
            .lines()
            .skip(1)
            .any(|line| line.chars().any(|c| ('1'..='9').contains(&c))),
        "all-zero statistics: the workload is too small\n{first}"
    );
}
