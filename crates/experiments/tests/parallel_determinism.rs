//! Regression: parallel row regeneration must be *bitwise* identical to
//! running the rows sequentially.
//!
//! Every Table 2/3 row is an independent common-random-numbers trace,
//! so thread scheduling can change nothing — not even the last ULP of a
//! confidence interval. This test pins that claim at the paper seed by
//! comparing every field of every `RunResult`, floats via `to_bits()`.

use dynvote_availability::run::{Params, RunResult};
use dynvote_experiments::{simulate_all_rows, RowMode};
use dynvote_sim::Duration;

/// Small but non-trivial workload at the pinned paper seed: long enough
/// for outages (non-zero Table 3 cells) on every configuration.
fn pinned_params() -> Params {
    Params {
        seed: Params::paper().seed,
        access_rate: 1.0,
        warmup: Duration::days(90.0),
        batch_len: Duration::days(2_000.0),
        batches: 4,
    }
}

fn assert_bitwise_eq(a: &RunResult, b: &RunResult) {
    let ctx = format!("{} on {}", a.policy, a.config);
    assert_eq!(a.policy, b.policy, "policy ({ctx})");
    assert_eq!(a.config, b.config, "config ({ctx})");
    for (name, x, y) in [
        ("unavailability", a.unavailability, b.unavailability),
        ("ci_half", a.ci_half, b.ci_half),
        ("mean_outage_days", a.mean_outage_days, b.mean_outage_days),
        ("p50_outage_days", a.p50_outage_days, b.p50_outage_days),
        ("p90_outage_days", a.p90_outage_days, b.p90_outage_days),
        ("max_outage_days", a.max_outage_days, b.max_outage_days),
        ("measured_days", a.measured_days, b.measured_days),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name} differs ({ctx}): {x:?} vs {y:?}"
        );
    }
    assert_eq!(a.outage_count, b.outage_count, "outage_count ({ctx})");
    assert_eq!(a.hazard_events, b.hazard_events, "hazard_events ({ctx})");
}

#[test]
fn parallel_rows_match_sequential_rows_bitwise() {
    let params = pinned_params();
    let parallel = simulate_all_rows(&params, RowMode::Parallel);
    let sequential = simulate_all_rows(&params, RowMode::Sequential);

    assert_eq!(parallel.len(), sequential.len(), "row count");
    let mut outages = 0u64;
    for (p_row, s_row) in parallel.iter().zip(&sequential) {
        assert_eq!(p_row.len(), s_row.len(), "cells per row");
        for (p, s) in p_row.iter().zip(s_row) {
            assert_bitwise_eq(p, s);
            outages += p.outage_count;
        }
    }
    // Guard against the test silently degenerating into comparing
    // all-zero statistics.
    assert!(outages > 0, "workload too small to exercise outage stats");
}

#[test]
fn parallel_rows_are_reproducible_across_runs() {
    let params = pinned_params();
    let first = simulate_all_rows(&params, RowMode::Parallel);
    let second = simulate_all_rows(&params, RowMode::Parallel);
    for (f_row, s_row) in first.iter().zip(&second) {
        for (f, s) in f_row.iter().zip(s_row) {
            assert_bitwise_eq(f, s);
        }
    }
}
