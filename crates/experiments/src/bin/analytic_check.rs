//! Cross-validates the discrete-event simulator against exact Markov
//! models on the tractable special cases (identical sites, exponential
//! failure and repair, no partitions) — the Pâris–Burkhard setting.
//!
//! Agreement here validates the whole simulation stack: the event
//! queue, the distributions, the driver, the policy state machines, and
//! the batch-means statistics.
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin analytic_check [--quick]
//! ```

use dynvote_analytic::{
    ac_unavailability, dv_unavailability, ldv_unavailability, mcv_unavailability,
    odv_unavailability, tdv_unavailability, ParSystem,
};
use dynvote_availability::run::{run_trace, Params, RunResult};
use dynvote_availability::sites::identical_sites;
use dynvote_core::policy::{AvailabilityPolicy, AvailableCopyPolicy, DynamicPolicy, McvPolicy};
use dynvote_experiments::output::Table;
use dynvote_experiments::CliParams;
use dynvote_sim::Duration;
use dynvote_topology::Network;
use dynvote_types::SiteSet;

fn record(table: &mut Table, worst: &mut f64, n: usize, result: &RunResult, exact: f64) {
    // Below-resolution cells: when the exact value is so small that the
    // run expects ~zero outages, observing none is the *correct*
    // outcome, not a miss.
    let resolution = 3.0 / result.measured_days;
    if result.unavailability == 0.0 && exact < resolution {
        table.row(vec![
            n.to_string(),
            result.policy.clone(),
            format!("{exact:.6}"),
            "0 outages observed".to_string(),
            "-".to_string(),
            "n/a (below resolution)".to_string(),
        ]);
        return;
    }
    let rel = (result.unavailability - exact).abs() / exact.max(1e-12);
    *worst = worst.max(rel);
    let in_ci = (result.unavailability - exact).abs() <= result.ci_half.max(1e-9);
    table.row(vec![
        n.to_string(),
        result.policy.clone(),
        format!("{exact:.6}"),
        format!("{:.6} ±{:.6}", result.unavailability, result.ci_half),
        format!("{:.2}%", rel * 100.0),
        if in_ci { "yes" } else { "no" }.to_string(),
    ]);
}

fn main() {
    let cli = CliParams::from_env();
    println!("# Analytic cross-check: CTMC vs. simulator");
    println!();
    println!("Identical sites, MTTF 10 d, exponential MTTR 12 h, no partitions.");
    println!();

    let mut table = Table::new(vec![
        "n".into(),
        "policy".into(),
        "exact (CTMC)".into(),
        "simulated".into(),
        "rel. error".into(),
        "within CI?".into(),
    ]);
    let mut worst: f64 = 0.0;
    for n in [2usize, 3, 4, 5] {
        let sys = ParSystem {
            n,
            mttf: 10.0,
            mttr: 0.5,
        };
        let network = Network::single_segment(n);
        let models = identical_sites(n, Duration::days(10.0), Duration::hours(12.0));
        let copies = SiteSet::first_n(n);

        // Instantaneous protocols: no access events needed (or wanted —
        // the exact chains model pure connection-vector semantics).
        // Strict MCV here: the analytic model is the textbook binomial.
        let policies: Vec<Box<dyn AvailabilityPolicy>> = vec![
            Box::new(McvPolicy::strict(copies)),
            Box::new(DynamicPolicy::dv(copies)),
            Box::new(DynamicPolicy::ldv(copies)),
            Box::new(AvailableCopyPolicy::new(copies)),
            // TDV on the single shared segment — analytically identical
            // to Available Copy, and the simulator must agree.
            Box::new(DynamicPolicy::tdv(copies, network.clone())),
        ];
        let params = Params {
            access_rate: 0.0,
            ..cli.params.clone()
        };
        let results = run_trace(&network, &models, policies, &params, "uniform");
        let one_segment = [(1u32 << n) - 1];
        let exact = [
            mcv_unavailability(&sys),
            dv_unavailability(&sys),
            ldv_unavailability(&sys),
            ac_unavailability(&sys),
            tdv_unavailability(&sys, &one_segment),
        ];
        for (result, exact) in results.iter().zip(exact) {
            record(&mut table, &mut worst, n, result, exact);
        }

        // ODV: the optimistic chain with the same Poisson access rate
        // the simulator uses.
        let access_rate = 1.0;
        let policies: Vec<Box<dyn AvailabilityPolicy>> = vec![Box::new(DynamicPolicy::odv(copies))];
        let params = Params {
            access_rate,
            ..cli.params.clone()
        };
        let results = run_trace(&network, &models, policies, &params, "uniform");
        record(
            &mut table,
            &mut worst,
            n,
            &results[0],
            odv_unavailability(&sys, access_rate),
        );
    }
    print!("{}", table.render());
    println!();
    println!("worst relative error: {:.2}%", worst * 100.0);
}
