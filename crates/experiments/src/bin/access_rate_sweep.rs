//! Sweeps the file-access rate for the optimistic protocols.
//!
//! The paper measured ODV "assuming one file access per day" and argued
//! its staleness can even help (configuration F). This sweep quantifies
//! the staleness knob: as the access rate grows, ODV's state exchange
//! becomes effectively continuous and its availability converges to
//! LDV's; as the rate shrinks, quorums fossilize and availability
//! approaches static voting. The crossovers per configuration show
//! where "optimistic" is free and where it costs.
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin access_rate_sweep [--quick]
//! ```

use dynvote_availability::config::{CONFIG_A, CONFIG_D, CONFIG_F, CONFIG_H};
use dynvote_availability::network::ucsd_network;
use dynvote_availability::run::run_trace;
use dynvote_availability::sites::UCSD_SITES;
use dynvote_core::policy::{AvailabilityPolicy, DynamicPolicy};
use dynvote_experiments::output::{fmt_unavail, Table};
use dynvote_experiments::CliParams;

const RATES: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 8.0, 32.0];

fn main() {
    let cli = CliParams::from_env();
    let network = ucsd_network();
    println!("# ODV / OTDV unavailability vs. access rate (accesses per day)");
    println!();

    for config in [&CONFIG_A, &CONFIG_D, &CONFIG_F, &CONFIG_H] {
        let mut headers = vec!["policy".to_string()];
        headers.extend(RATES.iter().map(|r| format!("{r}/day")));
        headers.push("LDV (reference)".to_string());
        let mut table = Table::new(headers);

        // The LDV reference is rate-independent (instantaneous).
        let ldv = run_trace(
            &network,
            &UCSD_SITES,
            vec![Box::new(DynamicPolicy::ldv(config.copies)) as Box<dyn AvailabilityPolicy>],
            &cli.params,
            config.name,
        )
        .pop()
        .expect("one result");

        let mut odv_row = vec!["ODV".to_string()];
        let mut otdv_row = vec!["OTDV".to_string()];
        for rate in RATES {
            let mut params = cli.params.clone();
            params.access_rate = rate;
            let policies: Vec<Box<dyn AvailabilityPolicy>> = vec![
                Box::new(DynamicPolicy::odv(config.copies)),
                Box::new(DynamicPolicy::otdv(config.copies, network.clone())),
            ];
            let results = run_trace(&network, &UCSD_SITES, policies, &params, config.name);
            odv_row.push(fmt_unavail(results[0].unavailability));
            otdv_row.push(fmt_unavail(results[1].unavailability));
        }
        odv_row.push(fmt_unavail(ldv.unavailability));
        otdv_row.push("-".to_string());
        table.row(odv_row);
        table.row(otdv_row);

        println!(
            "## Configuration {} (copies {:?})",
            config.name, config.paper_sites
        );
        println!();
        print!("{}", table.render());
        println!();
    }
    println!(
        "Reading: at high access rates ODV converges toward the LDV reference; \
         at low rates stale quorums dominate. The paper's operating point is 1/day."
    );
}
