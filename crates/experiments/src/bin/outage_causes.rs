//! Diagnosis: *why* is each Table 2 cell what it is?
//!
//! Attributes every outage to the set of sites that were down at the
//! moment it began, aggregated by signature. The Table 2 numbers say
//! who wins; this says *mechanistically why* — which failure
//! combinations actually take each protocol down on the Figure 8
//! network.
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin outage_causes [--quick]
//! ```

use dynvote_availability::config::{CONFIG_A, CONFIG_D, CONFIG_F, CONFIG_H};
use dynvote_availability::network::ucsd_network;
use dynvote_availability::run::attribute_outages;
use dynvote_availability::sites::UCSD_SITES;
use dynvote_core::policy::PolicyKind;
use dynvote_experiments::output::Table;
use dynvote_experiments::CliParams;
use dynvote_types::SiteSet;

/// Renders a down-set with the paper's site numbers and hostnames.
fn describe(down: SiteSet) -> String {
    let names: Vec<String> = down
        .iter()
        .map(|s| format!("{} ({})", s.index() + 1, UCSD_SITES[s.index()].name))
        .collect();
    if names.is_empty() {
        "nothing down (stale quorum)".to_string()
    } else {
        names.join(" + ")
    }
}

fn main() {
    let cli = CliParams::from_env();
    let network = ucsd_network();
    for (config, policies) in [
        (&CONFIG_A, vec![PolicyKind::Mcv, PolicyKind::Ldv]),
        (
            &CONFIG_F,
            vec![PolicyKind::Dv, PolicyKind::Ldv, PolicyKind::Odv],
        ),
        (&CONFIG_H, vec![PolicyKind::Mcv, PolicyKind::Dv]),
        (&CONFIG_D, vec![PolicyKind::Ldv, PolicyKind::Tdv]),
    ] {
        for kind in policies {
            let raw = attribute_outages(
                &network,
                &UCSD_SITES,
                kind.build(config.copies, &network),
                &cli.params,
            );
            // Mask signatures to the sites that can matter for this
            // placement — its copies and the gateways — so unrelated
            // background failures do not split the buckets.
            let relevant = config.copies | network.gateways();
            let mut merged: std::collections::HashMap<u64, (SiteSet, u64, f64)> =
                std::collections::HashMap::new();
            for cause in raw {
                let key = cause.down & relevant;
                let entry = merged.entry(key.bits()).or_insert((key, 0, 0.0));
                entry.1 += cause.count;
                entry.2 += cause.total_days;
            }
            let mut causes: Vec<_> = merged.into_values().collect();
            causes.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
            let total: f64 = causes.iter().map(|c| c.2).sum();
            println!(
                "## {} on configuration {} (paper sites {:?}) — {:.1} outage-days total",
                kind.name(),
                config.name,
                config.paper_sites,
                total
            );
            println!();
            if causes.is_empty() {
                println!("no outage at all in the measured period");
                println!();
                continue;
            }
            let mut table = Table::new(vec![
                "relevant sites down at outage start".into(),
                "outages".into(),
                "days".into(),
                "share".into(),
            ]);
            for (down, count, days) in causes.iter().take(6) {
                table.row(vec![
                    describe(*down),
                    count.to_string(),
                    format!("{days:.2}"),
                    format!("{:.0}%", 100.0 * days / total),
                ]);
            }
            if causes.len() > 6 {
                let rest: f64 = causes.iter().skip(6).map(|c| c.2).sum();
                table.row(vec![
                    format!("… {} more signatures", causes.len() - 6),
                    String::new(),
                    format!("{rest:.2}"),
                    format!("{:.0}%", 100.0 * rest / total),
                ]);
            }
            print!("{}", table.render());
            println!();
        }
    }
    println!(
        "Reading: each cell has a dominant mechanism. DV-on-F is ~80% the single \
         signature 'wizard (gateway 4) down' — the 2-2 tie frozen for a two-week \
         repair. LDV's residue on A/F is 'csvax + wizard down' — the tie-break \
         site lost while the quorum is shrunken. TDV-on-D needs gremlin plus a \
         co-segment victim down at once: gremlin sits alone on its segment, so \
         its vote is the one TDV can never claim."
    );
}
