//! Regenerates Table 2: replicated-file unavailabilities for the eight
//! configurations A–H under MCV, DV, LDV, ODV, TDV and OTDV.
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin table2 [--quick]
//! ```

use dynvote_availability::run::RunResult;
use dynvote_experiments::output::{fmt_unavail, Table};
use dynvote_experiments::paper::{CONFIG_LABELS, PAPER_TABLE2, POLICY_NAMES};
use dynvote_experiments::{simulate_all_rows, CliParams, RowMode};

fn main() {
    let cli = CliParams::from_env();
    println!("# Table 2: Replicated File Unavailabilities");
    println!();
    println!(
        "Simulated {} batches x {} days after a {}-day warm-up; one access \
         every {:.2} days on average; seed {:#x}.",
        cli.params.batches,
        cli.params.batch_len.as_days(),
        cli.params.warmup.as_days(),
        1.0 / cli.params.access_rate,
        cli.params.seed,
    );
    println!();

    // One common-random-numbers trace per configuration; rows fan out
    // across workers (DYNVOTE_SEQUENTIAL=1 forces one thread) with
    // byte-identical output either way.
    let rows: Vec<Vec<RunResult>> = simulate_all_rows(&cli.params, RowMode::from_env());

    let mut headers = vec!["Sites".to_string()];
    headers.extend(POLICY_NAMES.iter().map(|p| p.to_string()));
    let mut measured = Table::new(headers.clone());
    let mut side_by_side = Table::new(headers);
    for (i, row) in rows.iter().enumerate() {
        let mut m = vec![CONFIG_LABELS[i].to_string()];
        let mut s = vec![CONFIG_LABELS[i].to_string()];
        for (j, result) in row.iter().enumerate() {
            m.push(format!(
                "{} ±{}",
                fmt_unavail(result.unavailability),
                fmt_unavail(result.ci_half)
            ));
            s.push(format!(
                "{} / {}",
                fmt_unavail(PAPER_TABLE2[i][j]),
                fmt_unavail(result.unavailability)
            ));
        }
        measured.row(m);
        side_by_side.row(s);
    }

    println!("## Measured (±95% CI half-width)");
    println!();
    print!("{}", measured.render());
    println!();
    println!("## Paper / measured");
    println!();
    print!("{}", side_by_side.render());
    println!();

    // Quantify the sequential-claim hazard (see DESIGN.md): how often
    // the topological protocols actually admit rival majority blocks on
    // the real failure models.
    let hazard_total: u64 = rows
        .iter()
        .flat_map(|row| row.iter())
        .map(|r| r.hazard_events)
        .sum();
    println!("## Sequential-claim hazard incidence");
    println!();
    if hazard_total == 0 {
        println!(
            "No rival-grant event in any cell ({} measured days per cell): on \
             these failure models the TDV/OTDV hazard requires a co-segment \
             total failure with out-of-order recovery, which never occurred.",
            rows[0][0].measured_days
        );
    } else {
        for row in &rows {
            for r in row {
                if r.hazard_events > 0 {
                    println!(
                        "- {} on {}: {} rival-grant event(s) in {:.0} days",
                        r.policy, r.config, r.hazard_events, r.measured_days
                    );
                }
            }
        }
    }
    println!();
    shape_report(&rows);
}

/// Checks the paper's qualitative findings against the measured rows and
/// prints a pass/fail line for each.
#[allow(clippy::needless_range_loop)] // index drives two parallel tables
fn shape_report(rows: &[Vec<RunResult>]) {
    let u = |row: usize, col: usize| rows[row][col].unavailability;
    let (mcv, dv, ldv, odv, tdv, otdv) = (0, 1, 2, 3, 4, 5);
    let mut checks: Vec<(String, bool)> = Vec::new();

    // Finding 1: DV worse than MCV for three copies (rows A-D).
    for row in 0..4 {
        checks.push((
            format!("DV > MCV on configuration {}", CONFIG_LABELS[row]),
            u(row, dv) > u(row, mcv),
        ));
    }
    // Finding 2: DV much better than MCV on E and G; worse on F and H.
    checks.push(("DV < MCV on E".into(), u(4, dv) < u(4, mcv)));
    checks.push(("DV < MCV on G".into(), u(6, dv) < u(6, mcv)));
    checks.push(("DV > MCV on F".into(), u(5, dv) > u(5, mcv)));
    // The paper's H claim: a failure of site 5 leaves DV with two equal
    // groups, so the configuration behaves "not essentially different
    // from a single copy at site 5" (intrinsic unavailability ≈ 0.0016).
    let site5 =
        dynvote_availability::sites::UCSD_SITES[4].intrinsic_unavailability() + 3.0 / (24.0 * 90.0); // plus its maintenance fraction
    checks.push((
        "DV on H behaves like a single copy at site 5".into(),
        u(7, dv) > 0.5 * site5 && u(7, dv) < 5.0 * site5,
    ));
    // Finding 3: LDV outperforms MCV and DV in all cases.
    for row in 0..8 {
        checks.push((
            format!("LDV <= MCV, DV on {}", CONFIG_LABELS[row]),
            u(row, ldv) <= u(row, mcv) && u(row, ldv) <= u(row, dv),
        ));
    }
    // Finding 4: ODV comparable to LDV, better on F.
    checks.push(("ODV < LDV on F".into(), u(5, odv) < u(5, ldv)));
    // Finding 5: TDV/OTDV much better when copies share a segment
    // (A, B, E, F, G, H) — at least 2x better than LDV on A, E, F.
    for &row in &[0usize, 4, 5] {
        checks.push((
            format!("TDV < LDV / 2 on {}", CONFIG_LABELS[row]),
            u(row, tdv) < u(row, ldv) / 2.0,
        ));
    }
    // Finding 6: C (all copies isolated): TDV == LDV, OTDV == ODV.
    checks.push(("TDV == LDV on C".into(), u(2, tdv) == u(2, ldv)));
    checks.push(("OTDV == ODV on C".into(), u(2, otdv) == u(2, odv)));
    // Finding 7: E is the best row for TDV/OTDV (near-zero).
    checks.push(("TDV on E < 1e-4".into(), u(4, tdv) < 1e-4));
    checks.push(("OTDV on E < 1e-4".into(), u(4, otdv) < 1e-4));

    println!("## Shape checks (paper findings reproduced?)");
    println!();
    let mut pass = 0;
    for (name, ok) in &checks {
        println!("- [{}] {}", if *ok { "x" } else { " " }, name);
        pass += usize::from(*ok);
    }
    println!();
    println!("{pass}/{} checks passed", checks.len());
}
