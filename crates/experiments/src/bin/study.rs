//! Runs a Table 2-style availability comparison over a user-supplied
//! study specification — your network, your site models, your copy
//! placements, no code required.
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin study -- my_study.txt [--quick …]
//! cargo run --release -p dynvote-experiments --bin study            # built-in UCSD spec
//! ```
//!
//! The spec format is documented in `dynvote_availability::spec`; run
//! with no file to evaluate the built-in Figure 8 / Table 1 study (the
//! same study `table2` runs from code).

use dynvote_availability::run::run_trace;
use dynvote_availability::spec::{parse_study, ucsd_spec_text};
use dynvote_core::policy::{AvailabilityPolicy, PolicyKind};
use dynvote_experiments::output::{fmt_unavail, Table};
use dynvote_experiments::CliParams;

fn main() {
    // Split args: the first non-flag argument is the spec file; the
    // rest go to the common parameter parser.
    let mut file: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        if !arg.starts_with('-') && file.is_none() {
            file = Some(arg);
        } else {
            rest.push(arg.clone());
            // Flags with values: forward the value too.
            if matches!(
                arg.as_str(),
                "--seed" | "--batches" | "--batch-days" | "--warmup-days" | "--access-rate"
            ) {
                if let Some(value) = args.next() {
                    rest.push(value);
                }
            }
        }
    }
    let cli = CliParams::parse(rest).unwrap_or_else(|msg| {
        eprintln!("error: {msg}");
        std::process::exit(2);
    });

    let text = match &file {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => ucsd_spec_text().to_string(),
    };
    let spec = match parse_study(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("spec error: {e}");
            std::process::exit(1);
        }
    };

    let mut params = cli.params.clone();
    params.access_rate = spec.access_rate;

    println!(
        "# Study: {} ({} sites, {} segments, {} configs)",
        file.as_deref()
            .unwrap_or("built-in UCSD (Figure 8 / Table 1)"),
        spec.network.sites().len(),
        spec.network.segment_count(),
        spec.configs.len()
    );
    println!();

    let mut headers = vec!["Config".to_string()];
    headers.extend(PolicyKind::TABLE.iter().map(|k| k.name().to_string()));
    let mut table = Table::new(headers);
    for (name, copies) in &spec.configs {
        let policies: Vec<Box<dyn AvailabilityPolicy>> = PolicyKind::TABLE
            .iter()
            .map(|k| k.build(*copies, &spec.network))
            .collect();
        let results = run_trace(&spec.network, &spec.models, policies, &params, name);
        let mut row = vec![format!("{name}: {copies}", copies = *copies)];
        row.extend(results.iter().map(|r| fmt_unavail(r.unavailability)));
        table.row(row);
    }
    print!("{}", table.render());
    println!();
    println!("(unavailabilities; flags: --quick --seed --batches --batch-days --warmup-days)");
}
