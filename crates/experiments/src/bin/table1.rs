//! Prints Table 1 (the site models) and audits the Figure 8 topology:
//! which gateway failures partition which configurations.
//!
//! These are the *inputs* of the study; the audit verifies that the
//! encoded network reproduces every partition-structure claim the paper
//! makes about configurations A–H.
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin table1
//! ```

use dynvote_availability::config::ALL_CONFIGS;
use dynvote_availability::network::ucsd_network;
use dynvote_availability::sites::UCSD_SITES;
use dynvote_experiments::output::Table;
use dynvote_types::SiteId;

fn main() {
    println!("# Table 1: Site Characteristics");
    println!();
    let mut t = Table::new(vec![
        "Site".into(),
        "Name".into(),
        "MTTF (days)".into(),
        "HW failures".into(),
        "Restart (min)".into(),
        "HW repair const (h)".into(),
        "HW repair exp (h)".into(),
        "Maintenance".into(),
        "Intrinsic unavail".into(),
    ]);
    for (i, site) in UCSD_SITES.iter().enumerate() {
        t.row(vec![
            format!("{}", i + 1),
            site.name.to_string(),
            format!("{}", site.mttf.as_days()),
            format!("{:.0}%", site.hw_fraction * 100.0),
            format!("{:.0}", site.restart.as_hours() * 60.0),
            format!("{:.0}", site.hw_floor.as_hours()),
            format!("{:.0}", site.hw_mean.as_hours()),
            match site.maintenance {
                Some((interval, duration)) => {
                    format!("{:.0} h / {:.0} d", duration.as_hours(), interval.as_days())
                }
                None => "-".to_string(),
            },
            format!("{:.6}", site.intrinsic_unavailability()),
        ]);
    }
    print!("{}", t.render());
    println!();

    println!("# Figure 8: Network Topology");
    println!();
    let net = ucsd_network();
    println!(
        "- segments: {} (main: sites 1-5; second: site 6; third: sites 7-8)",
        net.segment_count()
    );
    println!("- gateways: site 4 (main <-> second), site 5 (main <-> third)");
    println!();

    println!("# Partition audit (paper claims vs. encoded topology)");
    println!();
    let gw4 = SiteId::new(3);
    let gw5 = SiteId::new(4);
    let mut audit = Table::new(vec![
        "Config".into(),
        "Copies".into(),
        "Site 4 splits copies?".into(),
        "Site 5 splits copies?".into(),
        "Paper's note".into(),
    ]);
    for config in ALL_CONFIGS {
        let splits = |gateway: SiteId| {
            let up = net.sites().without(gateway);
            let groups = net.reachability(up);
            let populated = groups
                .groups()
                .iter()
                .filter(|g| !(**g & config.copies).is_empty())
                .count();
            if populated > 1 {
                "yes"
            } else {
                "no"
            }
        };
        audit.row(vec![
            config.name.to_string(),
            config
                .paper_sites
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            splits(gw4).to_string(),
            splits(gw5).to_string(),
            config.note.to_string(),
        ]);
    }
    print!("{}", audit.render());
}
