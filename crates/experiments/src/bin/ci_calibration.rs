//! Methodological self-check: are the batch-means 95% confidence
//! intervals actually 95% intervals?
//!
//! Batch means only give honest intervals when batches are long enough
//! to be approximately independent. This binary runs the same cell
//! (configuration B × LDV, the paper's mid-range case) across many
//! independent seeds, and reports how often each run's CI covers the
//! cross-seed grand mean — which should land near the nominal 95% —
//! alongside the dispersion of the per-run estimates.
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin ci_calibration [--quick]
//! ```

use dynvote_availability::config::CONFIG_B;
use dynvote_availability::run::{simulate, Params};
use dynvote_core::policy::PolicyKind;
use dynvote_experiments::output::Table;
use dynvote_experiments::CliParams;
use dynvote_sim::Duration;

fn main() {
    let cli = CliParams::from_env();
    let seeds = if cli.quick { 20 } else { 50 };
    // Deliberately modest runs so coverage is a real test (huge runs
    // make every CI tiny *and* every estimate identical).
    let base = Params {
        batch_len: Duration::days(4_000.0),
        batches: 12,
        ..cli.params.clone()
    };

    println!("# CI calibration: {seeds} independent seeds of configuration B x LDV");
    println!(
        "({} batches x {} days each; nominal coverage 95%)",
        base.batches,
        base.batch_len.as_days()
    );
    println!();

    let runs: Vec<_> = (0..seeds)
        .map(|i| {
            let params = Params {
                seed: 0xCA11_B000 + i as u64,
                ..base.clone()
            };
            simulate(PolicyKind::Ldv, &CONFIG_B, &params)
        })
        .collect();

    let grand_mean: f64 = runs.iter().map(|r| r.unavailability).sum::<f64>() / runs.len() as f64;
    let covered = runs
        .iter()
        .filter(|r| (r.unavailability - grand_mean).abs() <= r.ci_half)
        .count();

    let mut table = Table::new(vec![
        "seed".into(),
        "unavailability".into(),
        "CI half-width".into(),
        "covers grand mean?".into(),
    ]);
    for (i, r) in runs.iter().enumerate() {
        table.row(vec![
            format!("{i}"),
            format!("{:.6}", r.unavailability),
            format!("{:.6}", r.ci_half),
            if (r.unavailability - grand_mean).abs() <= r.ci_half {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    print!("{}", table.render());
    println!();
    let spread = {
        let var = runs
            .iter()
            .map(|r| (r.unavailability - grand_mean).powi(2))
            .sum::<f64>()
            / (runs.len() - 1) as f64;
        var.sqrt()
    };
    println!("grand mean: {grand_mean:.6}; cross-seed std dev: {spread:.6}");
    println!(
        "coverage: {covered}/{} = {:.0}% (nominal 95%)",
        runs.len(),
        100.0 * covered as f64 / runs.len() as f64
    );
    println!(
        "\nReading: coverage near 95% means the batch length is long enough for \
         batch independence; far below it would mean the Tables' error bars are \
         optimistic."
    );
}
