//! The paper's first "future work" item: witness copies.
//!
//! A witness stores the consistency-control state but no data. This
//! study compares, on the real site models:
//!
//! * two full copies (LDV),
//! * two full copies plus one witness (dynamic voting with witnesses),
//! * three full copies (LDV) — the storage-expensive upper bound,
//!
//! placing the witness on each candidate site in turn. The paper's
//! conjecture (from Pâris 1986) is that 2 copies + 1 witness buys most
//! of the third copy's availability at a fraction of its storage cost.
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin witness_study [--quick]
//! ```

use dynvote_availability::network::ucsd_network;
use dynvote_availability::run::run_trace;
use dynvote_availability::sites::UCSD_SITES;
use dynvote_core::policy::{AvailabilityPolicy, DynamicPolicy, WitnessPolicy};
use dynvote_experiments::output::{fmt_unavail, Table};
use dynvote_experiments::CliParams;
use dynvote_types::SiteSet;

fn main() {
    let cli = CliParams::from_env();
    let network = ucsd_network();
    println!("# Witness study: 2 copies + 1 witness vs. 2 and 3 full copies");
    println!();
    println!("Full copies on paper sites 1 and 2 (the main segment's fast-repair");
    println!("hosts); the witness placed on each candidate site in turn.");
    println!();

    let full = SiteSet::from_indices([0, 1]); // paper sites 1, 2

    // Baselines.
    let baselines: Vec<Box<dyn AvailabilityPolicy>> = vec![
        Box::new(DynamicPolicy::ldv(full)),
        Box::new(DynamicPolicy::ldv(SiteSet::from_indices([0, 1, 2]))),
    ];
    let base = run_trace(&network, &UCSD_SITES, baselines, &cli.params, "witness");

    let mut table = Table::new(vec![
        "arrangement".into(),
        "unavailability".into(),
        "data copies".into(),
    ]);
    table.row(vec![
        "2 copies (1, 2), LDV".into(),
        fmt_unavail(base[0].unavailability),
        "2".into(),
    ]);

    // Witness placements: each remaining site.
    for witness_site in [2usize, 3, 4, 5, 6, 7] {
        let witness = SiteSet::from_indices([witness_site]);
        let policy: Vec<Box<dyn AvailabilityPolicy>> =
            vec![Box::new(WitnessPolicy::with_mode(full, witness, false))];
        let r = run_trace(&network, &UCSD_SITES, policy, &cli.params, "witness");
        table.row(vec![
            format!("2 copies + witness on site {}", witness_site + 1),
            fmt_unavail(r[0].unavailability),
            "2".into(),
        ]);
    }

    table.row(vec![
        "3 copies (1, 2, 3), LDV".into(),
        fmt_unavail(base[1].unavailability),
        "3".into(),
    ]);
    print!("{}", table.render());
    println!();
    println!(
        "Reading: a well-placed witness (a reliable, same-partition-side host) \
         recovers most of the third copy's availability with no data storage; \
         a witness behind a flaky gateway can even hurt."
    );
}
