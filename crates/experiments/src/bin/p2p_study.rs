//! Point-to-point networks — the contrast class of §3.
//!
//! The paper's topological protocols exploit non-partitionable
//! segments; on a *conventional point-to-point network* every link is a
//! partition point and vote claiming never applies. This study places
//! five copies on three classic link graphs — a ring, a star, and a
//! full mesh — with failing links, and compares the non-topological
//! protocols. Link failures are modelled by virtual link sites carrying
//! their own failure model (see `dynvote_topology::point_to_point`).
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin p2p_study [--quick]
//! ```

use std::borrow::Cow;

use dynvote_availability::run::run_trace;
use dynvote_availability::sites::{identical_sites, SiteModel};
use dynvote_core::policy::{AvailabilityPolicy, DynamicPolicy, McvPolicy};
use dynvote_experiments::output::{fmt_unavail, Table};
use dynvote_experiments::CliParams;
use dynvote_sim::Duration;
use dynvote_topology::point_to_point;
use dynvote_types::SiteSet;

const N: usize = 5;

fn link_model() -> SiteModel {
    // Links fail more often than hosts but repair fast (reroute /
    // replug): MTTF 20 days, constant 30-minute repair.
    SiteModel {
        name: Cow::Borrowed("link"),
        mttf: Duration::days(20.0),
        hw_fraction: 0.0,
        restart: Duration::minutes(30.0),
        hw_floor: Duration::ZERO,
        hw_mean: Duration::ZERO,
        maintenance: None,
    }
}

fn main() {
    let cli = CliParams::from_env();
    let graphs: [(&str, Vec<(usize, usize)>); 3] = [
        ("ring", (0..N).map(|i| (i, (i + 1) % N)).collect()),
        ("star (hub = site 0)", (1..N).map(|i| (0, i)).collect()),
        (
            "full mesh",
            (0..N)
                .flat_map(|a| ((a + 1)..N).map(move |b| (a, b)))
                .collect(),
        ),
    ];

    println!("# Point-to-point study: {N} copies, hosts MTTF 30 d / MTTR 4 h,");
    println!("# links MTTF 20 d / 30 min repair. No shared segments — the");
    println!("# world where topological voting has nothing to claim.");
    println!();
    let mut table = Table::new(vec![
        "link graph".into(),
        "links".into(),
        "MCV".into(),
        "DV".into(),
        "LDV".into(),
        "ODV".into(),
    ]);
    for (label, links) in graphs {
        let (network, link_sites) = point_to_point(N, &links);
        // Host models for the real sites, link model for each virtual
        // link site.
        let mut models = identical_sites(N, Duration::days(30.0), Duration::hours(4.0));
        for _ in &link_sites {
            models.push(link_model());
        }
        let copies = SiteSet::first_n(N);
        let policies: Vec<Box<dyn AvailabilityPolicy>> = vec![
            Box::new(McvPolicy::new(copies)),
            Box::new(DynamicPolicy::dv(copies)),
            Box::new(DynamicPolicy::ldv(copies)),
            Box::new(DynamicPolicy::odv(copies)),
        ];
        let results = run_trace(&network, &models, policies, &cli.params, label);
        let mut row = vec![label.to_string(), links.len().to_string()];
        row.extend(results.iter().map(|r| fmt_unavail(r.unavailability)));
        table.row(row);
    }
    print!("{}", table.render());
    println!();
    println!(
        "Reading: the mesh barely notices link failures (any up pair stays \
         connected, so only multi-host outages count); the star lives and \
         dies with its hub — once the hub is gone every copy is a singleton \
         and *no* protocol can help, which is why all four columns agree; \
         the ring sits between (two link failures split it), and there the \
         tie-break earns LDV its visible edge."
    );
}
