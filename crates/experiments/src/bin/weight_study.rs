//! The paper's second "future work" item: weight assignments.
//!
//! Static voting with skewed weights (Gifford) is the cheapest possible
//! tweak to MCV. This study sweeps the extra-vote placement over the
//! Table 2 configurations and asks: how close can a *static* weighted
//! scheme get to *dynamic* voting?
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin weight_study [--quick]
//! ```

use dynvote_availability::config::ALL_CONFIGS;
use dynvote_availability::network::ucsd_network;
use dynvote_availability::run::run_trace;
use dynvote_availability::sites::UCSD_SITES;
use dynvote_core::policy::{
    AvailabilityPolicy, DynamicPolicy, VoteReassignmentPolicy, WeightedMcvPolicy,
};
use dynvote_experiments::output::{fmt_unavail, Table};
use dynvote_experiments::CliParams;
use dynvote_types::{SiteId, VoteMap};

fn main() {
    let cli = CliParams::from_env();
    let network = ucsd_network();
    println!("# Weight study: where should the extra vote go?");
    println!();
    println!("Each copy site in turn receives 2 votes (others 1); the best");
    println!("static assignment is compared against uniform MCV and LDV.");
    println!();

    let mut table = Table::new(vec![
        "Config".into(),
        "uniform MCV".into(),
        "best weighted".into(),
        "best extra vote on".into(),
        "vote reassign (BGS86)".into(),
        "LDV".into(),
    ]);
    for config in ALL_CONFIGS {
        // Build one common-random-numbers trace with every candidate.
        let mut policies: Vec<Box<dyn AvailabilityPolicy>> = vec![
            Box::new(WeightedMcvPolicy::uniform(config.copies)),
            Box::new(DynamicPolicy::ldv(config.copies)),
            Box::new(VoteReassignmentPolicy::uniform(config.copies)),
        ];
        let candidates: Vec<SiteId> = config.copies.iter().collect();
        for &site in &candidates {
            let mut votes = VoteMap::uniform(config.copies);
            votes.set(site, 2);
            policies.push(Box::new(WeightedMcvPolicy::new(votes)));
        }
        let results = run_trace(&network, &UCSD_SITES, policies, &cli.params, config.name);
        let uniform = results[0].unavailability;
        let ldv = results[1].unavailability;
        let reassign = results[2].unavailability;
        let (best_idx, best) = results[3..]
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.unavailability
                    .partial_cmp(&b.unavailability)
                    .expect("finite")
            })
            .expect("candidates exist");
        table.row(vec![
            config.name.to_string(),
            fmt_unavail(uniform),
            fmt_unavail(best.unavailability),
            format!("site {}", candidates[best_idx].index() + 1),
            fmt_unavail(reassign),
            fmt_unavail(ldv),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "Reading: weighting rescues static voting from even splits (and from \
         flaky partition points); autonomous vote reassignment (BGS86) adapts \
         like dynamic voting but without a tie-break — it tracks LDV closely \
         on odd copy counts and stalls on even splits; LDV still wins overall."
    );
}
