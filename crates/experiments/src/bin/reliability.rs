//! Reliability study: mean time to the file's *first* unavailability.
//!
//! Table 2 reports steady-state unavailability; reliability asks a
//! different question — *how long does a freshly started replicated
//! file keep running before its first outage?* — the quantity behind
//! the paper's "continuously available for more than three hundred
//! years" remark about configuration E.
//!
//! Part 1 validates the simulator's first-passage measurements against
//! the exact CTMC solutions on the identical-site system. Part 2
//! reports the file MTTF for every Table 2 configuration and policy on
//! the real site models.
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin reliability [--quick]
//! ```

use dynvote_analytic::{ac_mttf, dv_mttf, ldv_mttf, mcv_mttf, ParSystem};
use dynvote_availability::config::ALL_CONFIGS;
use dynvote_availability::network::ucsd_network;
use dynvote_availability::run::measure_ttf;
use dynvote_availability::sites::{identical_sites, UCSD_SITES};
use dynvote_core::policy::{
    AvailabilityPolicy, AvailableCopyPolicy, DynamicPolicy, McvPolicy, PolicyKind,
};
use dynvote_experiments::output::Table;
use dynvote_experiments::paper::CONFIG_LABELS;
use dynvote_experiments::CliParams;
use dynvote_sim::Duration;
use dynvote_topology::Network;
use dynvote_types::SiteSet;

fn main() {
    let cli = CliParams::from_env();
    let reps = if cli.quick { 200 } else { 1_000 };

    println!("# Part 1: first-passage validation (CTMC vs. simulator)");
    println!();
    println!("Identical sites, MTTF 10 d, exponential MTTR 12 h, {reps} replications.");
    println!();
    let mut table = Table::new(vec![
        "n".into(),
        "policy".into(),
        "exact MTTF (d)".into(),
        "simulated (d)".into(),
        "within CI?".into(),
    ]);
    for n in [2usize, 3, 4] {
        let sys = ParSystem {
            n,
            mttf: 10.0,
            mttr: 0.5,
        };
        let network = Network::single_segment(n);
        let models = identical_sites(n, Duration::days(10.0), Duration::hours(12.0));
        let copies = SiteSet::first_n(n);
        type PolicyFactory = Box<dyn Fn() -> Box<dyn AvailabilityPolicy>>;
        let cases: Vec<(f64, PolicyFactory)> = vec![
            (
                mcv_mttf(&sys),
                Box::new(move || Box::new(McvPolicy::strict(copies)) as _),
            ),
            (
                dv_mttf(&sys),
                Box::new(move || Box::new(DynamicPolicy::dv(copies)) as _),
            ),
            (
                ldv_mttf(&sys),
                Box::new(move || Box::new(DynamicPolicy::ldv(copies)) as _),
            ),
            (
                ac_mttf(&sys),
                Box::new(move || Box::new(AvailableCopyPolicy::new(copies)) as _),
            ),
        ];
        for (exact, make) in cases {
            let r = measure_ttf(
                &network,
                &models,
                &*make,
                0.0,
                cli.params.seed,
                reps,
                Duration::days(1e7),
            );
            let in_ci = (r.mean_ttf_days - exact).abs() <= r.ci_half;
            table.row(vec![
                n.to_string(),
                r.policy.clone(),
                format!("{exact:.3}"),
                format!("{:.3} ±{:.3}", r.mean_ttf_days, r.ci_half),
                if in_ci { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    println!();

    println!("# Part 2: file MTTF on the UCSD configurations (days)");
    println!();
    let network = ucsd_network();
    let mut table = Table::new(
        std::iter::once("Sites".to_string())
            .chain(PolicyKind::TABLE.iter().map(|k| k.name().to_string()))
            .collect(),
    );
    for (i, config) in ALL_CONFIGS.iter().enumerate() {
        let mut row = vec![CONFIG_LABELS[i].to_string()];
        for kind in PolicyKind::TABLE {
            let r = measure_ttf(
                &network,
                &UCSD_SITES,
                || kind.build(config.copies, &network),
                1.0,
                cli.params.seed,
                reps,
                Duration::days(400.0 * 365.0),
            );
            let cell = if r.censored > 0 {
                format!(">{:.0} ({} censored)", r.mean_ttf_days, r.censored)
            } else {
                format!("{:.0}", r.mean_ttf_days)
            };
            row.push(cell);
        }
        table.row(row);
    }
    print!("{}", table.render());
    println!();
    println!(
        "Reading: configuration E under TDV/OTDV routinely exceeds the 400-year \
         horizon (censored entries) — the paper's 'three hundred years' claim, \
         reproduced; DV on F dies in weeks (the first site-4 failure from a \
         4-copy partition set freezes it)."
    );
}
