//! Runs a scenario script against a replicated cluster.
//!
//! ```text
//! cargo run -p dynvote-experiments --bin scenario -- \
//!     [--protocol odv] [--copies 0,1,2] [--witnesses 3] [FILE]
//! ```
//!
//! With no `FILE`, the script is read from stdin. The scenario language
//! is documented in `dynvote_replica::scenario`; for example:
//!
//! ```text
//! write 0 v2
//! fail 1
//! expect read 2 v2
//! repair 1
//! recover 1
//! state 1
//! ```

use std::io::Read as _;

use dynvote_replica::scenario::{parse, run};
use dynvote_replica::{Cluster, ClusterBuilder, Protocol};

fn usage() -> ! {
    eprintln!(
        "usage: scenario [--protocol mcv|dv|ldv|odv|tdv|otdv] \
         [--copies N,N,…] [--witnesses N,N,…] [FILE]"
    );
    std::process::exit(2);
}

fn parse_sites(text: &str) -> Vec<usize> {
    text.split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| t.trim().parse::<usize>().unwrap_or_else(|_| usage()))
        .collect()
}

fn main() {
    let mut protocol = Protocol::Odv;
    let mut copies = vec![0usize, 1, 2];
    let mut witnesses: Vec<usize> = Vec::new();
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--protocol" => {
                protocol = match args.next().as_deref() {
                    Some("mcv") => Protocol::Mcv,
                    Some("dv") => Protocol::Dv,
                    Some("ldv") => Protocol::Ldv,
                    Some("odv") => Protocol::Odv,
                    Some("tdv") => Protocol::Tdv,
                    Some("otdv") => Protocol::Otdv,
                    _ => usage(),
                }
            }
            "--copies" => copies = parse_sites(&args.next().unwrap_or_else(|| usage())),
            "--witnesses" => witnesses = parse_sites(&args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => file = Some(other.to_string()),
            _ => usage(),
        }
    }

    let script = match &file {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| {
                    eprintln!("error: cannot read stdin: {e}");
                    std::process::exit(1);
                });
            buf
        }
    };

    let commands = match parse(&script) {
        Ok(commands) => commands,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };

    let mut cluster: Cluster<String> = ClusterBuilder::new()
        .copies(copies.iter().copied())
        .witnesses(witnesses.iter().copied())
        .protocol(protocol)
        .build_with_value("initial".to_string());

    println!(
        "protocol {}, copies {:?}, witnesses {:?}",
        protocol.name(),
        copies,
        witnesses
    );
    match run(&mut cluster, &commands) {
        Ok(log) => {
            for entry in log {
                println!("  {entry}");
            }
            let violations = cluster.checker().violations();
            if violations.is_empty() {
                println!("invariant monitor: clean");
            } else {
                println!("invariant monitor: {} violation(s)", violations.len());
                for v in violations {
                    println!("  ! {v}");
                }
                std::process::exit(3);
            }
        }
        Err(e) => {
            eprintln!("scenario failed: {e}");
            std::process::exit(1);
        }
    }
}
