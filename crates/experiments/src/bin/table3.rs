//! Regenerates Table 3: mean duration of unavailable periods (in days)
//! for the eight configurations under all six policies.
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin table3 [--quick]
//! ```

use dynvote_availability::run::RunResult;
use dynvote_experiments::output::Table;
use dynvote_experiments::paper::{CONFIG_LABELS, PAPER_TABLE3, POLICY_NAMES};
use dynvote_experiments::{simulate_all_rows, CliParams, RowMode};

fn main() {
    let cli = CliParams::from_env();
    println!("# Table 3: Mean Duration of Unavailable Periods (days)");
    println!();

    let rows: Vec<Vec<RunResult>> = simulate_all_rows(&cli.params, RowMode::from_env());

    let mut headers = vec!["Sites".to_string()];
    headers.extend(POLICY_NAMES.iter().map(|p| p.to_string()));
    let mut measured = Table::new(headers.clone());
    let mut side_by_side = Table::new(headers);
    for (i, row) in rows.iter().enumerate() {
        let mut m = vec![CONFIG_LABELS[i].to_string()];
        let mut s = vec![CONFIG_LABELS[i].to_string()];
        for (j, result) in row.iter().enumerate() {
            let cell = if result.outage_count == 0 {
                "-".to_string()
            } else {
                format!("{:.6} (n={})", result.mean_outage_days, result.outage_count)
            };
            m.push(cell);
            let paper = match PAPER_TABLE3[i][j] {
                Some(v) => format!("{v:.6}"),
                None => "-".to_string(),
            };
            let mine = if result.outage_count == 0 {
                "-".to_string()
            } else {
                format!("{:.6}", result.mean_outage_days)
            };
            s.push(format!("{paper} / {mine}"));
        }
        measured.row(m);
        side_by_side.row(s);
    }

    println!("## Measured (outage count in parentheses)");
    println!();
    print!("{}", measured.render());
    println!();

    // Beyond the paper: the outage-duration *distribution*, not just
    // its mean — means on heavy-tailed repair distributions mislead.
    let mut percentiles = Table::new(vec![
        "Sites".into(),
        "policy".into(),
        "p50 (d)".into(),
        "p90 (d)".into(),
        "max (d)".into(),
        "mean (d)".into(),
    ]);
    for (i, row) in rows.iter().enumerate() {
        for result in row {
            if result.outage_count == 0 {
                continue;
            }
            percentiles.row(vec![
                CONFIG_LABELS[i].to_string(),
                result.policy.clone(),
                format!("{:.4}", result.p50_outage_days),
                format!("{:.4}", result.p90_outage_days),
                format!("{:.4}", result.max_outage_days),
                format!("{:.4}", result.mean_outage_days),
            ]);
        }
    }
    println!("## Outage-duration distribution (beyond the paper)");
    println!();
    print!("{}", percentiles.render());
    println!();
    println!("## Paper / measured");
    println!();
    print!("{}", side_by_side.render());
    println!();
    shape_report(&rows);
}

#[allow(clippy::needless_range_loop)] // index drives two parallel tables
fn shape_report(rows: &[Vec<RunResult>]) {
    let d = |row: usize, col: usize| rows[row][col].mean_outage_days;
    let (mcv, dv, ldv, _odv, tdv, otdv) = (0, 1, 2, 3, 4, 5);
    let mut checks: Vec<(String, bool)> = Vec::new();

    // D's outages are *long* for every policy: the heavy hardware
    // repairs of sites 6-8 dominate (paper: 3-7.4 days).
    checks.push((
        "outages on D are days long for all policies".into(),
        (0..6).all(|c| d(3, c) > 1.0),
    ));
    // On most well-placed configurations (A, B), outages last hours,
    // not days (paper: 0.05-0.22 days).
    for row in [0usize, 1] {
        checks.push((
            format!(
                "outages on {} are under half a day (non-DV)",
                CONFIG_LABELS[row]
            ),
            d(row, mcv) < 0.5 && d(row, ldv) < 0.5,
        ));
    }
    // DV's outages are longer than MCV's on the 3-copy configurations
    // (frozen ties wait for specific sites).
    for row in 0..3 {
        checks.push((
            format!("DV outages ≥ MCV outages on {}", CONFIG_LABELS[row]),
            d(row, dv) >= d(row, mcv) * 0.8,
        ));
    }
    // E row: TDV/OTDV should see (almost) no outages at all.
    checks.push((
        "TDV/OTDV on E: zero or near-zero outages".into(),
        rows[4][tdv].outage_count <= 2 && rows[4][otdv].outage_count <= 2,
    ));
    // C: topological == lexicographic (same events, same durations).
    checks.push((
        "TDV == LDV outage durations on C".into(),
        (d(2, tdv) - d(2, ldv)).abs() < 1e-12,
    ));

    println!("## Shape checks");
    println!();
    let mut pass = 0;
    for (name, ok) in &checks {
        println!("- [{}] {}", if *ok { "x" } else { " " }, name);
        pass += usize::from(*ok);
    }
    println!();
    println!("{pass}/{} checks passed", checks.len());
}
