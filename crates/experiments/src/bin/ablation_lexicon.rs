//! Ablation: does the choice of lexicographic ordering matter?
//!
//! The tie-breaking rule needs *some* agreed total order on sites; the
//! paper writes "A > B > C" without saying how the order was chosen.
//! This study measures LDV and ODV under three orderings on every
//! configuration:
//!
//! * **default** — paper site 1 ranks highest (our calibrated choice:
//!   it is the only ordering consistent with the paper's own MCV
//!   numbers on configuration H),
//! * **ascending** — paper site 8 ranks highest,
//! * **reliability** — sites ranked by ascending intrinsic
//!   unavailability (most reliable site wins ties), the assignment an
//!   operator would actually pick.
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin ablation_lexicon [--quick]
//! ```

use dynvote_availability::config::ALL_CONFIGS;
use dynvote_availability::network::ucsd_network;
use dynvote_availability::run::run_trace;
use dynvote_availability::sites::UCSD_SITES;
use dynvote_core::policy::dynamic::{DynamicPolicy, RejoinMode};
use dynvote_core::policy::AvailabilityPolicy;
use dynvote_core::Lexicon;
use dynvote_experiments::output::{fmt_unavail, Table};
use dynvote_experiments::paper::CONFIG_LABELS;
use dynvote_experiments::CliParams;

fn reliability_lexicon() -> Lexicon {
    let mut order: Vec<usize> = (0..UCSD_SITES.len()).collect();
    order.sort_by(|&a, &b| {
        UCSD_SITES[a]
            .intrinsic_unavailability()
            .partial_cmp(&UCSD_SITES[b].intrinsic_unavailability())
            .expect("finite")
    });
    Lexicon::from_priority(order)
}

fn main() {
    let cli = CliParams::from_env();
    let network = ucsd_network();
    println!("# Ablation: lexicographic ordering choice (LDV unavailability)");
    println!();

    let lexicons: [(&str, Lexicon); 3] = [
        ("site 1 highest (default)", Lexicon::default()),
        ("site 8 highest (ascending)", Lexicon::ascending()),
        ("most reliable highest", reliability_lexicon()),
    ];

    let mut table = Table::new(
        std::iter::once("Sites".to_string())
            .chain(lexicons.iter().map(|(name, _)| (*name).to_string()))
            .collect(),
    );
    let mut worst_ratio: f64 = 1.0;
    for (i, config) in ALL_CONFIGS.iter().enumerate() {
        let policies: Vec<Box<dyn AvailabilityPolicy>> = lexicons
            .iter()
            .map(|(name, lexicon)| {
                Box::new(DynamicPolicy::custom(
                    format!("LDV[{name}]"),
                    config.copies,
                    Some(lexicon.clone()),
                    None,
                    RejoinMode::OnRepair,
                )) as Box<dyn AvailabilityPolicy>
            })
            .collect();
        let results = run_trace(&network, &UCSD_SITES, policies, &cli.params, config.name);
        let values: Vec<f64> = results.iter().map(|r| r.unavailability).collect();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(0.0f64, f64::max);
        if lo > 0.0 {
            worst_ratio = worst_ratio.max(hi / lo);
        }
        table.row(
            std::iter::once(CONFIG_LABELS[i].to_string())
                .chain(values.iter().map(|v| fmt_unavail(*v)))
                .collect(),
        );
    }
    print!("{}", table.render());
    println!();
    println!(
        "largest best-to-worst ratio across orderings: {worst_ratio:.1}x — the \
         ordering is a real tuning knob: ties should favour reliable,\n\
         well-connected sites (ranking the main segment's hosts highest), and \
         the paper's own numbers imply its simulator did exactly that."
    );
}
