//! Ablation: where does ODV's configuration-F advantage come from?
//!
//! Table 2 reports ODV (0.000947) *beating* LDV (0.002154) on
//! configuration F — surprising, since LDV acts on strictly fresher
//! information. The paper's explanation: when the partition point
//! (site 4, two-week repairs) is down, eagerly shrunk quorums get the
//! file stuck on the fast-failing main-segment sites, and it is better
//! to "delay file recovery until site 4 is repaired".
//!
//! This binary decomposes the effect along the two halves of
//! "optimistic": *lazy shrinking* (quorum updates only at access time)
//! and *lazy rejoining* (recoveries only at access time), by measuring
//! four LDV-family variants on every configuration:
//!
//! * `LDV`       — shrink instantly, rejoin instantly,
//! * `LDV-lazy`  — shrink instantly, rejoin at access time
//!   ([`RejoinMode::Hybrid`]) — the plausible behaviour of a real
//!   connection-vector implementation whose RECOVER is an explicit
//!   operation,
//! * `ODV`       — shrink and rejoin at access time,
//! * `ODV-eager` — shrink at access time, rejoin instantly (the
//!   remaining corner, for completeness).
//!
//! ```text
//! cargo run --release -p dynvote-experiments --bin ablation_rejoin [--quick]
//! ```

use dynvote_availability::config::ALL_CONFIGS;
use dynvote_availability::network::ucsd_network;
use dynvote_availability::run::run_trace;
use dynvote_availability::sites::UCSD_SITES;
use dynvote_core::policy::dynamic::{DynamicPolicy, RejoinMode};
use dynvote_core::policy::AvailabilityPolicy;
use dynvote_experiments::output::{fmt_unavail, Table};
use dynvote_experiments::paper::CONFIG_LABELS;
use dynvote_experiments::CliParams;

fn main() {
    let cli = CliParams::from_env();
    let network = ucsd_network();
    println!("# Ablation: eager vs lazy quorum shrinking and rejoining");
    println!();

    let mut table = Table::new(vec![
        "Sites".into(),
        "LDV (eager/eager)".into(),
        "LDV-lazy (eager/lazy)".into(),
        "ODV (lazy/lazy)".into(),
        "ODV-eager (lazy/eager)".into(),
    ]);
    let mut f_row: Vec<f64> = Vec::new();
    for (i, config) in ALL_CONFIGS.iter().enumerate() {
        let policies: Vec<Box<dyn AvailabilityPolicy>> = vec![
            Box::new(DynamicPolicy::ldv(config.copies)),
            Box::new(DynamicPolicy::ldv_lazy_rejoin(config.copies)),
            Box::new(DynamicPolicy::odv(config.copies)),
            // "ODV-eager": optimistic shrinking, but a repaired site is
            // reintegrated immediately. Modeled as Hybrid's mirror: we
            // approximate it with OnRepair sync restricted to single
            // recoveries — the closest expressible corner is plain
            // OnRepair, so we use a custom policy with eager rejoin and
            // note the asymmetry in EXPERIMENTS.md.
            Box::new(DynamicPolicy::custom(
                "ODV-eager",
                config.copies,
                Some(dynvote_core::Lexicon::default()),
                None,
                RejoinMode::OnRepair,
            )),
        ];
        let results = run_trace(&network, &UCSD_SITES, policies, &cli.params, config.name);
        if config.name == "F" {
            f_row = results.iter().map(|r| r.unavailability).collect();
        }
        table.row(vec![
            CONFIG_LABELS[i].to_string(),
            fmt_unavail(results[0].unavailability),
            fmt_unavail(results[1].unavailability),
            fmt_unavail(results[2].unavailability),
            fmt_unavail(results[3].unavailability),
        ]);
    }
    print!("{}", table.render());
    println!();
    if f_row.len() == 4 {
        let (ldv, ldv_lazy, odv, _) = (f_row[0], f_row[1], f_row[2], f_row[3]);
        println!("Configuration F decomposition:");
        println!("- paper: LDV 0.002154 vs ODV 0.000947 (ODV wins)");
        println!(
            "- measured: LDV {}, LDV-lazy {}, ODV {}",
            fmt_unavail(ldv),
            fmt_unavail(ldv_lazy),
            fmt_unavail(odv)
        );
        if odv < ldv_lazy {
            println!(
                "- the inversion reproduces against LDV-lazy: lazy *rejoining* is \
                 what eager implementations pay for on F"
            );
        } else if odv < ldv {
            println!("- the inversion reproduces against plain LDV");
        } else {
            println!(
                "- no inversion under these semantics: with instantaneous \
                 reintegration LDV keeps its information advantage"
            );
        }
    }
}
