//! Markdown table rendering for experiment output.

use std::fmt::Write as _;

/// A simple left-aligned markdown table builder.
///
/// # Examples
///
/// ```
/// use dynvote_experiments::Table;
///
/// let mut t = Table::new(vec!["Sites".into(), "MCV".into()]);
/// t.row(vec!["A: 1, 2, 4".into(), "0.002130".into()]);
/// let text = t.render();
/// assert!(text.contains("| Sites"));
/// assert!(text.contains("| A: 1, 2, 4"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Renders the table as RFC-4180-style CSV (quoting cells that
    /// contain commas, quotes, or newlines), for downstream plotting.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            let line: Vec<String> = row.iter().map(|c| field(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as markdown with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {cell:<width$} ", width = widths[i]);
            }
            out.push_str("|\n");
        };
        render_row(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<width$}", "", width = w + 2);
            if i == cols - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats an unavailability the way Table 2 prints them (6 decimals).
#[must_use]
pub fn fmt_unavail(u: f64) -> String {
    format!("{u:.6}")
}

/// Formats a paper-vs-measured pair compactly.
#[must_use]
pub fn fmt_pair(paper: f64, measured: f64) -> String {
    format!("{paper:.6} / {measured:.6}")
}

/// The multiplicative distance between a measured and a reference value,
/// on a log scale that treats 2× and 0.5× symmetrically. Returns `None`
/// when either side is zero (common for near-perfect availabilities).
#[must_use]
pub fn log_ratio(paper: f64, measured: f64) -> Option<f64> {
    if paper <= 0.0 || measured <= 0.0 {
        None
    } else {
        Some((measured / paper).ln().abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["a".into(), "long header".into()]);
        t.row(vec!["wide cell here".into(), "x".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("|--"));
        // All rows the same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["plain".into(), "with, comma".into()]);
        t.row(vec!["quote \" here".into(), "x".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with, comma\"");
        assert_eq!(lines[2], "\"quote \"\" here\",x");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_unavail(0.0021304), "0.002130");
        assert_eq!(fmt_pair(0.1, 0.2), "0.100000 / 0.200000");
        assert!(log_ratio(0.0, 1.0).is_none());
        assert!((log_ratio(0.001, 0.002).unwrap() - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(log_ratio(0.5, 0.5), Some(0.0));
    }
}
