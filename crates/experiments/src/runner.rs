//! Parallel regeneration of the Table 2/3 rows.
//!
//! Each configuration row is one independent common-random-numbers
//! trace: `simulate_row` builds its own network, driver, and policy set
//! from the master seed, and shares nothing mutable with its siblings.
//! The rows can therefore run on worker threads with **no effect on the
//! output** — results are joined back in configuration order, and every
//! number in them is a deterministic function of `(config, params)`.
//! The determinism regression test in
//! `tests/parallel_determinism.rs` holds this to bitwise equality.

use dynvote_availability::config::ALL_CONFIGS;
use dynvote_availability::run::{simulate_row, Params, RunResult};

/// How to schedule the per-configuration rows of a table run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowMode {
    /// One scoped worker thread per configuration row.
    Parallel,
    /// Rows run one after another on the calling thread. Useful for
    /// baseline timing and for debugging under a deterministic
    /// scheduler; the numbers are identical to [`RowMode::Parallel`].
    Sequential,
}

impl RowMode {
    /// [`RowMode::Parallel`] unless the `DYNVOTE_SEQUENTIAL` environment
    /// variable is set to a non-empty value other than `0`.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("DYNVOTE_SEQUENTIAL") {
            Ok(v) if !v.is_empty() && v != "0" => RowMode::Sequential,
            _ => RowMode::Parallel,
        }
    }
}

/// Simulates every Table 2/3 configuration (A–H) under all six paper
/// policies, one common-random-numbers trace per configuration, and
/// returns the rows in configuration order.
///
/// The mode only affects scheduling, never values: both variants return
/// bit-for-bit identical results for the same `params`.
#[must_use]
pub fn simulate_all_rows(params: &Params, mode: RowMode) -> Vec<Vec<RunResult>> {
    match mode {
        RowMode::Sequential => ALL_CONFIGS
            .iter()
            .map(|config| simulate_row(config, params))
            .collect(),
        RowMode::Parallel => std::thread::scope(|scope| {
            let handles: Vec<_> = ALL_CONFIGS
                .iter()
                .map(|config| scope.spawn(move || simulate_row(config, params)))
                .collect();
            // Joining in spawn order restores configuration order no
            // matter which worker finishes first.
            handles
                .into_iter()
                .map(|h| h.join().expect("row worker panicked"))
                .collect()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_mode_from_env_contract() {
        // Not set in the test environment by default.
        assert_eq!(RowMode::from_env(), RowMode::Parallel);
    }
}
