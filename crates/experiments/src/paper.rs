//! The paper's published results, transcribed for side-by-side output.

/// Table 2 of the paper: replicated-file unavailabilities.
/// Rows: configurations A–H; columns: MCV, DV, LDV, ODV, TDV, OTDV.
pub const PAPER_TABLE2: [[f64; 6]; 8] = [
    // MCV       DV        LDV       ODV       TDV       OTDV
    [0.002130, 0.004348, 0.000668, 0.000849, 0.000015, 0.000013], // A: 1,2,4
    [0.003871, 0.008281, 0.001214, 0.001432, 0.000109, 0.000066], // B: 1,2,6
    [0.031127, 0.056428, 0.001707, 0.003492, 0.001707, 0.003492], // C: 1,6,8
    [0.069342, 0.117683, 0.053592, 0.053357, 0.034490, 0.031548], // D: 6,7,8
    [0.000608, 0.000018, 0.000012, 0.000084, 0.000000, 0.000000], // E: 1,2,3,4
    [0.002761, 0.108034, 0.002154, 0.000947, 0.000018, 0.000004], // F: 1,2,4,6
    [0.002027, 0.001510, 0.000151, 0.000339, 0.000041, 0.000036], // G: 1,2,6,8
    [0.001408, 0.004275, 0.000171, 0.000218, 0.000020, 0.000043], // H: 1,2,7,8
];

/// Table 3 of the paper: mean duration of unavailable periods (days).
/// `None` marks the two cells the paper prints as "–" (no outage
/// observed for TDV/OTDV on configuration E).
pub const PAPER_TABLE3: [[Option<f64>; 6]; 8] = [
    [
        Some(0.101968),
        Some(0.210651),
        Some(0.077353),
        Some(0.084141),
        Some(0.10764),
        Some(0.05115),
    ], // A
    [
        Some(0.101059),
        Some(0.217369),
        Some(0.078867),
        Some(0.084387),
        Some(0.08650),
        Some(0.05337),
    ], // B
    [
        Some(0.944336),
        Some(1.868895),
        Some(0.085960),
        Some(0.173151),
        Some(0.085960),
        Some(0.173151),
    ], // C
    [
        Some(3.000469),
        Some(5.850864),
        Some(7.443789),
        Some(6.293645),
        Some(7.428305),
        Some(7.445393),
    ], // D
    [
        Some(0.071134),
        Some(0.06363),
        Some(0.08102),
        Some(0.05417),
        None,
        None,
    ], // E
    [
        Some(0.102001),
        Some(5.962853),
        Some(0.275006),
        Some(0.101756),
        Some(0.05556),
        Some(0.02252),
    ], // F
    [
        Some(0.084714),
        Some(0.297879),
        Some(0.07787),
        Some(0.073773),
        Some(0.12407),
        Some(0.04149),
    ], // G
    [
        Some(0.078933),
        Some(0.142206),
        Some(0.135054),
        Some(0.060009),
        Some(0.103171),
        Some(0.051964),
    ], // H
];

/// Column headers shared by both tables.
pub const POLICY_NAMES: [&str; 6] = ["MCV", "DV", "LDV", "ODV", "TDV", "OTDV"];

/// Row labels shared by both tables (configuration: paper site list).
pub const CONFIG_LABELS: [&str; 8] = [
    "A: 1, 2, 4",
    "B: 1, 2, 6",
    "C: 1, 6, 8",
    "D: 6, 7, 8",
    "E: 1, 2, 3, 4",
    "F: 1, 2, 4, 6",
    "G: 1, 2, 6, 8",
    "H: 1, 2, 7, 8",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        assert_eq!(PAPER_TABLE2.len(), 8);
        assert_eq!(PAPER_TABLE3.len(), 8);
        assert_eq!(POLICY_NAMES.len(), 6);
        assert_eq!(CONFIG_LABELS.len(), 8);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // the index addresses table cells
    fn headline_claims_hold_in_the_transcription() {
        let (mcv, dv, ldv, odv, tdv, otdv) = (0, 1, 2, 3, 4, 5);
        // DV worse than MCV for all three-copy configurations (rows 0-3).
        for row in 0..4 {
            assert!(PAPER_TABLE2[row][dv] > PAPER_TABLE2[row][mcv], "row {row}");
        }
        // LDV beats MCV and DV everywhere.
        for row in 0..8 {
            assert!(PAPER_TABLE2[row][ldv] < PAPER_TABLE2[row][mcv], "row {row}");
            assert!(PAPER_TABLE2[row][ldv] < PAPER_TABLE2[row][dv], "row {row}");
        }
        // ODV beats LDV on three configurations (D, F, and... the paper
        // says three of eight; D, F are the clear ones, G/H are close).
        let odv_wins = (0..8)
            .filter(|&r| PAPER_TABLE2[r][odv] < PAPER_TABLE2[r][ldv])
            .count();
        assert_eq!(odv_wins, 2, "ODV beats LDV on D and F in Table 2");
        // C: topological == lexicographic when every copy sits alone.
        assert_eq!(PAPER_TABLE2[2][tdv], PAPER_TABLE2[2][ldv]);
        assert_eq!(PAPER_TABLE2[2][otdv], PAPER_TABLE2[2][odv]);
        // E: TDV/OTDV are the minimum of the whole table.
        assert_eq!(PAPER_TABLE2[4][tdv], 0.0);
        assert_eq!(PAPER_TABLE2[4][otdv], 0.0);
    }

    #[test]
    fn table3_missing_cells_are_e_row_topological() {
        for (r, row) in PAPER_TABLE3.iter().enumerate() {
            for (c, cell) in row.iter().enumerate() {
                assert_eq!(
                    cell.is_none(),
                    r == 4 && c >= 4,
                    "only E×TDV and E×OTDV are dashes"
                );
            }
        }
    }
}
