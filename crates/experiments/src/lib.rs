#![warn(missing_docs)]

//! Shared infrastructure for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one artefact of the paper's
//! evaluation (see DESIGN.md's experiment index). This library holds
//! what they share: the paper's published numbers (for side-by-side
//! "paper vs. measured" output), a tiny command-line parser, markdown
//! table rendering, and the parallel row runner behind `table2`/`table3`.

pub mod cli;
pub mod output;
pub mod paper;
pub mod runner;

pub use cli::CliParams;
pub use output::Table;
pub use runner::{simulate_all_rows, RowMode};
