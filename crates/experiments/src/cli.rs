//! A tiny flag parser shared by the experiment binaries.
//!
//! We deliberately avoid a CLI dependency: the binaries take a handful
//! of numeric flags with sensible paper-faithful defaults.

use dynvote_availability::run::Params;
use dynvote_sim::Duration;

/// Parsed command-line parameters for an experiment binary.
///
/// Flags (all optional):
///
/// * `--quick` — reduced run for smoke testing (6 × 3,000 days),
/// * `--seed N` — master RNG seed,
/// * `--batches N` — number of batches,
/// * `--batch-days D` — length of one batch in days,
/// * `--warmup-days D` — warm-up before measurement,
/// * `--access-rate R` — file accesses per day (paper: 1.0).
#[derive(Clone, Debug)]
pub struct CliParams {
    /// The simulation parameters after flag application.
    pub params: Params,
    /// `true` when `--quick` was given.
    pub quick: bool,
}

impl CliParams {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1)).unwrap_or_else(|msg| {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: [--quick] [--seed N] [--batches N] [--batch-days D] \
                 [--warmup-days D] [--access-rate R]"
            );
            std::process::exit(2);
        })
    }

    /// Parses an explicit argument list (testable form of
    /// [`CliParams::from_env`]).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut params = Params::paper();
        let mut quick = false;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut take = |name: &str| -> Result<f64, String> {
                it.next()
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .parse::<f64>()
                    .map_err(|e| format!("{name}: {e}"))
            };
            match arg.as_str() {
                "--quick" => {
                    quick = true;
                    let q = Params::quick_test();
                    params.batches = q.batches;
                    params.batch_len = q.batch_len;
                }
                "--seed" => params.seed = take("--seed")? as u64,
                "--batches" => params.batches = take("--batches")? as usize,
                "--batch-days" => params.batch_len = Duration::days(take("--batch-days")?),
                "--warmup-days" => params.warmup = Duration::days(take("--warmup-days")?),
                "--access-rate" => params.access_rate = take("--access-rate")?,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if params.batches == 0 {
            return Err("--batches must be at least 1".to_string());
        }
        if params.access_rate < 0.0 {
            return Err("--access-rate must be non-negative".to_string());
        }
        Ok(CliParams { params, quick })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliParams, String> {
        CliParams::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_paper_params() {
        let c = parse(&[]).unwrap();
        assert!(!c.quick);
        assert_eq!(c.params.batches, Params::paper().batches);
        assert_eq!(c.params.access_rate, 1.0);
    }

    #[test]
    fn quick_shrinks_the_run() {
        let c = parse(&["--quick"]).unwrap();
        assert!(c.quick);
        assert_eq!(c.params.batches, Params::quick_test().batches);
    }

    #[test]
    fn numeric_flags() {
        let c = parse(&[
            "--seed",
            "7",
            "--batches",
            "12",
            "--batch-days",
            "500",
            "--warmup-days",
            "100",
            "--access-rate",
            "2.5",
        ])
        .unwrap();
        assert_eq!(c.params.seed, 7);
        assert_eq!(c.params.batches, 12);
        assert_eq!(c.params.batch_len.as_days(), 500.0);
        assert_eq!(c.params.warmup.as_days(), 100.0);
        assert_eq!(c.params.access_rate, 2.5);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--batches", "0"]).is_err());
        assert!(parse(&["--access-rate", "-1"]).is_err());
    }
}
