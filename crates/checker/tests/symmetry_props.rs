//! Symmetry-quotient soundness properties.
//!
//! Two obligations keep `--symmetry on` honest:
//!
//! 1. **Canonical fingerprints are orbit invariants**: for any
//!    reachable state and any admissible relabeling of its sites, the
//!    canonical fingerprint of the relabeled state equals the
//!    original's. Checked on random walks over random topologies, with
//!    random permutations drawn from the structural group.
//! 2. **The quotient loses no violations**: on random small scenarios
//!    a symmetry-on run never reports fewer distinct violations (real
//!    or hazard) than the brute-force symmetry-off run — and for the
//!    lexicographic policies, whose sound group is the identity, the
//!    two runs are statistic-identical.
//!
//! Randomness is derived from one proptest-drawn seed through a
//! splitmix64 stream, so every failure replays from a single integer.

use dynvote_check::{
    canonical_fingerprint, enumerate_events, run, CheckConfig, Scenario, SymmetryGroup, World,
    ALL_POLICIES,
};
use dynvote_replica::Protocol;
use dynvote_types::SiteSet;
use proptest::prelude::*;

/// Deterministic seed-expansion stream (splitmix64).
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// A random scenario shape: up to 6 sites for the invariance walk.
fn random_scenario(stream: &mut Stream, max_sites: usize) -> Scenario {
    let policy = ALL_POLICIES[stream.below(ALL_POLICIES.len())];
    let sites = 2 + stream.below(max_sites - 1);
    let segments = 1 + stream.below(sites.min(3));
    Scenario::new(policy, sites, segments).unwrap()
}

/// Walks `steps` random applicable events from the initial state.
fn random_walk(scenario: &Scenario, steps: usize, stream: &mut Stream) -> World {
    let mut world = World::new(scenario);
    for _ in 0..steps {
        let events = enumerate_events(&world);
        if events.is_empty() {
            break;
        }
        world.apply(events[stream.below(events.len())]);
    }
    world
}

/// Draws a random admissible relabeling: an independent shuffle of each
/// pool, identity elsewhere.
fn random_relabeling(group: &SymmetryGroup, sites: usize, stream: &mut Stream) -> Vec<usize> {
    let mut map: Vec<usize> = (0..sites).collect();
    for pool in group.pools() {
        let slots: Vec<usize> = pool.iter().map(|s| s.index()).collect();
        let mut image = slots.clone();
        // Fisher–Yates over the pool's slots.
        for i in (1..image.len()).rev() {
            image.swap(i, stream.below(i + 1));
        }
        for (slot, target) in slots.iter().zip(&image) {
            map[*slot] = *target;
        }
    }
    map
}

proptest! {
    /// Canonical fingerprints are invariant under every admissible
    /// relabeling of reachable states — on the *structural* group, so
    /// the property exercises the canonicalizer on every topology and
    /// policy, independent of the policy filter in `SymmetryGroup::of`.
    #[test]
    fn prop_canonical_fingerprint_is_orbit_invariant(seed in any::<u64>()) {
        let mut stream = Stream(seed);
        let scenario = random_scenario(&mut stream, 6);
        let group = SymmetryGroup::structural(&scenario, SiteSet::EMPTY);
        let steps = stream.below(7);
        let world = random_walk(&scenario, steps, &mut stream);
        let view = world.sym_view();
        let base = canonical_fingerprint(&[&view], &group);
        for _ in 0..3 {
            let map = random_relabeling(&group, scenario.sites, &mut stream);
            prop_assert!(group.admits(&map), "drawn map must be admissible: {map:?}");
            let permuted = view.permuted(&map);
            let relabeled = canonical_fingerprint(&[&permuted], &group);
            prop_assert_eq!(
                base, relabeled,
                "canonical fingerprint moved under {:?} on {}", map, scenario
            );
        }
    }

    /// Pair fingerprints (differential lockstep states) are invariant
    /// too, when the SAME relabeling acts on both views.
    #[test]
    fn prop_pair_canonical_fingerprint_is_orbit_invariant(seed in any::<u64>()) {
        let mut stream = Stream(seed);
        let scenario = random_scenario(&mut stream, 5);
        let group = SymmetryGroup::structural(&scenario, SiteSet::EMPTY);
        let world_a = random_walk(&scenario, stream.below(5), &mut stream);
        let world_b = random_walk(&scenario, stream.below(5), &mut stream);
        let (va, vb) = (world_a.sym_view(), world_b.sym_view());
        let base = canonical_fingerprint(&[&va, &vb], &group);
        let map = random_relabeling(&group, scenario.sites, &mut stream);
        let relabeled = canonical_fingerprint(&[&va.permuted(&map), &vb.permuted(&map)], &group);
        prop_assert_eq!(base, relabeled);
    }

    /// Brute-force cross-check on random ≤4-site scenarios: the
    /// symmetry quotient never hides a violation. For DV/MCV the
    /// quotient may (and should) shrink the state count; for the
    /// lexicographic policies the sound group is the identity, so every
    /// statistic must match exactly.
    #[test]
    fn prop_symmetry_never_reports_fewer_violations(seed in any::<u64>()) {
        let mut stream = Stream(seed);
        let scenario = random_scenario(&mut stream, 4);
        let depth = 3 + stream.below(2);
        let plain = run(&CheckConfig::new(scenario, depth));
        let quotient = run(&CheckConfig::new(scenario, depth).symmetry(true));
        prop_assert!(
            quotient.real_violations >= plain.real_violations,
            "{scenario} depth {depth}: quotient lost real violations \
             ({} < {})", quotient.real_violations, plain.real_violations
        );
        prop_assert!(
            quotient.known_hazards >= plain.known_hazards,
            "{scenario} depth {depth}: quotient lost hazards \
             ({} < {})", quotient.known_hazards, plain.known_hazards
        );
        prop_assert!(
            quotient.states_explored <= plain.states_explored,
            "{scenario} depth {depth}: quotient grew the state space"
        );
        if matches!(
            scenario.policy,
            Protocol::Ldv | Protocol::Odv | Protocol::Tdv | Protocol::Otdv
        ) {
            prop_assert_eq!(plain.states_explored, quotient.states_explored);
            prop_assert_eq!(plain.transitions, quotient.transitions);
            prop_assert_eq!(plain.dedup_hits, quotient.dedup_hits);
        }
    }
}
