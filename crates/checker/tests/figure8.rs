//! Figure 8 acceptance: the paper's 8-site, 3-segment topology
//! (segments {S0,S1,S2} | {S3,S4,S5} | {S6,S7}, gateways S2 and S5),
//! explored exhaustively and reproducibly by the parallel + symmetry
//! engine.
//!
//! The exhaustive depth-6 runs pin exact state counts: the layered-BFS
//! engine is deterministic for any thread count, so a count drift is a
//! behavioral change, not noise. The deep runs are `#[ignore]`d in
//! debug builds (they cost minutes unoptimized); CI's `check` job runs
//! the same configurations through the release binary, and
//! `cargo test --release -p dynvote-check --test figure8 -- --include-ignored`
//! runs everything locally.

use dynvote_check::{run, CheckConfig, Scenario};
use dynvote_replica::Protocol;

fn figure8(policy: Protocol) -> Scenario {
    Scenario::new(policy, 8, 3).unwrap()
}

/// Fast smoke at depth 5 (hazard-free on this topology): pinned counts,
/// identical at 1 and 4 threads.
#[test]
fn figure8_depth_five_is_clean_and_pinned() {
    let base = run(&CheckConfig::new(figure8(Protocol::Tdv), 5));
    assert_eq!(base.states_explored, 38_066);
    assert_eq!(base.transitions, 178_734);
    assert_eq!(base.real_violations, 0);
    assert_eq!(base.known_hazards, 0, "the fork kernels need depth 6");
    assert!(!base.truncated);

    let par = run(&CheckConfig::new(figure8(Protocol::Tdv), 5).threads(4));
    assert_eq!(base.states_explored, par.states_explored);
    assert_eq!(base.dedup_hits, par.dedup_hits);
    assert_eq!(base.transitions, par.transitions);
}

/// The symmetry quotient pays on Figure 8 for the site-symmetric
/// policies: DV explores strictly fewer states with identical verdicts.
#[test]
fn figure8_dv_symmetry_quotient_saves_states() {
    let plain = run(&CheckConfig::new(figure8(Protocol::Dv), 4));
    let quotient = run(&CheckConfig::new(figure8(Protocol::Dv), 4).symmetry(true));
    assert!(
        quotient.states_explored < plain.states_explored,
        "quotient saved nothing: {} vs {}",
        quotient.states_explored,
        plain.states_explored
    );
    assert_eq!(plain.real_violations, quotient.real_violations);
    assert_eq!(plain.known_hazards, quotient.known_hazards);
    assert_eq!(plain.real_violations, 0);
}

/// Exhaustive Figure 8 at depth 6 — the depth where the sequential-
/// claim fork kernels surface on this topology. Pinned end to end:
/// state count, hazard count, zero real violations, untruncated.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "minutes without optimization; run with --release"
)]
fn figure8_depth_six_exhaustive_tdv() {
    let mut config = CheckConfig::new(figure8(Protocol::Tdv), 6)
        .threads(4)
        .symmetry(true);
    config.shrink = false;
    config.max_findings = 1;
    let report = run(&config);
    assert!(!report.truncated, "run must be exhaustive, not budgeted");
    assert_eq!(report.states_explored, 243_062);
    assert_eq!(report.transitions, 1_139_115);
    assert_eq!(report.real_violations, 0);
    assert_eq!(report.known_hazards, 88);
}

/// The same depth-6 space, sequential vs 4 threads, bit-identical.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "minutes without optimization; run with --release"
)]
fn figure8_depth_six_parallel_matches_sequential() {
    let mut seq = CheckConfig::new(figure8(Protocol::Tdv), 6);
    seq.shrink = false;
    seq.max_findings = 1;
    let mut par = seq.clone().threads(4);
    par.shrink = false;
    let a = run(&seq);
    let b = run(&par);
    assert_eq!(a.states_explored, b.states_explored);
    assert_eq!(a.dedup_hits, b.dedup_hits);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.known_hazards, b.known_hazards);
}
