//! End-to-end self-test: a deliberately injected stale-read bug must be
//! caught by the checker and delta-debugged to a tiny trace.
//!
//! The fault (`Cluster::set_stale_read_fault`, compiled behind the
//! `stale-read-fault` feature) makes a granted read serve the *origin's
//! local copy* whenever the origin holds one — the classic "trust the
//! local replica" shortcut that breaks one-copy semantics when the
//! origin slept through a write.

use dynvote_check::{run_with_factory, CheckConfig, Scenario};
use dynvote_replica::{Cluster, Protocol};

fn faulted(scenario: &Scenario) -> Cluster<u64> {
    let mut cluster = scenario.build_cluster();
    cluster.set_stale_read_fault(true);
    cluster
}

#[test]
fn injected_stale_read_is_caught_and_shrunk() {
    let scenario = Scenario::new(Protocol::Odv, 3, 1).unwrap();
    let config = CheckConfig::new(scenario, 4);
    let report = run_with_factory(&config, &faulted);

    assert!(
        report.real_violations > 0,
        "the armed fault must surface real violations"
    );
    assert_eq!(report.known_hazards, 0, "ODV has no known hazards");

    // Both the replica's own monitor and the world's token oracle see
    // it: the served version is stale AND the returned value is not the
    // last committed token.
    let stale = report
        .findings
        .iter()
        .find(|f| f.violation.invariant == "stale-read")
        .expect("a stale-read finding");
    assert!(!stale.known_hazard);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.violation.invariant == "token-oracle"),
        "the value-level oracle must fire too"
    );

    // Acceptance bound: the minimized reproduction is tiny. The true
    // kernel is 4 events (crash a copy, write past it, repair it, read
    // at it), so ≤8 leaves slack for detector ordering.
    assert!(
        stale.shrunk.len() <= 8,
        "shrunk trace too long: {:?}",
        stale.shrunk
    );
    assert_eq!(
        stale.shrunk.len(),
        4,
        "the stale-read kernel is exactly 4 events: {:?}",
        stale.shrunk
    );

    // The generated regression test names the invariant and is real
    // Rust the maintainer can paste into a test module.
    assert!(stale.regression.contains("#[test]"));
    assert!(stale.regression.contains("stale-read"));
    assert!(stale.regression.contains("Protocol::Odv"));
}

#[test]
fn unarmed_cluster_stays_clean_at_the_same_depth() {
    // Control: the exact same configuration without the fault is clean,
    // so the finding above is attributable to the injected bug alone.
    let scenario = Scenario::new(Protocol::Odv, 3, 1).unwrap();
    let config = CheckConfig::new(scenario, 4);
    let report = run_with_factory(&config, &|s: &Scenario| s.build_cluster());
    assert_eq!(report.real_violations, 0);
    assert_eq!(report.known_hazards, 0);
}
