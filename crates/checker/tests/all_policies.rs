//! Exhaustive small-scope runs over every policy: clean, deterministic,
//! and hazard-aware.

use dynvote_check::{run, CheckConfig, Scenario, ALL_POLICIES};
use dynvote_replica::Protocol;

/// Every policy is violation-free at depth 5 on 3 sites — and the
/// whole run is deterministic, state counts included.
#[test]
fn depth_five_three_sites_all_policies_clean() {
    for policy in ALL_POLICIES {
        let scenario = Scenario::new(policy, 3, 1).unwrap();
        let config = CheckConfig::new(scenario, 5);
        let report = run(&config);
        assert_eq!(
            report.real_violations, 0,
            "{scenario}: real violations found"
        );
        assert_eq!(
            report.known_hazards, 0,
            "{scenario}: the 3-site fork needs more than 5 events"
        );
        assert!(!report.truncated);
        assert!(report.states_explored > 100, "{scenario}: too few states");

        let again = run(&config);
        assert_eq!(report.states_explored, again.states_explored, "{scenario}");
        assert_eq!(report.dedup_hits, again.dedup_hits, "{scenario}");
        assert_eq!(report.transitions, again.transitions, "{scenario}");
    }
}

/// The optimistic protocols are message-level identical to their
/// instantaneous counterparts: identical exploration statistics.
#[test]
fn optimistic_variants_explore_identical_state_spaces() {
    let pairs = [
        (Protocol::Odv, Protocol::Ldv),
        (Protocol::Otdv, Protocol::Tdv),
    ];
    for (optimistic, instantaneous) in pairs {
        let a = run(&CheckConfig::new(
            Scenario::new(optimistic, 3, 1).unwrap(),
            5,
        ));
        let b = run(&CheckConfig::new(
            Scenario::new(instantaneous, 3, 1).unwrap(),
            5,
        ));
        assert_eq!(a.states_explored, b.states_explored);
        assert_eq!(a.transitions, b.transitions);
    }
}

/// Two segments at depth 5: the topological policies surface the
/// sequential-claim hazard (gateway loss isolates a claimed segment),
/// classified as known — and the non-topological policies stay clean.
#[test]
fn two_segments_surface_topological_hazards_only() {
    for policy in ALL_POLICIES {
        let scenario = Scenario::new(policy, 4, 2).unwrap();
        let report = run(&CheckConfig::new(scenario, 5));
        assert_eq!(report.real_violations, 0, "{scenario}");
        let topological = matches!(policy, Protocol::Tdv | Protocol::Otdv);
        if topological {
            assert!(report.known_hazards > 0, "{scenario}: hazard expected");
            let finding = &report.findings[0];
            assert!(finding.known_hazard);
            assert!(!finding.shrunk.is_empty());
            assert!(finding.shrunk.len() <= finding.trace.len());
        } else {
            assert_eq!(report.known_hazards, 0, "{scenario}");
        }
    }
}

/// The explorer honors its depth bound: depth 0 explores nothing and a
/// deeper run dominates a shallower one.
#[test]
fn depth_bound_is_respected() {
    let scenario = Scenario::new(Protocol::Ldv, 3, 1).unwrap();
    let zero = run(&CheckConfig::new(scenario, 0));
    assert_eq!(zero.states_explored, 1);
    assert_eq!(zero.transitions, 0);

    let shallow = run(&CheckConfig::new(scenario, 3));
    let deep = run(&CheckConfig::new(scenario, 4));
    assert!(deep.states_explored > shallow.states_explored);
}
