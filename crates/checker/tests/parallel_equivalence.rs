//! Parallel exploration is observationally identical to sequential
//! exploration: the layered-BFS engine merges worker output in
//! canonical order, so for every scenario in the small-scope sweep a
//! `--threads 4` run must report the *same* state counts, the same
//! finding counts, and the same shrunk traces as `--threads 1` — not
//! merely "equivalent" verdicts.
//!
//! Also pins budget behavior under concurrency: the transition budget
//! is one shared atomic counter (`BUDGET_POLL_MASK` polls), so a
//! truncated multi-threaded run still yields a well-formed partial
//! report.

use std::time::Duration;

use dynvote_check::{run, CheckConfig, Report, Scenario, ALL_POLICIES};

/// Renders every shrunk trace as sorted text so two reports can be
/// compared without caring about finding order.
fn shrunk_signatures(report: &Report) -> Vec<String> {
    let mut sigs: Vec<String> = report
        .findings
        .iter()
        .map(|finding| {
            let events: Vec<String> = finding.shrunk.iter().map(|e| e.to_string()).collect();
            format!(
                "{}|{}|{}",
                finding.violation.invariant,
                finding.known_hazard,
                events.join(";")
            )
        })
        .collect();
    sigs.sort();
    sigs
}

fn assert_identical(base: &Report, par: &Report, label: &str) {
    assert_eq!(
        base.states_explored, par.states_explored,
        "{label}: states diverged"
    );
    assert_eq!(base.dedup_hits, par.dedup_hits, "{label}: dedup diverged");
    assert_eq!(
        base.transitions, par.transitions,
        "{label}: transitions diverged"
    );
    assert_eq!(
        base.real_violations, par.real_violations,
        "{label}: real-violation count diverged"
    );
    assert_eq!(
        base.known_hazards, par.known_hazards,
        "{label}: hazard count diverged"
    );
    assert_eq!(
        base.findings.len(),
        par.findings.len(),
        "{label}: finding count diverged"
    );
    assert_eq!(
        shrunk_signatures(base),
        shrunk_signatures(par),
        "{label}: shrunk traces diverged"
    );
}

/// The full small-scope sweep (every policy, single- and two-segment
/// topologies, hazard-surfacing depths) reports identically at 4
/// worker threads.
#[test]
fn four_threads_match_sequential_across_the_sweep() {
    let shapes = [(3usize, 1usize, 5usize), (4, 1, 5), (4, 2, 5)];
    for policy in ALL_POLICIES {
        for (sites, segments, depth) in shapes {
            let scenario = Scenario::new(policy, sites, segments).unwrap();
            let base = run(&CheckConfig::new(scenario, depth));
            let par = run(&CheckConfig::new(scenario, depth).threads(4));
            assert_identical(&base, &par, &format!("{scenario} depth {depth}"));
        }
    }
}

/// Thread count is irrelevant beyond determinism: 2, 3, and 8 workers
/// also agree on a hazard-bearing scenario.
#[test]
fn any_thread_count_agrees_on_hazard_scenarios() {
    let scenario = Scenario::new(dynvote_replica::Protocol::Tdv, 4, 2).unwrap();
    let base = run(&CheckConfig::new(scenario, 5));
    assert!(base.known_hazards > 0, "scenario must surface the hazard");
    for threads in [2, 3, 8] {
        let par = run(&CheckConfig::new(scenario, 5).threads(threads));
        assert_identical(&base, &par, &format!("{scenario} threads {threads}"));
    }
}

/// A zero-budget run truncates immediately but still returns a
/// well-formed partial report — with worker threads sharing one atomic
/// budget counter, not each keeping a private one that would let
/// `threads × budget` transitions slip through.
#[test]
fn truncated_parallel_runs_are_well_formed() {
    let scenario = Scenario::new(dynvote_replica::Protocol::Ldv, 4, 1).unwrap();
    for threads in [1usize, 4] {
        let mut config = CheckConfig::new(scenario, 8).threads(threads);
        config.budget = Some(Duration::ZERO);
        let report = run(&config);
        assert!(report.truncated, "zero budget must truncate ({threads}t)");
        // The poll mask bounds how far past the deadline workers run:
        // well past it, the run must have stopped long before the
        // untruncated ~10^6-transition depth-8 space.
        assert!(
            report.transitions < 100_000,
            "budget leaked: {} transitions ({threads}t)",
            report.transitions
        );
        // Partial results stay internally consistent.
        assert!(report.states_explored >= 1, "root must be counted");
        assert!(report.real_violations == 0);
        for finding in &report.findings {
            assert!(!finding.trace.is_empty());
            assert!(finding.shrunk.len() <= finding.trace.len());
        }
    }
}

/// Symmetry on DV (a genuinely site-symmetric policy) shrinks the
/// state count without changing the verdict, at any thread count.
#[test]
fn symmetry_shrinks_dv_identically_at_any_thread_count() {
    let scenario = Scenario::new(dynvote_replica::Protocol::Dv, 4, 1).unwrap();
    let plain = run(&CheckConfig::new(scenario, 5));
    let sym_seq = run(&CheckConfig::new(scenario, 5).symmetry(true));
    let sym_par = run(&CheckConfig::new(scenario, 5).symmetry(true).threads(4));
    assert!(
        sym_seq.states_explored < plain.states_explored,
        "quotient saved nothing: {} vs {}",
        sym_seq.states_explored,
        plain.states_explored
    );
    assert_identical(&sym_seq, &sym_par, "dv symmetry seq-vs-par");
    assert_eq!(plain.real_violations, sym_seq.real_violations);
    assert_eq!(plain.known_hazards, sym_seq.known_hazards);
}
