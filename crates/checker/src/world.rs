//! The explored state: a real cluster plus the ground truth the
//! history-dependent oracles need.
//!
//! A [`World`] wraps the message-level [`Cluster`] — the checker drives
//! the *actual* protocol implementation, it does not re-model it — and
//! adds the per-path bookkeeping that table-level invariants cannot
//! carry: the monotone write-token counter, the token of the last
//! committed write (the "no read older than the last committed write"
//! oracle), and the forced-partition index.

use std::sync::Arc;

use dynvote_core::check::{ProtocolSnapshot, StateInvariant, Violation};
use dynvote_core::state::StateTable;
use dynvote_replica::checker::Violation as ReplicaViolation;
use dynvote_replica::{Cluster, Protocol, StepEvent};
use dynvote_types::{AccessError, SiteSet};

use crate::event::CheckEvent;
use crate::scenario::Scenario;

/// What applying one event did, before any invariant is consulted.
#[derive(Clone, Debug)]
pub struct StepOutcome {
    /// Whether the event took effect: always `true` for fault events,
    /// and the grant/refuse outcome for operations.
    pub granted: bool,
    /// The protocol's refusal, when the operation was refused.
    pub refusal: Option<AccessError>,
    /// A token-oracle violation: a granted read returned a value other
    /// than the last committed write token.
    pub oracle: Option<Violation>,
}

/// One explored state: the live cluster plus per-path ground truth.
#[derive(Clone)]
pub struct World {
    /// The cluster under check (value type = write token).
    pub cluster: Cluster<u64>,
    /// Canonical segment partitions of the scenario network (entry 0 is
    /// the trivial one-block partition). Shared, not cloned per branch.
    partitions: Arc<Vec<Vec<SiteSet>>>,
    /// Index of the currently forced partition, if any.
    forced: Option<usize>,
    /// The next write token to mint (consumed only by granted writes).
    next_token: u64,
    /// Token of the last committed write (`0` = the initial value).
    last_committed: u64,
    /// How many token-oracle violations this path has seen.
    oracle_violations: u64,
}

impl World {
    /// A fresh world for the scenario's canonical cluster.
    #[must_use]
    pub fn new(scenario: &Scenario) -> World {
        World::with_cluster(scenario.build_cluster())
    }

    /// A fresh world around a caller-built cluster — the hook that
    /// fault-injection tests use to hand the checker a deliberately
    /// broken cluster.
    #[must_use]
    pub fn with_cluster(cluster: Cluster<u64>) -> World {
        let partitions = Arc::new(cluster.network().segment_partitions());
        World {
            cluster,
            partitions,
            forced: None,
            next_token: 1,
            last_committed: 0,
            oracle_violations: 0,
        }
    }

    /// The canonical segment partitions of this world's network.
    #[must_use]
    pub fn partitions(&self) -> &[Vec<SiteSet>] {
        &self.partitions
    }

    /// Index of the currently forced partition, if any.
    #[must_use]
    pub fn forced(&self) -> Option<usize> {
        self.forced
    }

    /// The token of the last committed write (`0` before any write).
    #[must_use]
    pub fn last_committed(&self) -> u64 {
        self.last_committed
    }

    /// Whether this path has already committed a forked lineage — the
    /// topological protocols' sequential-claim hazard. Violations on a
    /// forked path are classified as known hazards, not fresh bugs.
    #[must_use]
    pub fn forked(&self) -> bool {
        self.cluster
            .checker()
            .violations()
            .iter()
            .any(|v| matches!(v, ReplicaViolation::LineageFork { .. }))
    }

    /// Applies one event to the live cluster.
    pub fn apply(&mut self, event: CheckEvent) -> StepOutcome {
        let mut outcome = StepOutcome {
            granted: true,
            refusal: None,
            oracle: None,
        };
        let result = match event {
            CheckEvent::Crash(site) => self.cluster.step(StepEvent::FailSite(site)),
            CheckEvent::Repair(site) => self.cluster.step(StepEvent::RepairSite(site)),
            CheckEvent::Recover(site) => self.cluster.step(StepEvent::Recover(site)),
            CheckEvent::Partition(index) => {
                let groups = self.partitions[index].clone();
                self.forced = Some(index);
                self.cluster.step(StepEvent::ForcePartition(groups))
            }
            CheckEvent::Heal => {
                self.forced = None;
                self.cluster.step(StepEvent::HealPartition)
            }
            CheckEvent::Read(origin) => self.cluster.step(StepEvent::Read(origin)),
            CheckEvent::Write(origin) => {
                let token = self.next_token;
                let result = self.cluster.step(StepEvent::Write(origin, token));
                if result.is_ok() {
                    self.next_token += 1;
                    self.last_committed = token;
                }
                result
            }
        };
        // The checker never reads the message trace, but every explored
        // state would otherwise retain its whole message history —
        // thousands of World clones in a BFS frontier turn that into
        // gigabytes. The trace is not part of the fingerprint, so
        // dropping it cannot merge distinct states.
        self.cluster.clear_trace();
        match result {
            Ok(Some(value)) => {
                if value != self.last_committed {
                    self.oracle_violations += 1;
                    outcome.oracle = Some(Violation {
                        invariant: "token-oracle",
                        detail: format!(
                            "granted {event} returned write token {value}, \
                             but the last committed write is token {}",
                            self.last_committed
                        ),
                    });
                }
            }
            Ok(None) => {}
            Err(refusal) => {
                outcome.granted = false;
                outcome.refusal = Some(refusal);
            }
        }
        outcome
    }

    /// Deterministic fingerprint of everything that can influence the
    /// world's future behaviour or verdicts: the cluster fingerprint
    /// (replica states, data, liveness, forced groups, checker digest)
    /// plus the token bookkeeping.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.cluster.fingerprint()
            ^ dynvote_core::fingerprint_of(&(
                self.next_token,
                self.last_committed,
                self.oracle_violations,
            ))
            .rotate_left(7)
    }

    /// Extracts everything [`World::fingerprint`] depends on into plain
    /// site-indexed data, so the symmetry layer can relabel sites and
    /// recompute fingerprints without touching the live cluster (see
    /// [`crate::symmetry`]).
    #[must_use]
    pub fn sym_view(&self) -> crate::symmetry::SymView {
        let participants = self.cluster.participants();
        let sites = participants.max().map_or(0, |s| s.index() + 1);
        let up = self.cluster.up_sites();
        let mut nodes = Vec::with_capacity(sites);
        for index in 0..sites {
            let site = dynvote_types::SiteId::new(index);
            if !participants.contains(site) {
                nodes.push(crate::symmetry::NodeView {
                    participant: false,
                    up: false,
                    pending: false,
                    op: 0,
                    version: 0,
                    partition: SiteSet::EMPTY,
                    value: 0,
                });
                continue;
            }
            let state = self.cluster.state_at(site);
            nodes.push(crate::symmetry::NodeView {
                participant: true,
                up: up.contains(site),
                pending: self.cluster.pending_at(site).is_some(),
                op: state.op,
                version: state.version,
                partition: state.partition,
                value: self.cluster.value_at(site),
            });
        }
        let checker = self.cluster.checker();
        crate::symmetry::SymView {
            sites,
            up,
            forced: self.forced,
            nodes,
            commits: checker.commit_entries(),
            versions: checker.version_entries(),
            monitor: (checker.latest_written(), checker.violations().len() as u64),
            scalars: [self.next_token, self.last_committed, self.oracle_violations],
        }
    }
}

/// Maps a replica-checker violation to its stable invariant name.
#[must_use]
pub fn replica_invariant_name(violation: &ReplicaViolation) -> &'static str {
    match violation {
        ReplicaViolation::StaleRead { .. } => "stale-read",
        ReplicaViolation::DuplicateVersion { .. } => "duplicate-version",
        ReplicaViolation::LineageFork { .. } => "lineage-fork",
    }
}

/// The default table-level invariant suite.
#[must_use]
pub fn default_suite() -> Vec<Box<dyn StateInvariant>> {
    vec![
        Box::new(dynvote_core::check::AtMostOneMajority),
        Box::new(dynvote_core::check::MonotoneCounters),
    ]
}

/// Snapshots every participant's control state into a dense table.
#[must_use]
pub fn state_table_of<T: Clone>(cluster: &Cluster<T>) -> StateTable {
    let participants = cluster.participants();
    let mut table = StateTable::fresh(participants);
    for site in participants.iter() {
        table.set(site, cluster.state_at(site));
    }
    table
}

/// The maximal communication groups of up participants, in site order.
#[must_use]
pub fn groups_of<T: Clone>(cluster: &Cluster<T>) -> Vec<SiteSet> {
    let participants = cluster.participants();
    let mut groups = Vec::new();
    let mut grouped = SiteSet::EMPTY;
    for site in participants.iter() {
        if grouped.contains(site) {
            continue;
        }
        let Some(group) = cluster.group_of(site) else {
            continue; // down site: in no group
        };
        let group = group & participants;
        grouped |= group;
        groups.push(group);
    }
    groups
}

/// Applies one event and returns every invariant violation the step
/// surfaced: the token oracle, fresh replica-checker findings (stale
/// read / duplicate version / lineage fork), and the table-level
/// [`StateInvariant`] suite on the resulting state and transition.
///
/// This is *the* detection path — the explorer, the shrinker's
/// reproduction check, and trace replay all go through it, so a shrunk
/// trace is judged by exactly the rules that convicted the original.
pub fn apply_and_detect(
    world: &mut World,
    suite: &[Box<dyn StateInvariant>],
    event: CheckEvent,
) -> Vec<Violation> {
    let participants = world.cluster.participants();
    let prev_table = state_table_of(&world.cluster);
    let seen_before = world.cluster.checker().violations().len();

    let outcome = world.apply(event);

    let mut found = Vec::new();
    if let Some(oracle) = outcome.oracle {
        found.push(oracle);
    }
    for violation in &world.cluster.checker().violations()[seen_before..] {
        found.push(Violation {
            invariant: replica_invariant_name(violation),
            detail: violation.to_string(),
        });
    }
    let next_table = state_table_of(&world.cluster);
    let groups = groups_of(&world.cluster);
    let snapshot = ProtocolSnapshot {
        copies: world.cluster.copies(),
        witnesses: world.cluster.witnesses(),
        states: &next_table,
        groups: &groups,
        rule: world.cluster.rule(),
        network: Some(world.cluster.network()),
    };
    for invariant in suite {
        if let Err(violation) = invariant.check_state(&snapshot) {
            found.push(violation);
        }
        if let Err(violation) = invariant.check_step(&prev_table, &next_table, participants) {
            found.push(violation);
        }
    }
    found
}

/// Classifies a violation: `true` means *known hazard* — the
/// documented sequential-claim behaviour of the topological protocols —
/// rather than a fresh bug.
///
/// Two signals mark a hazard, both only under TDV/OTDV: the path has
/// (or just) committed a forked lineage, or the violation is the
/// rival-majority state (`at-most-one-majority`), which a sequential
/// claim produces *before* the rival group commits anything. Every
/// violation under the non-topological policies is a real finding.
#[must_use]
pub fn classify_known_hazard(
    policy: Protocol,
    was_forked: bool,
    now_forked: bool,
    violation: &Violation,
) -> bool {
    matches!(policy, Protocol::Tdv | Protocol::Otdv)
        && (was_forked || now_forked || violation.invariant == "at-most-one-majority")
}

#[cfg(test)]
mod tests {
    use dynvote_replica::Protocol;
    use dynvote_types::SiteId;

    use super::*;

    fn scenario(policy: Protocol) -> Scenario {
        Scenario::new(policy, 3, 1).unwrap()
    }

    #[test]
    fn tokens_follow_committed_writes() {
        let mut world = World::new(&scenario(Protocol::Odv));
        assert_eq!(world.last_committed(), 0);
        let out = world.apply(CheckEvent::Write(SiteId::new(0)));
        assert!(out.granted);
        assert_eq!(world.last_committed(), 1);
        // A granted read returns the committed token: no oracle firing.
        let out = world.apply(CheckEvent::Read(SiteId::new(2)));
        assert!(out.granted && out.oracle.is_none());
    }

    #[test]
    fn refused_write_consumes_no_token() {
        let mut world = World::new(&scenario(Protocol::Odv));
        for site in 0..2 {
            world.apply(CheckEvent::Crash(SiteId::new(site)));
        }
        let out = world.apply(CheckEvent::Write(SiteId::new(2)));
        assert!(!out.granted, "1 of 3 is no quorum");
        assert_eq!(world.last_committed(), 0);
        let fp = world.fingerprint();
        // Refusals leave the world byte-identical: same fingerprint.
        let again = world.apply(CheckEvent::Write(SiteId::new(2)));
        assert!(!again.granted);
        assert_eq!(world.fingerprint(), fp);
    }

    #[test]
    fn clean_steps_surface_no_violations() {
        let mut world = World::new(&scenario(Protocol::Ldv));
        let suite = default_suite();
        let events = [
            CheckEvent::Write(SiteId::new(0)),
            CheckEvent::Crash(SiteId::new(2)),
            CheckEvent::Read(SiteId::new(1)),
            CheckEvent::Repair(SiteId::new(2)),
            CheckEvent::Recover(SiteId::new(2)),
            CheckEvent::Read(SiteId::new(2)),
        ];
        for event in events {
            let found = apply_and_detect(&mut world, &suite, event);
            assert!(found.is_empty(), "unexpected violations: {found:?}");
        }
    }

    #[test]
    fn lineage_fork_is_detected_and_classified() {
        // The 2-site TDV sequential-claim hazard (the PR 1 finding):
        // S1 claims the crashed S0's vote, shrinks to P={1}, then S0
        // repairs alone, claims S1's vote back, and RECOVER forks the
        // lineage: operation 2 committed by {1} and again by {0}.
        let mut world = World::new(&Scenario::new(Protocol::Tdv, 2, 1).unwrap());
        let suite = default_suite();
        let path = [
            CheckEvent::Crash(SiteId::new(0)),
            CheckEvent::Read(SiteId::new(1)),
            CheckEvent::Crash(SiteId::new(1)),
            CheckEvent::Repair(SiteId::new(0)),
        ];
        for event in path {
            let found = apply_and_detect(&mut world, &suite, event);
            assert!(found.is_empty(), "no violation before the fork: {found:?}");
        }
        let was_forked = world.forked();
        let found = apply_and_detect(&mut world, &suite, CheckEvent::Recover(SiteId::new(0)));
        assert!(
            found.iter().any(|v| v.invariant == "lineage-fork"),
            "expected a lineage fork, got {found:?}"
        );
        let now_forked = world.forked();
        for violation in &found {
            assert!(
                classify_known_hazard(Protocol::Tdv, was_forked, now_forked, violation),
                "the TDV fork is the documented hazard"
            );
        }
        // The same violation under a non-topological policy would be a
        // real finding.
        assert!(!classify_known_hazard(
            Protocol::Ldv,
            was_forked,
            now_forked,
            &found[0]
        ));
    }

    #[test]
    fn ldv_refuses_where_tdv_claims() {
        // Control for the test above: LDV has no vote claiming, so
        // S1's READ loses the 1-of-2 tie (the default lexicon ranks S0
        // highest), the partition never shrinks to {1}, and S0's later
        // RECOVER is a legitimate, fork-free tie win.
        let mut world = World::new(&Scenario::new(Protocol::Ldv, 2, 1).unwrap());
        let suite = default_suite();
        assert!(apply_and_detect(&mut world, &suite, CheckEvent::Crash(SiteId::new(0))).is_empty());
        let out = world.apply(CheckEvent::Read(SiteId::new(1)));
        assert!(!out.granted, "S1 alone loses the {{S0,S1}} tie to S0");
        for event in [
            CheckEvent::Crash(SiteId::new(1)),
            CheckEvent::Repair(SiteId::new(0)),
            CheckEvent::Recover(SiteId::new(0)),
        ] {
            assert!(apply_and_detect(&mut world, &suite, event).is_empty());
        }
        assert!(!world.forked(), "only one lineage ever committed");
    }

    #[test]
    fn groups_respect_gateway_loss() {
        let scenario = Scenario::new(Protocol::Otdv, 4, 2).unwrap();
        let mut world = World::new(&scenario);
        assert_eq!(groups_of(&world.cluster).len(), 1);
        world.apply(CheckEvent::Crash(SiteId::new(1)));
        // Gateway S1 down: {0} and {2,3}.
        let groups = groups_of(&world.cluster);
        assert_eq!(groups.len(), 2);
        assert!(groups.contains(&SiteSet::from_indices([0])));
        assert!(groups.contains(&SiteSet::from_indices([2, 3])));
    }

    #[test]
    fn forced_partition_tracks_index() {
        let scenario = Scenario::new(Protocol::Dv, 4, 2).unwrap();
        let mut world = World::new(&scenario);
        assert!(world.partitions().len() > 1, "two segments: 2 partitions");
        let fp_healed = world.fingerprint();
        world.apply(CheckEvent::Partition(1));
        assert_eq!(world.forced(), Some(1));
        assert_ne!(world.fingerprint(), fp_healed);
        world.apply(CheckEvent::Heal);
        assert_eq!(world.forced(), None);
        assert_eq!(world.fingerprint(), fp_healed);
    }
}
