//! Bounded exhaustive exploration with memoized deduplication.
//!
//! Layered breadth-first search over every interleaving of the event
//! alphabet, to a configurable depth, on the shared engine
//! ([`crate::engine`]): optionally multi-threaded (`threads`) and
//! optionally quotiented by site symmetry (`symmetry`, see
//! [`crate::symmetry`]). Branching clones the [`World`] (clusters share
//! their reachability memo, so clones are cheap); deduplication hashes
//! every reached state with [`World::fingerprint`] — or its canonical
//! form under symmetry — and skips a state already explored with at
//! least as much remaining depth (*depth-left dominance*: a weaker
//! revisit can only reach a subset of what the stronger visit already
//! covered; the engine's layer order makes the first visit always the
//! strongest, which is what keeps parallel counts identical to
//! sequential ones).
//!
//! Violating states are terminal: the violation is recorded with its
//! full event path and never expanded further, so every finding's trace
//! ends at the exact step that surfaced it.

use std::time::{Duration, Instant};

use dynvote_core::check::{StateInvariant, Violation};

use crate::engine::{self, EngineConfig, Space};
use crate::event::CheckEvent;
use crate::scenario::Scenario;
use crate::shrink::ddmin;
use crate::symmetry::{canonical_fingerprint, SymmetryGroup};
use crate::trace::regression_snippet;
use crate::world::{apply_and_detect, classify_known_hazard, default_suite, World};

/// How often (in applied transitions) the wall-clock budget is polled.
/// The counter is shared across workers (a single atomic), so the poll
/// cadence holds fleet-wide: no worker can overrun the deadline by more
/// than one poll interval, however the layer is partitioned.
pub const BUDGET_POLL_MASK: u64 = 0x3FF;

/// One run of the checker.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// The configuration under check.
    pub scenario: Scenario,
    /// Maximum number of events per path.
    pub depth: usize,
    /// Wall-clock budget; `None` explores exhaustively (and
    /// deterministically — budgeted runs may truncate at a
    /// machine-dependent point).
    pub budget: Option<Duration>,
    /// At most this many findings keep their full traces (all
    /// violations are still *counted*).
    pub max_findings: usize,
    /// Minimize each recorded trace with delta debugging.
    pub shrink: bool,
    /// Worker threads for frontier expansion (1 = sequential; any
    /// value yields identical reports, see
    /// `tests/parallel_equivalence.rs`).
    pub threads: usize,
    /// Deduplicate states up to permutations of interchangeable
    /// same-segment sites (see [`crate::symmetry`]).
    pub symmetry: bool,
}

impl CheckConfig {
    /// A default configuration: exhaustive, sequential, no symmetry
    /// quotient, up to 8 recorded findings, shrinking on.
    #[must_use]
    pub fn new(scenario: Scenario, depth: usize) -> CheckConfig {
        CheckConfig {
            scenario,
            depth,
            budget: None,
            max_findings: 8,
            shrink: true,
            threads: 1,
            symmetry: false,
        }
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> CheckConfig {
        self.threads = threads;
        self
    }

    /// Turns the symmetry quotient on or off.
    #[must_use]
    pub fn symmetry(mut self, on: bool) -> CheckConfig {
        self.symmetry = on;
        self
    }
}

/// One recorded invariant violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The violated invariant.
    pub violation: Violation,
    /// Whether this is the topological protocols' documented
    /// sequential-claim hazard rather than a fresh bug.
    pub known_hazard: bool,
    /// The event path that reached the violation, as found.
    pub trace: Vec<CheckEvent>,
    /// The delta-debugged 1-minimal reproduction (equals `trace` when
    /// shrinking is off).
    pub shrunk: Vec<CheckEvent>,
    /// A ready-to-paste `#[test]` reproducing the violation.
    pub regression: String,
}

/// The result of one exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// The explored configuration.
    pub scenario: Scenario,
    /// The depth bound the run used.
    pub depth: usize,
    /// Distinct states visited (the root included; orbit
    /// representatives when symmetry is on).
    pub states_explored: u64,
    /// Transitions that landed on an already-covered state.
    pub dedup_hits: u64,
    /// Total transitions applied.
    pub transitions: u64,
    /// Whether the wall-clock budget truncated the search.
    pub truncated: bool,
    /// Violations classified as real bugs (total, not capped).
    pub real_violations: u64,
    /// Violations classified as known topological hazards (total).
    pub known_hazards: u64,
    /// Recorded findings, at most `max_findings`, in discovery order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Whether the run is clean: no real violations (known hazards are
    /// reported, not failed, unless the caller denies them).
    #[must_use]
    pub fn clean(&self) -> bool {
        self.real_violations == 0
    }
}

/// Every event applicable in `world`, in canonical order: crash/repair
/// per site, recover per up site, partition changes, then reads and
/// writes per up site. Canonical ordering is what makes exploration
/// (and therefore reports and recorded traces) deterministic.
#[must_use]
pub fn enumerate_events(world: &World) -> Vec<CheckEvent> {
    let cluster = &world.cluster;
    let copies = cluster.copies();
    let up = cluster.up_sites();
    let mut out = Vec::new();
    for site in copies.iter() {
        if up.contains(site) {
            out.push(CheckEvent::Crash(site));
        } else {
            out.push(CheckEvent::Repair(site));
        }
    }
    for site in copies.iter() {
        if up.contains(site) {
            out.push(CheckEvent::Recover(site));
        }
    }
    let partitions = world.partitions();
    if partitions.len() > 1 {
        for index in 1..partitions.len() {
            if world.forced() != Some(index) {
                out.push(CheckEvent::Partition(index));
            }
        }
        if world.forced().is_some() {
            out.push(CheckEvent::Heal);
        }
    }
    for site in copies.iter() {
        if up.contains(site) {
            out.push(CheckEvent::Read(site));
        }
    }
    for site in copies.iter() {
        if up.contains(site) {
            out.push(CheckEvent::Write(site));
        }
    }
    out
}

/// The invariant checker's [`Space`]: a [`World`] stepped through
/// [`apply_and_detect`], with violations classified against the
/// policy's documented hazards at the transition that surfaced them.
#[derive(Clone)]
struct CheckSpace<'a> {
    world: World,
    suite: &'a [Box<dyn StateInvariant>],
    scenario: Scenario,
}

impl Space for CheckSpace<'_> {
    type Hit = (Violation, bool);

    fn events(&self) -> Vec<CheckEvent> {
        enumerate_events(&self.world)
    }

    fn step(&mut self, event: CheckEvent) -> Vec<(Violation, bool)> {
        let was_forked = self.world.forked();
        let found = apply_and_detect(&mut self.world, self.suite, event);
        if found.is_empty() {
            return Vec::new();
        }
        let now_forked = self.world.forked();
        found
            .into_iter()
            .map(|violation| {
                let hazard =
                    classify_known_hazard(self.scenario.policy, was_forked, now_forked, &violation);
                (violation, hazard)
            })
            .collect()
    }

    fn fingerprint(&self, symmetry: Option<&SymmetryGroup>) -> u64 {
        match symmetry {
            None => self.world.fingerprint(),
            Some(group) => canonical_fingerprint(&[&self.world.sym_view()], group),
        }
    }
}

/// Runs the checker on the scenario's canonical cluster.
#[must_use]
pub fn run(config: &CheckConfig) -> Report {
    run_with_factory(config, &|scenario: &Scenario| scenario.build_cluster())
}

/// Runs the checker with a pluggable cluster factory.
///
/// The factory builds the root cluster *and* every reproduction replay
/// (shrinking re-validates candidate traces from scratch), so a factory
/// that arms a fault keeps it armed through minimization.
#[must_use]
pub fn run_with_factory(
    config: &CheckConfig,
    factory: &dyn Fn(&Scenario) -> dynvote_replica::Cluster<u64>,
) -> Report {
    let suite = default_suite();
    let root = CheckSpace {
        world: World::with_cluster(factory(&config.scenario)),
        suite: &suite,
        scenario: config.scenario,
    };
    let engine_config = EngineConfig {
        depth: config.depth,
        threads: config.threads,
        symmetry: config.symmetry.then(|| SymmetryGroup::of(&config.scenario)),
        deadline: config.budget.map(|budget| Instant::now() + budget),
        max_traced: config.max_findings,
    };
    let result = engine::explore(root, &engine_config);

    let mut report = Report {
        scenario: config.scenario,
        depth: config.depth,
        states_explored: result.states_explored,
        dedup_hits: result.dedup_hits,
        transitions: result.transitions,
        truncated: result.truncated,
        real_violations: 0,
        known_hazards: 0,
        findings: Vec::new(),
    };
    for rec in result.hits {
        for (violation, hazard) in rec.hits {
            if hazard {
                report.known_hazards += 1;
            } else {
                report.real_violations += 1;
            }
            if report.findings.len() < config.max_findings {
                if let Some(trace) = &rec.trace {
                    report.findings.push(Finding {
                        violation,
                        known_hazard: hazard,
                        trace: trace.clone(),
                        shrunk: trace.clone(),
                        regression: String::new(),
                    });
                }
            }
        }
    }

    if config.shrink {
        for finding in &mut report.findings {
            finding.shrunk = shrink_finding(config, factory, &suite, finding);
            finding.regression = regression_snippet(
                &config.scenario,
                &finding.shrunk,
                finding.violation.invariant,
                finding.known_hazard,
            );
        }
    }
    report
}

/// Replays `events` on a fresh factory-built world and reports whether
/// the target violation (same invariant, same hazard classification)
/// occurs at any step.
pub fn reproduces(
    scenario: &Scenario,
    factory: &dyn Fn(&Scenario) -> dynvote_replica::Cluster<u64>,
    suite: &[Box<dyn StateInvariant>],
    invariant: &str,
    known_hazard: bool,
    events: &[CheckEvent],
) -> bool {
    let mut world = World::with_cluster(factory(scenario));
    for &event in events {
        let was_forked = world.forked();
        let found = apply_and_detect(&mut world, suite, event);
        let now_forked = world.forked();
        for violation in &found {
            let hazard = classify_known_hazard(scenario.policy, was_forked, now_forked, violation);
            if violation.invariant == invariant && hazard == known_hazard {
                return true;
            }
        }
    }
    false
}

fn shrink_finding(
    config: &CheckConfig,
    factory: &dyn Fn(&Scenario) -> dynvote_replica::Cluster<u64>,
    suite: &[Box<dyn StateInvariant>],
    finding: &Finding,
) -> Vec<CheckEvent> {
    ddmin(&finding.trace, |candidate| {
        reproduces(
            &config.scenario,
            factory,
            suite,
            finding.violation.invariant,
            finding.known_hazard,
            candidate,
        )
    })
}

#[cfg(test)]
mod tests {
    use dynvote_replica::Protocol;

    use super::*;

    #[test]
    fn enumeration_is_canonical_and_liveness_aware() {
        let scenario = Scenario::new(Protocol::Ldv, 3, 1).unwrap();
        let world = World::new(&scenario);
        let events = enumerate_events(&world);
        // 3 crash + 3 recover + 3 read + 3 write, no partitions at one
        // segment.
        assert_eq!(events.len(), 12);
        assert_eq!(events, enumerate_events(&world), "stable order");

        let mut crashed = world.clone();
        crashed.apply(CheckEvent::Crash(dynvote_types::SiteId::new(1)));
        let events = enumerate_events(&crashed);
        // S1 swaps crash→repair and loses recover/read/write.
        assert_eq!(events.len(), 9);
        assert!(events.contains(&CheckEvent::Repair(dynvote_types::SiteId::new(1))));
    }

    #[test]
    fn multi_segment_enumeration_offers_partitions() {
        let scenario = Scenario::new(Protocol::Dv, 4, 2).unwrap();
        let world = World::new(&scenario);
        let events = enumerate_events(&world);
        assert!(events.contains(&CheckEvent::Partition(1)));
        assert!(!events.contains(&CheckEvent::Heal), "nothing to heal yet");
    }

    #[test]
    fn tiny_exhaustive_run_is_clean_and_deterministic() {
        let scenario = Scenario::new(Protocol::Odv, 2, 1).unwrap();
        let config = CheckConfig::new(scenario, 3);
        let a = run(&config);
        let b = run(&config);
        assert!(a.clean(), "ODV at depth 3 must be violation-free");
        assert_eq!(a.known_hazards, 0);
        assert_eq!(a.states_explored, b.states_explored);
        assert_eq!(a.dedup_hits, b.dedup_hits);
        assert_eq!(a.transitions, b.transitions);
        assert!(a.states_explored > 1);
        assert!(!a.truncated);
    }

    #[test]
    fn tdv_two_sites_finds_the_fork_hazard() {
        let scenario = Scenario::new(Protocol::Tdv, 2, 1).unwrap();
        let report = run(&CheckConfig::new(scenario, 5));
        assert_eq!(report.real_violations, 0, "the fork is a *known* hazard");
        assert!(report.known_hazards > 0, "depth 5 reaches the 2-site fork");
        let finding = report
            .findings
            .iter()
            .find(|f| f.violation.invariant == "lineage-fork")
            .expect("a lineage-fork finding");
        assert!(finding.known_hazard);
        assert!(finding.shrunk.len() <= finding.trace.len());
        assert_eq!(finding.shrunk.len(), 5, "the 2-site fork needs 5 events");
    }

    #[test]
    fn threads_and_symmetry_flags_preserve_verdicts() {
        let scenario = Scenario::new(Protocol::Tdv, 3, 1).unwrap();
        let base = run(&CheckConfig::new(scenario, 5));
        let par = run(&CheckConfig::new(scenario, 5).threads(4));
        assert_eq!(base.states_explored, par.states_explored);
        assert_eq!(base.dedup_hits, par.dedup_hits);
        assert_eq!(base.transitions, par.transitions);
        assert_eq!(base.known_hazards, par.known_hazards);
        assert_eq!(base.real_violations, par.real_violations);

        // TDV's lexicographic tie-break degenerates the group to the
        // identity, so symmetry-on must be byte-for-byte equivalent.
        let sym = run(&CheckConfig::new(scenario, 5).symmetry(true));
        assert_eq!(base.states_explored, sym.states_explored);
        assert_eq!(base.known_hazards, sym.known_hazards);
        assert_eq!(base.real_violations, sym.real_violations);

        // DV is site-symmetric: the quotient must genuinely shrink the
        // state space without changing the verdict.
        let dv = Scenario::new(Protocol::Dv, 3, 1).unwrap();
        let dv_base = run(&CheckConfig::new(dv, 5));
        let dv_sym = run(&CheckConfig::new(dv, 5).symmetry(true));
        assert!(
            dv_sym.states_explored < dv_base.states_explored,
            "the quotient must actually shrink a symmetric scenario \
             ({} vs {})",
            dv_sym.states_explored,
            dv_base.states_explored,
        );
        assert!(dv_base.clean() && dv_sym.clean());
        assert_eq!(dv_base.known_hazards, 0);
        assert_eq!(dv_sym.known_hazards, 0);
    }
}
