//! The checker's event alphabet.
//!
//! A [`CheckEvent`] is the enumerable, serializable form of one cluster
//! transition. It differs from [`dynvote_replica::StepEvent`] in two
//! deliberate ways:
//!
//! * `Write` carries no value — the [`crate::World`] mints a monotone
//!   token per granted write, so the alphabet stays finite and a trace
//!   replays identically regardless of which writes an edited
//!   subsequence keeps;
//! * `Partition` carries an *index* into the scenario's canonical
//!   segment-partition list ([`dynvote_topology::Network::segment_partitions`]),
//!   not the raw groups — the alphabet enumerates only partitions that
//!   respect segment boundaries, the precondition under which the
//!   topological protocols' vote claiming is sound.
//!
//! Crash/repair are liveness-only; the protocol-level rejoin is the
//! explicit `Recover` event. Splitting them is what makes
//! *stale-but-up* replicas reachable states — the states where every
//! interesting hazard lives.

use dynvote_types::SiteId;

/// One enumerable cluster transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckEvent {
    /// Fail-stop crash of a site (state survives on stable storage).
    Crash(SiteId),
    /// The site comes back up — liveness only, no protocol rejoin.
    Repair(SiteId),
    /// The RECOVER operation coordinated at the (up) site.
    Recover(SiteId),
    /// Force the canonical segment partition with this index (index 0
    /// is the trivial one-block partition and is expressed as
    /// [`CheckEvent::Heal`] instead).
    Partition(usize),
    /// Remove any forced partition.
    Heal,
    /// The READ operation coordinated at the (up) site.
    Read(SiteId),
    /// The WRITE operation coordinated at the (up) site; the world
    /// supplies the next write token as the value.
    Write(SiteId),
}

impl core::fmt::Display for CheckEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckEvent::Crash(s) => write!(f, "crash {}", s.index()),
            CheckEvent::Repair(s) => write!(f, "repair {}", s.index()),
            CheckEvent::Recover(s) => write!(f, "recover {}", s.index()),
            CheckEvent::Partition(i) => write!(f, "partition {i}"),
            CheckEvent::Heal => write!(f, "heal"),
            CheckEvent::Read(s) => write!(f, "read {}", s.index()),
            CheckEvent::Write(s) => write!(f, "write {}", s.index()),
        }
    }
}

impl CheckEvent {
    /// Parses one trace line (the [`core::fmt::Display`] form).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed line.
    pub fn parse(line: &str) -> Result<CheckEvent, String> {
        let mut parts = line.split_whitespace();
        let word = parts.next().ok_or_else(|| "empty event line".to_string())?;
        let arg = parts.next();
        if parts.next().is_some() {
            return Err(format!("trailing tokens in event line {line:?}"));
        }
        let site = |arg: Option<&str>| -> Result<SiteId, String> {
            let raw = arg.ok_or_else(|| format!("event {word:?} needs a site number"))?;
            let index: usize = raw
                .parse()
                .map_err(|_| format!("bad site number {raw:?}"))?;
            Ok(SiteId::new(index))
        };
        match word {
            "crash" => Ok(CheckEvent::Crash(site(arg)?)),
            "repair" => Ok(CheckEvent::Repair(site(arg)?)),
            "recover" => Ok(CheckEvent::Recover(site(arg)?)),
            "partition" => {
                let raw = arg.ok_or_else(|| "partition needs an index".to_string())?;
                let index: usize = raw
                    .parse()
                    .map_err(|_| format!("bad partition index {raw:?}"))?;
                Ok(CheckEvent::Partition(index))
            }
            "heal" => {
                if arg.is_some() {
                    return Err("heal takes no argument".to_string());
                }
                Ok(CheckEvent::Heal)
            }
            "read" => Ok(CheckEvent::Read(site(arg)?)),
            "write" => Ok(CheckEvent::Write(site(arg)?)),
            other => Err(format!("unknown event {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        let events = [
            CheckEvent::Crash(SiteId::new(0)),
            CheckEvent::Repair(SiteId::new(3)),
            CheckEvent::Recover(SiteId::new(1)),
            CheckEvent::Partition(2),
            CheckEvent::Heal,
            CheckEvent::Read(SiteId::new(4)),
            CheckEvent::Write(SiteId::new(2)),
        ];
        for event in events {
            let line = event.to_string();
            assert_eq!(CheckEvent::parse(&line), Ok(event), "line {line:?}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CheckEvent::parse("").is_err());
        assert!(CheckEvent::parse("explode 3").is_err());
        assert!(CheckEvent::parse("crash").is_err());
        assert!(CheckEvent::parse("crash x").is_err());
        assert!(CheckEvent::parse("heal 2").is_err());
        assert!(CheckEvent::parse("read 1 2").is_err());
    }
}
