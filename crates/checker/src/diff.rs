//! Cross-policy differential oracle: lockstep exploration of two
//! policies under identical event schedules.
//!
//! Two relations are checked:
//!
//! * [`Relation::GrantImplies`] — every operation the primary policy
//!   grants, the reference grants too (grant-set inclusion under a
//!   shared history). The sound instance is **DV ⊆ LDV**: LDV is DV
//!   plus a tie-break, so it can only grant *more*.
//! * [`Relation::Equivalent`] — the policies take identical decisions
//!   and their clusters stay bit-identical (fingerprint equality).
//!   The sound instances are **ODV ≡ LDV** and **OTDV ≡ TDV**: at
//!   message level the optimistic/instantaneous distinction is about
//!   *when clients invoke operations*, which the event schedule already
//!   controls, so the rules coincide.
//!
//! The often-assumed third relation, **MCV ⊆ LDV**, is *false* — MCV
//! counts every reachable copy while LDV's shrunk partitions demand the
//! lineage's survivors, so a repaired-but-unrecovered copy lets MCV
//! grant where LDV refuses. The checker found and minimized a witness;
//! it is pinned as a corpus trace and documented in EXPERIMENTS.md
//! rather than asserted as an invariant.
//!
//! Differential runs share the layered-BFS engine ([`crate::engine`])
//! with the invariant checker, so they inherit `--threads` parallelism
//! and the `--symmetry` quotient. A pair state is deduplicated by the
//! combined fingerprint of both worlds; under symmetry the *same*
//! relabeling is applied to both sides (a permutation that maps pair
//! `(p, r)` onto pair `(πp, πr)` is a symmetry of the lockstep system
//! only if it is one of each side), and the admissible group is the
//! *meet* of the two policies' groups — which, per the soundness rules
//! in [`crate::symmetry`], is non-trivial only when both policies are
//! site-symmetric.

use std::time::{Duration, Instant};

use dynvote_replica::Protocol;

use crate::engine::{self, EngineConfig, Space};
use crate::event::CheckEvent;
use crate::explore::enumerate_events;
use crate::scenario::{policy_name, Scenario};
use crate::shrink::ddmin;
use crate::symmetry::{canonical_fingerprint, SymmetryGroup};
use crate::world::World;

/// The relation a differential run asserts between primary and
/// reference policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// Primary grants ⟹ reference grants (grant-set inclusion).
    GrantImplies,
    /// Identical decisions and bit-identical cluster states.
    Equivalent,
}

/// One differential run: primary policy (from `scenario`) vs
/// `reference`, same sites/segments/depth.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Scenario of the *primary* policy.
    pub scenario: Scenario,
    /// The reference policy.
    pub reference: Protocol,
    /// The asserted relation.
    pub relation: Relation,
    /// Maximum number of events per path.
    pub depth: usize,
    /// Wall-clock budget; `None` is exhaustive.
    pub budget: Option<Duration>,
    /// At most this many counterexamples keep their traces.
    pub max_findings: usize,
    /// Worker threads for frontier expansion.
    pub threads: usize,
    /// Quotient pair states by the meet of both policies' symmetry
    /// groups.
    pub symmetry: bool,
}

impl DiffConfig {
    /// A default exhaustive configuration: sequential, no symmetry.
    #[must_use]
    pub fn new(
        scenario: Scenario,
        reference: Protocol,
        relation: Relation,
        depth: usize,
    ) -> DiffConfig {
        DiffConfig {
            scenario,
            reference,
            relation,
            depth,
            budget: None,
            max_findings: 4,
            threads: 1,
            symmetry: false,
        }
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> DiffConfig {
        self.threads = threads;
        self
    }

    /// Turns the symmetry quotient on or off.
    #[must_use]
    pub fn symmetry(mut self, on: bool) -> DiffConfig {
        self.symmetry = on;
        self
    }

    fn reference_scenario(&self) -> Scenario {
        Scenario {
            policy: self.reference,
            ..self.scenario
        }
    }
}

/// One relation counterexample.
#[derive(Clone, Debug)]
pub struct DiffFinding {
    /// The events leading to (and including) the diverging step.
    pub trace: Vec<CheckEvent>,
    /// What diverged.
    pub detail: String,
    /// The delta-debugged minimal reproduction.
    pub shrunk: Vec<CheckEvent>,
}

/// The result of one differential run.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// The primary scenario.
    pub scenario: Scenario,
    /// The reference policy.
    pub reference: Protocol,
    /// The asserted relation.
    pub relation: Relation,
    /// Distinct lockstep states visited.
    pub states_explored: u64,
    /// Transitions landing on covered states.
    pub dedup_hits: u64,
    /// Total transitions applied.
    pub transitions: u64,
    /// Whether the budget truncated the run.
    pub truncated: bool,
    /// Total relation mismatches (not capped).
    pub mismatches: u64,
    /// Recorded counterexamples.
    pub findings: Vec<DiffFinding>,
}

impl DiffReport {
    /// Whether the relation held everywhere explored.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.mismatches == 0
    }
}

/// The lockstep pair, as a [`Space`]: a mismatch is a terminal hit.
#[derive(Clone)]
struct PairSpace {
    primary: World,
    reference: World,
    primary_policy: Protocol,
    reference_policy: Protocol,
    relation: Relation,
}

impl Space for PairSpace {
    type Hit = String;

    fn events(&self) -> Vec<CheckEvent> {
        // The alphabet comes from the primary world; fault events keep
        // the two up-sets identical, so enumeration agrees between the
        // worlds even after their partition sets diverge.
        enumerate_events(&self.primary)
    }

    fn step(&mut self, event: CheckEvent) -> Vec<String> {
        check_pair(self, event).into_iter().collect()
    }

    fn fingerprint(&self, symmetry: Option<&SymmetryGroup>) -> u64 {
        match symmetry {
            None => self.primary.fingerprint() ^ self.reference.fingerprint().rotate_left(17),
            Some(group) => canonical_fingerprint(
                &[&self.primary.sym_view(), &self.reference.sym_view()],
                group,
            ),
        }
    }
}

/// Applies one event to both worlds and checks the relation;
/// `Some(detail)` on mismatch.
fn check_pair(pair: &mut PairSpace, event: CheckEvent) -> Option<String> {
    let out_primary = pair.primary.apply(event);
    let out_reference = pair.reference.apply(event);
    let primary_name = policy_name(pair.primary_policy);
    let reference_name = policy_name(pair.reference_policy);
    match pair.relation {
        Relation::GrantImplies => {
            if out_primary.granted && !out_reference.granted {
                return Some(format!(
                    "{primary_name} granted `{event}` but {reference_name} refused it \
                     ({:?})",
                    out_reference.refusal
                ));
            }
        }
        Relation::Equivalent => {
            if out_primary.granted != out_reference.granted {
                return Some(format!(
                    "`{event}`: {primary_name} {} while {reference_name} {}",
                    verdict(out_primary.granted),
                    verdict(out_reference.granted)
                ));
            }
            if pair.primary.fingerprint() != pair.reference.fingerprint() {
                return Some(format!(
                    "states diverged after `{event}` despite identical decisions"
                ));
            }
        }
    }
    None
}

fn verdict(granted: bool) -> &'static str {
    if granted {
        "granted"
    } else {
        "refused"
    }
}

fn root_pair(config: &DiffConfig) -> PairSpace {
    PairSpace {
        primary: World::new(&config.scenario),
        reference: World::new(&config.reference_scenario()),
        primary_policy: config.scenario.policy,
        reference_policy: config.reference,
        relation: config.relation,
    }
}

/// Replays `events` on fresh lockstep worlds; true if any step breaks
/// the relation.
fn mismatch_reproduces(config: &DiffConfig, events: &[CheckEvent]) -> bool {
    let mut pair = root_pair(config);
    events
        .iter()
        .any(|&event| check_pair(&mut pair, event).is_some())
}

/// Runs the lockstep differential exploration.
#[must_use]
pub fn run_differential(config: &DiffConfig) -> DiffReport {
    let engine_config = EngineConfig {
        depth: config.depth,
        threads: config.threads,
        symmetry: config.symmetry.then(|| {
            SymmetryGroup::of(&config.scenario)
                .meet(&SymmetryGroup::of(&config.reference_scenario()))
        }),
        deadline: config.budget.map(|budget| Instant::now() + budget),
        max_traced: config.max_findings,
    };
    let result = engine::explore(root_pair(config), &engine_config);

    let mut report = DiffReport {
        scenario: config.scenario,
        reference: config.reference,
        relation: config.relation,
        states_explored: result.states_explored,
        dedup_hits: result.dedup_hits,
        transitions: result.transitions,
        truncated: result.truncated,
        mismatches: 0,
        findings: Vec::new(),
    };
    for rec in result.hits {
        for detail in rec.hits {
            report.mismatches += 1;
            if report.findings.len() < config.max_findings {
                if let Some(trace) = &rec.trace {
                    report.findings.push(DiffFinding {
                        trace: trace.clone(),
                        detail,
                        shrunk: trace.clone(),
                    });
                }
            }
        }
    }
    for finding in &mut report.findings {
        finding.shrunk = ddmin(&finding.trace, |candidate| {
            mismatch_reproduces(config, candidate)
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odv_is_ldv_at_message_level() {
        let scenario = Scenario::new(Protocol::Odv, 3, 1).unwrap();
        let config = DiffConfig::new(scenario, Protocol::Ldv, Relation::Equivalent, 4);
        let report = run_differential(&config);
        assert!(report.holds(), "findings: {:?}", report.findings);
        assert!(report.states_explored > 1);
    }

    #[test]
    fn dv_grants_imply_ldv_grants() {
        let scenario = Scenario::new(Protocol::Dv, 3, 1).unwrap();
        let config = DiffConfig::new(scenario, Protocol::Ldv, Relation::GrantImplies, 4);
        let report = run_differential(&config);
        assert!(report.holds(), "findings: {:?}", report.findings);
    }

    #[test]
    fn mcv_domination_by_ldv_is_refuted() {
        // The textbook-sounding "MCV ⊆ LDV" is false: a repaired but
        // unrecovered copy counts for MCV's static majority but not for
        // LDV's shrunk partition. The checker must find (and shrink) a
        // witness at 4 sites within depth 6.
        let scenario = Scenario::new(Protocol::Mcv, 4, 1).unwrap();
        let config = DiffConfig::new(scenario, Protocol::Ldv, Relation::GrantImplies, 6);
        let report = run_differential(&config);
        assert!(!report.holds(), "MCV ⊆ LDV should be refuted");
        let finding = &report.findings[0];
        assert!(finding.shrunk.len() <= finding.trace.len());
        assert!(
            finding.shrunk.len() <= 6,
            "witness should shrink small, got {:?}",
            finding.shrunk
        );
    }

    #[test]
    fn parallel_and_symmetric_diff_agree_with_sequential() {
        let scenario = Scenario::new(Protocol::Odv, 3, 1).unwrap();
        let base = run_differential(&DiffConfig::new(
            scenario,
            Protocol::Ldv,
            Relation::Equivalent,
            4,
        ));
        let par = run_differential(
            &DiffConfig::new(scenario, Protocol::Ldv, Relation::Equivalent, 4).threads(4),
        );
        assert_eq!(base.states_explored, par.states_explored);
        assert_eq!(base.dedup_hits, par.dedup_hits);
        assert_eq!(base.transitions, par.transitions);
        assert_eq!(base.mismatches, par.mismatches);

        // ODV/LDV both carry the lexicographic tie-break, so the meet
        // group is the identity and symmetry-on must change nothing.
        let sym = run_differential(
            &DiffConfig::new(scenario, Protocol::Ldv, Relation::Equivalent, 4).symmetry(true),
        );
        assert_eq!(base.states_explored, sym.states_explored);
        assert_eq!(base.mismatches, sym.mismatches);
    }
}
