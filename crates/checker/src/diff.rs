//! Cross-policy differential oracle: lockstep exploration of two
//! policies under identical event schedules.
//!
//! Two relations are checked:
//!
//! * [`Relation::GrantImplies`] — every operation the primary policy
//!   grants, the reference grants too (grant-set inclusion under a
//!   shared history). The sound instance is **DV ⊆ LDV**: LDV is DV
//!   plus a tie-break, so it can only grant *more*.
//! * [`Relation::Equivalent`] — the policies take identical decisions
//!   and their clusters stay bit-identical (fingerprint equality).
//!   The sound instances are **ODV ≡ LDV** and **OTDV ≡ TDV**: at
//!   message level the optimistic/instantaneous distinction is about
//!   *when clients invoke operations*, which the event schedule already
//!   controls, so the rules coincide.
//!
//! The often-assumed third relation, **MCV ⊆ LDV**, is *false* — MCV
//! counts every reachable copy while LDV's shrunk partitions demand the
//! lineage's survivors, so a repaired-but-unrecovered copy lets MCV
//! grant where LDV refuses. The checker found and minimized a witness;
//! it is pinned as a corpus trace and documented in EXPERIMENTS.md
//! rather than asserted as an invariant.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use dynvote_replica::Protocol;

use crate::event::CheckEvent;
use crate::explore::enumerate_events;
use crate::scenario::{policy_name, Scenario};
use crate::shrink::ddmin;
use crate::world::World;

/// The relation a differential run asserts between primary and
/// reference policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// Primary grants ⟹ reference grants (grant-set inclusion).
    GrantImplies,
    /// Identical decisions and bit-identical cluster states.
    Equivalent,
}

/// One differential run: primary policy (from `scenario`) vs
/// `reference`, same sites/segments/depth.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Scenario of the *primary* policy.
    pub scenario: Scenario,
    /// The reference policy.
    pub reference: Protocol,
    /// The asserted relation.
    pub relation: Relation,
    /// Maximum number of events per path.
    pub depth: usize,
    /// Wall-clock budget; `None` is exhaustive.
    pub budget: Option<Duration>,
    /// At most this many counterexamples keep their traces.
    pub max_findings: usize,
}

impl DiffConfig {
    /// A default exhaustive configuration.
    #[must_use]
    pub fn new(
        scenario: Scenario,
        reference: Protocol,
        relation: Relation,
        depth: usize,
    ) -> DiffConfig {
        DiffConfig {
            scenario,
            reference,
            relation,
            depth,
            budget: None,
            max_findings: 4,
        }
    }

    fn reference_scenario(&self) -> Scenario {
        Scenario {
            policy: self.reference,
            ..self.scenario
        }
    }
}

/// One relation counterexample.
#[derive(Clone, Debug)]
pub struct DiffFinding {
    /// The events leading to (and including) the diverging step.
    pub trace: Vec<CheckEvent>,
    /// What diverged.
    pub detail: String,
    /// The delta-debugged minimal reproduction.
    pub shrunk: Vec<CheckEvent>,
}

/// The result of one differential run.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// The primary scenario.
    pub scenario: Scenario,
    /// The reference policy.
    pub reference: Protocol,
    /// The asserted relation.
    pub relation: Relation,
    /// Distinct lockstep states visited.
    pub states_explored: u64,
    /// Transitions landing on covered states.
    pub dedup_hits: u64,
    /// Total transitions applied.
    pub transitions: u64,
    /// Whether the budget truncated the run.
    pub truncated: bool,
    /// Total relation mismatches (not capped).
    pub mismatches: u64,
    /// Recorded counterexamples.
    pub findings: Vec<DiffFinding>,
}

impl DiffReport {
    /// Whether the relation held everywhere explored.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.mismatches == 0
    }
}

struct Pair {
    primary: World,
    reference: World,
}

impl Pair {
    fn fingerprint(&self) -> u64 {
        self.primary.fingerprint() ^ self.reference.fingerprint().rotate_left(17)
    }
}

/// Checks one event against the relation; `Some(detail)` on mismatch.
fn check_event(config: &DiffConfig, pair: &mut Pair, event: CheckEvent) -> Option<String> {
    let out_primary = pair.primary.apply(event);
    let out_reference = pair.reference.apply(event);
    let primary_name = policy_name(config.scenario.policy);
    let reference_name = policy_name(config.reference);
    match config.relation {
        Relation::GrantImplies => {
            if out_primary.granted && !out_reference.granted {
                return Some(format!(
                    "{primary_name} granted `{event}` but {reference_name} refused it \
                     ({:?})",
                    out_reference.refusal
                ));
            }
        }
        Relation::Equivalent => {
            if out_primary.granted != out_reference.granted {
                return Some(format!(
                    "`{event}`: {primary_name} {} while {reference_name} {}",
                    verdict(out_primary.granted),
                    verdict(out_reference.granted)
                ));
            }
            if pair.primary.fingerprint() != pair.reference.fingerprint() {
                return Some(format!(
                    "states diverged after `{event}` despite identical decisions"
                ));
            }
        }
    }
    None
}

fn verdict(granted: bool) -> &'static str {
    if granted {
        "granted"
    } else {
        "refused"
    }
}

/// Replays `events` on fresh lockstep worlds; true if any step breaks
/// the relation.
fn mismatch_reproduces(config: &DiffConfig, events: &[CheckEvent]) -> bool {
    let mut pair = Pair {
        primary: World::new(&config.scenario),
        reference: World::new(&config.reference_scenario()),
    };
    events
        .iter()
        .any(|&event| check_event(config, &mut pair, event).is_some())
}

/// Runs the lockstep differential exploration.
#[must_use]
pub fn run_differential(config: &DiffConfig) -> DiffReport {
    let mut report = DiffReport {
        scenario: config.scenario,
        reference: config.reference,
        relation: config.relation,
        states_explored: 1,
        dedup_hits: 0,
        transitions: 0,
        truncated: false,
        mismatches: 0,
        findings: Vec::new(),
    };
    let root = Pair {
        primary: World::new(&config.scenario),
        reference: World::new(&config.reference_scenario()),
    };
    let deadline = config.budget.map(|b| Instant::now() + b);
    let mut seen: HashMap<u64, u8> = HashMap::new();
    seen.insert(root.fingerprint(), depth_u8(config.depth));
    let mut path = Vec::new();
    dfs(
        config,
        &root,
        config.depth,
        &deadline,
        &mut seen,
        &mut path,
        &mut report,
    );
    for finding in &mut report.findings {
        finding.shrunk = ddmin(&finding.trace, |candidate| {
            mismatch_reproduces(config, candidate)
        });
    }
    report
}

fn depth_u8(depth: usize) -> u8 {
    u8::try_from(depth.min(usize::from(u8::MAX))).expect("clamped")
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    config: &DiffConfig,
    pair: &Pair,
    depth_left: usize,
    deadline: &Option<Instant>,
    seen: &mut HashMap<u64, u8>,
    path: &mut Vec<CheckEvent>,
    report: &mut DiffReport,
) {
    if depth_left == 0 || report.truncated {
        return;
    }
    // The alphabet comes from the primary world; fault events keep the
    // two up-sets identical, so enumeration agrees between the worlds
    // even after their partition sets diverge.
    for event in enumerate_events(&pair.primary) {
        report.transitions += 1;
        if report.transitions & 0x3FF == 0 {
            if let Some(deadline) = deadline {
                if Instant::now() >= *deadline {
                    report.truncated = true;
                    return;
                }
            }
        }
        let mut child = Pair {
            primary: pair.primary.clone(),
            reference: pair.reference.clone(),
        };
        let mismatch = check_event(config, &mut child, event);
        path.push(event);
        if let Some(detail) = mismatch {
            report.mismatches += 1;
            if report.findings.len() < config.max_findings {
                report.findings.push(DiffFinding {
                    trace: path.clone(),
                    detail,
                    shrunk: path.clone(),
                });
            }
        } else {
            let fingerprint = child.fingerprint();
            let remaining = depth_u8(depth_left - 1);
            match seen.get(&fingerprint) {
                Some(&covered) if covered >= remaining => report.dedup_hits += 1,
                _ => {
                    seen.insert(fingerprint, remaining);
                    report.states_explored += 1;
                    dfs(config, &child, depth_left - 1, deadline, seen, path, report);
                }
            }
        }
        path.pop();
        if report.truncated {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odv_is_ldv_at_message_level() {
        let scenario = Scenario::new(Protocol::Odv, 3, 1).unwrap();
        let config = DiffConfig::new(scenario, Protocol::Ldv, Relation::Equivalent, 4);
        let report = run_differential(&config);
        assert!(report.holds(), "findings: {:?}", report.findings);
        assert!(report.states_explored > 1);
    }

    #[test]
    fn dv_grants_imply_ldv_grants() {
        let scenario = Scenario::new(Protocol::Dv, 3, 1).unwrap();
        let config = DiffConfig::new(scenario, Protocol::Ldv, Relation::GrantImplies, 4);
        let report = run_differential(&config);
        assert!(report.holds(), "findings: {:?}", report.findings);
    }

    #[test]
    fn mcv_domination_by_ldv_is_refuted() {
        // The textbook-sounding "MCV ⊆ LDV" is false: a repaired but
        // unrecovered copy counts for MCV's static majority but not for
        // LDV's shrunk partition. The checker must find (and shrink) a
        // witness at 4 sites within depth 6.
        let scenario = Scenario::new(Protocol::Mcv, 4, 1).unwrap();
        let config = DiffConfig::new(scenario, Protocol::Ldv, Relation::GrantImplies, 6);
        let report = run_differential(&config);
        assert!(!report.holds(), "MCV ⊆ LDV should be refuted");
        let finding = &report.findings[0];
        assert!(finding.shrunk.len() <= finding.trace.len());
        assert!(
            finding.shrunk.len() <= 6,
            "witness should shrink small, got {:?}",
            finding.shrunk
        );
    }
}
