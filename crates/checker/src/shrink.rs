//! Delta-debugging trace minimization (Zeller's `ddmin`).
//!
//! A counterexample trace found by depth-first search carries every
//! event of the path, most of which are incidental. `ddmin` removes
//! chunks of decreasing size, re-validating each candidate against a
//! *fresh replay* of the real cluster (the predicate), and finishes
//! with a single-event sweep, so the result is 1-minimal: removing any
//! one remaining event no longer reproduces the violation.

use crate::event::CheckEvent;

/// Minimizes `trace` against `reproduces`, which must hold for the
/// input trace (if it does not, the input is returned unchanged).
///
/// The result is 1-minimal with respect to event *removal*. Replays are
/// from scratch, so the predicate's verdict never depends on shrink
/// order.
pub fn ddmin<P: FnMut(&[CheckEvent]) -> bool>(
    trace: &[CheckEvent],
    mut reproduces: P,
) -> Vec<CheckEvent> {
    if trace.is_empty() || !reproduces(trace) {
        return trace.to_vec();
    }
    let mut current = trace.to_vec();
    let mut chunks = 2usize;
    while current.len() >= 2 {
        let chunk_len = current.len().div_ceil(chunks);
        let mut removed = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk_len).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && reproduces(&candidate) {
                current = candidate;
                chunks = chunks.saturating_sub(1).max(2);
                removed = true;
                // Restart the sweep on the reduced trace.
                start = 0;
            } else {
                start = end;
            }
        }
        if !removed {
            if chunks >= current.len() {
                break;
            }
            chunks = (chunks * 2).min(current.len());
        }
    }
    // Final single-event sweep to guarantee 1-minimality.
    let mut index = 0;
    while current.len() > 1 && index < current.len() {
        let mut candidate = current.clone();
        candidate.remove(index);
        if reproduces(&candidate) {
            current = candidate;
            index = 0;
        } else {
            index += 1;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use dynvote_types::SiteId;

    use super::*;

    fn event(index: usize) -> CheckEvent {
        CheckEvent::Crash(SiteId::new(index))
    }

    #[test]
    fn shrinks_to_the_embedded_kernel() {
        // The "violation" needs crash 2 and crash 5, in order — every
        // other event is noise.
        let trace: Vec<CheckEvent> = (0..8).map(event).collect();
        let shrunk = ddmin(&trace, |candidate| {
            let pos2 = candidate.iter().position(|&e| e == event(2));
            let pos5 = candidate.iter().position(|&e| e == event(5));
            matches!((pos2, pos5), (Some(a), Some(b)) if a < b)
        });
        assert_eq!(shrunk, vec![event(2), event(5)]);
    }

    #[test]
    fn result_is_one_minimal() {
        // Any 3 of the first 6 events reproduce: ddmin must land on
        // exactly 3, and no single removal may still reproduce.
        let trace: Vec<CheckEvent> = (0..6).map(event).collect();
        let mut replays = 0;
        let shrunk = ddmin(&trace, |candidate| {
            replays += 1;
            candidate.len() >= 3
        });
        assert_eq!(shrunk.len(), 3);
        assert!(replays > 0);
    }

    #[test]
    fn irreducible_trace_survives() {
        let trace: Vec<CheckEvent> = (0..4).map(event).collect();
        let original = trace.clone();
        let shrunk = ddmin(&trace, |candidate| candidate.len() == 4);
        assert_eq!(shrunk, original);
    }

    #[test]
    fn non_reproducing_input_is_returned_unchanged() {
        let trace: Vec<CheckEvent> = (0..3).map(event).collect();
        let shrunk = ddmin(&trace, |_| false);
        assert_eq!(shrunk, trace);
    }

    #[test]
    fn single_event_kernel() {
        let trace: Vec<CheckEvent> = (0..7).map(event).collect();
        let shrunk = ddmin(&trace, |candidate| candidate.contains(&event(3)));
        assert_eq!(shrunk, vec![event(3)]);
    }
}
