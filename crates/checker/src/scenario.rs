//! The checked configuration: policy × site count × segment count.

use dynvote_replica::{Cluster, ClusterBuilder, Protocol};
use dynvote_topology::{Network, NetworkBuilder};

/// Every policy the checker knows, in canonical report order.
pub const ALL_POLICIES: [Protocol; 6] = [
    Protocol::Mcv,
    Protocol::Dv,
    Protocol::Ldv,
    Protocol::Odv,
    Protocol::Tdv,
    Protocol::Otdv,
];

/// The canonical lowercase name of a policy (CLI values, trace files).
#[must_use]
pub fn policy_name(policy: Protocol) -> &'static str {
    match policy {
        Protocol::Mcv => "mcv",
        Protocol::Dv => "dv",
        Protocol::Ldv => "ldv",
        Protocol::Odv => "odv",
        Protocol::Tdv => "tdv",
        Protocol::Otdv => "otdv",
    }
}

/// Parses a canonical policy name.
#[must_use]
pub fn parse_policy(name: &str) -> Option<Protocol> {
    ALL_POLICIES.into_iter().find(|&p| policy_name(p) == name)
}

/// One small-scope configuration the checker explores: a policy running
/// on `sites` full copies spread over `segments` segments.
///
/// The topology is canonical: sites `0..sites` are split into segments
/// as evenly as possible, in index order, and consecutive segments are
/// chained by a bridge whose gateway is the last site of the earlier
/// segment. Every site holds a copy (gateways included), so the crash
/// alphabet already covers gateway loss — the organic way segments
/// disconnect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// The consistency protocol under check.
    pub policy: Protocol,
    /// Number of copy sites (`1..=16`).
    pub sites: usize,
    /// Number of segments (`1..=sites`, at most 4).
    pub segments: usize,
}

impl Scenario {
    /// A validated scenario.
    ///
    /// # Errors
    ///
    /// Returns a description of the bound that was violated. The bounds
    /// are the *library's* sanity limits; the small-scope bounds the
    /// tool advertises (≤5 sites, ≤3 segments) are enforced by the CLI.
    pub fn new(policy: Protocol, sites: usize, segments: usize) -> Result<Scenario, String> {
        if sites == 0 || sites > 16 {
            return Err(format!("sites must be in 1..=16, got {sites}"));
        }
        if segments == 0 || segments > 4 {
            return Err(format!("segments must be in 1..=4, got {segments}"));
        }
        if segments > sites {
            return Err(format!(
                "cannot spread {sites} sites over {segments} segments"
            ));
        }
        Ok(Scenario {
            policy,
            sites,
            segments,
        })
    }

    /// The scenario's canonical network.
    #[must_use]
    pub fn network(&self) -> Network {
        if self.segments == 1 {
            return Network::single_segment(self.sites);
        }
        const NAMES: [&str; 4] = ["a", "b", "c", "d"];
        let base = self.sites / self.segments;
        let extra = self.sites % self.segments;
        let mut builder = NetworkBuilder::new();
        let mut gateways = Vec::new();
        let mut start = 0;
        for (segment, name) in NAMES.iter().enumerate().take(self.segments) {
            let size = base + usize::from(segment < extra);
            builder = builder.segment(name, start..start + size);
            gateways.push(start + size - 1);
            start += size;
        }
        for segment in 0..self.segments - 1 {
            builder = builder.bridge(gateways[segment], NAMES[segment + 1]);
        }
        builder
            .build()
            .expect("canonical scenario topology is valid")
    }

    /// A fresh cluster for this scenario: every site holds a copy of
    /// the initial value `0` (write token zero).
    #[must_use]
    pub fn build_cluster(&self) -> Cluster<u64> {
        ClusterBuilder::new()
            .network(self.network())
            .copies(0..self.sites)
            .protocol(self.policy)
            .build_with_value(0)
    }
}

impl core::fmt::Display for Scenario {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} on {} sites / {} segment{}",
            policy_name(self.policy),
            self.sites,
            self.segments,
            if self.segments == 1 { "" } else { "s" }
        )
    }
}

#[cfg(test)]
mod tests {
    use dynvote_types::SiteSet;

    use super::*;

    #[test]
    fn bounds_are_enforced() {
        assert!(Scenario::new(Protocol::Odv, 0, 1).is_err());
        assert!(Scenario::new(Protocol::Odv, 17, 1).is_err());
        assert!(Scenario::new(Protocol::Odv, 4, 0).is_err());
        assert!(Scenario::new(Protocol::Odv, 4, 5).is_err());
        assert!(Scenario::new(Protocol::Odv, 2, 3).is_err());
        assert!(Scenario::new(Protocol::Odv, 4, 2).is_ok());
    }

    #[test]
    fn single_segment_network() {
        let s = Scenario::new(Protocol::Tdv, 4, 1).unwrap();
        let net = s.network();
        assert_eq!(net.segment_count(), 1);
        assert_eq!(net.sites(), SiteSet::first_n(4));
    }

    #[test]
    fn two_segments_split_evenly_and_chain() {
        let s = Scenario::new(Protocol::Otdv, 4, 2).unwrap();
        let net = s.network();
        assert_eq!(net.segment_count(), 2);
        // {0,1} | {2,3}, gateway S1 bridges to "b".
        let r = net.reachability(SiteSet::first_n(4));
        assert_eq!(r.groups().len(), 1, "bridge up: one group");
        let r = net.reachability(SiteSet::from_indices([0, 2, 3]));
        assert_eq!(r.groups().len(), 2, "gateway S1 down: segments split");
    }

    #[test]
    fn three_segments_on_five_sites() {
        let s = Scenario::new(Protocol::Tdv, 5, 3).unwrap();
        let net = s.network();
        assert_eq!(net.segment_count(), 3);
        // Sizes 2, 2, 1; all sites present; chain keeps it connected.
        assert_eq!(net.sites(), SiteSet::first_n(5));
        assert_eq!(net.reachability(SiteSet::first_n(5)).groups().len(), 1);
    }

    #[test]
    fn cluster_runs_the_declared_policy() {
        let s = Scenario::new(Protocol::Dv, 3, 1).unwrap();
        let cluster = s.build_cluster();
        assert_eq!(cluster.protocol(), Protocol::Dv);
        assert_eq!(cluster.copies(), SiteSet::first_n(3));
    }

    #[test]
    fn policy_names_roundtrip() {
        for policy in ALL_POLICIES {
            assert_eq!(parse_policy(policy_name(policy)), Some(policy));
        }
        assert_eq!(parse_policy("avc"), None);
    }
}
