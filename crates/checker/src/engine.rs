//! The shared exploration engine: layered breadth-first search with
//! work-stealing parallel expansion, sharded fingerprint deduplication,
//! and optional symmetry quotienting.
//!
//! Both the invariant checker ([`crate::explore`]) and the differential
//! checker ([`crate::diff`]) run on this engine; each provides a
//! [`Space`] (its notion of state, successor events, and terminal
//! hits).
//!
//! # Why layered BFS (and not parallel DFS)
//!
//! Deduplication uses *depth-left dominance*: a state revisited with
//! less remaining depth than a previous visit can only reach a subset
//! of what that visit covered, so it is skipped. Under DFS the same
//! state can be reached first with *less* depth-left and later with
//! more, forcing a re-expansion ("upgrade") whose bookkeeping depends
//! on visit order — which a parallel schedule does not preserve.
//! Layered BFS removes upgrades *by construction*: all states with
//! depth-left `D` are expanded before any state with `D - 1`, so the
//! first time a fingerprint is inserted is always its maximal-depth
//! visit, and every later encounter is dominated. Dominance then needs
//! no ordering argument at all — which is exactly what makes the
//! parallel run's state counts equal to the sequential run's (see
//! `tests/parallel_equivalence.rs`).
//!
//! # Determinism under work stealing
//!
//! Workers steal frontier slots from a shared atomic cursor, so *which*
//! worker expands a state — and which worker's insert wins when two
//! same-layer parents generate the same child — is scheduling noise.
//! The merge step erases it:
//!
//! * every generated child is recorded as a [`ChildRec`] keyed by its
//!   canonical generation coordinates `(job, event index)`;
//! * per fingerprint, the **canonical parent** is the minimum
//!   `(job, event index)` over all same-layer generators (the insert
//!   winner only contributes the state value);
//! * new states are appended to the arena and the next frontier in
//!   canonical-coordinate order, and terminal hits are sorted the same
//!   way.
//!
//! Totals, frontier order, parent pointers, and hit traces are
//! therefore identical for every thread count; only wall-clock-budget
//! truncation is machine-dependent (as it already was sequentially).
//!
//! # Budget under concurrency
//!
//! The wall clock is polled against a deadline every
//! [`crate::explore::BUDGET_POLL_MASK`]-masked transition of a *shared*
//! atomic transition counter, and expiry raises a shared flag that all
//! workers observe per transition — one slow worker cannot overrun the
//! deadline unobserved, and small layers cannot dodge the poll (the
//! counter never resets). After truncation the hits the workers already
//! produced are still recorded — so a truncated report is well-formed:
//! counts are consistent and every recorded hit has a replayable trace
//! — but the never-to-be-expanded next frontier is not built, and the
//! merge loop re-polls the deadline so it cannot overrun the budget on
//! a huge layer. What remains outside the deadline's reach is teardown:
//! freeing a multi-gigabyte frontier costs wall clock proportional to
//! the memory the run allocated, not to the budget.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::CheckEvent;
use crate::explore::BUDGET_POLL_MASK;
use crate::symmetry::SymmetryGroup;

/// A state space the engine can explore: cloneable states, a canonical
/// event enumeration, a step function whose non-empty result marks the
/// transition terminal, and a (possibly symmetry-quotiented)
/// fingerprint.
pub(crate) trait Space: Clone + Send + Sync {
    /// What a terminal transition yields (violations, mismatches, …).
    type Hit: Clone + Send;

    /// Applicable events, in canonical order.
    fn events(&self) -> Vec<CheckEvent>;

    /// Applies `event` in place. A non-empty result makes the resulting
    /// state terminal: it is recorded and never expanded or
    /// fingerprinted.
    fn step(&mut self, event: CheckEvent) -> Vec<Self::Hit>;

    /// The state's deduplication fingerprint — canonical under
    /// `symmetry` when one is supplied.
    fn fingerprint(&self, symmetry: Option<&SymmetryGroup>) -> u64;
}

/// Engine parameters, independent of the particular [`Space`].
pub(crate) struct EngineConfig {
    /// Maximum number of events per path.
    pub depth: usize,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Quotient fingerprints under this symmetry group.
    pub symmetry: Option<SymmetryGroup>,
    /// Wall-clock deadline; `None` explores exhaustively.
    pub deadline: Option<Instant>,
    /// At most this many hits keep their traces (all are counted).
    pub max_traced: usize,
}

/// One terminal transition, in canonical discovery order.
pub(crate) struct HitRec<H> {
    /// Everything the terminal step reported.
    pub hits: Vec<H>,
    /// The event path that reached the hit; `None` past `max_traced`.
    pub trace: Option<Vec<CheckEvent>>,
}

/// What an exploration returns.
pub(crate) struct EngineReport<H> {
    /// Distinct states visited (the root included).
    pub states_explored: u64,
    /// Transitions that landed on an already-covered state.
    pub dedup_hits: u64,
    /// Total transitions applied.
    pub transitions: u64,
    /// Whether the wall-clock budget truncated the search.
    pub truncated: bool,
    /// Terminal transitions, canonically ordered.
    pub hits: Vec<HitRec<H>>,
}

/// Clamps a depth to the `u8` the seen map stores.
pub(crate) fn depth_u8(depth: usize) -> u8 {
    u8::try_from(depth.min(usize::from(u8::MAX))).expect("clamped")
}

/// The fingerprint memo, sharded so concurrent workers rarely contend:
/// fingerprint → largest depth-left the state was seen with, with
/// insert-or-max semantics applied atomically under the shard lock.
pub(crate) struct ShardedSeen {
    shards: Vec<Mutex<HashMap<u64, u8>>>,
}

/// What a [`ShardedSeen::probe`] found.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Probe {
    /// First visit at a dominant depth — the caller owns expansion.
    New,
    /// Already seen *at the same depth-left* — a same-layer collision;
    /// the caller is a canonical-parent candidate but not the owner.
    Tied,
    /// Already seen with at least as much depth-left — skip.
    Covered,
}

impl ShardedSeen {
    const SHARDS: usize = 64;

    pub(crate) fn new() -> ShardedSeen {
        ShardedSeen {
            shards: (0..ShardedSeen::SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Records that `fingerprint` is being visited with `depth_left`
    /// remaining and classifies the visit. The max update is atomic
    /// with the read (both happen under the shard lock), so two
    /// concurrent visitors agree on exactly one `New` owner per
    /// (fingerprint, dominant depth).
    pub(crate) fn probe(&self, fingerprint: u64, depth_left: u8) -> Probe {
        let shard = (fingerprint ^ (fingerprint >> 32)) as usize % ShardedSeen::SHARDS;
        let mut map = self.shards[shard].lock().expect("seen shard poisoned");
        match map.get_mut(&fingerprint) {
            None => {
                map.insert(fingerprint, depth_left);
                Probe::New
            }
            Some(covered) if *covered == depth_left => Probe::Tied,
            Some(covered) if *covered > depth_left => Probe::Covered,
            Some(covered) => {
                // Unreachable under layered BFS (depth-left only ever
                // shrinks across layers); kept correct regardless.
                *covered = depth_left;
                Probe::New
            }
        }
    }

    /// Total distinct fingerprints recorded.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().expect("seen shard poisoned").len())
            .sum()
    }
}

/// A `CheckEvent` packed into one byte for the parent arena: 3-bit tag,
/// 5-bit argument (site index or partition index — both < 32 at the
/// checker's scope).
#[derive(Clone, Copy)]
struct PackedEvent(u8);

impl PackedEvent {
    fn pack(event: CheckEvent) -> PackedEvent {
        let (tag, arg) = match event {
            CheckEvent::Crash(site) => (0, site.index()),
            CheckEvent::Repair(site) => (1, site.index()),
            CheckEvent::Recover(site) => (2, site.index()),
            CheckEvent::Partition(index) => (3, index),
            CheckEvent::Heal => (4, 0),
            CheckEvent::Read(site) => (5, site.index()),
            CheckEvent::Write(site) => (6, site.index()),
        };
        debug_assert!(arg < 32, "packed event argument out of range");
        PackedEvent(((tag as u8) << 5) | (arg as u8 & 0x1F))
    }

    fn unpack(self) -> CheckEvent {
        let arg = usize::from(self.0 & 0x1F);
        match self.0 >> 5 {
            0 => CheckEvent::Crash(dynvote_types::SiteId::new(arg)),
            1 => CheckEvent::Repair(dynvote_types::SiteId::new(arg)),
            2 => CheckEvent::Recover(dynvote_types::SiteId::new(arg)),
            3 => CheckEvent::Partition(arg),
            4 => CheckEvent::Heal,
            5 => CheckEvent::Read(dynvote_types::SiteId::new(arg)),
            _ => CheckEvent::Write(dynvote_types::SiteId::new(arg)),
        }
    }
}

/// One arena entry: enough to reconstruct the event path to any
/// explored state (parent id + the event that produced it).
struct ArenaEntry {
    parent: u32,
    event: PackedEvent,
}

const NO_PARENT: u32 = u32::MAX;

/// One generated (non-terminal) child, keyed by canonical generation
/// coordinates. `state` is `Some` iff this record's probe owned the
/// seen-map insertion.
struct ChildRec<S> {
    fingerprint: u64,
    job: u32,
    event_idx: u16,
    event: CheckEvent,
    state: Option<S>,
}

/// One terminal transition as a worker saw it.
struct RawHit<H> {
    job: u32,
    event_idx: u16,
    event: CheckEvent,
    hits: Vec<H>,
}

/// Everything one worker produced over one layer.
struct WorkerOut<S: Space> {
    children: Vec<ChildRec<S>>,
    raw_hits: Vec<RawHit<S::Hit>>,
    dedup_old: u64,
}

/// Expands frontier slots stolen from `next_job` until the layer (or
/// the budget) is exhausted.
#[allow(clippy::too_many_arguments)]
fn expand_layer<S: Space>(
    frontier: &[(u32, S)],
    next_job: &AtomicUsize,
    seen: &ShardedSeen,
    depth_left: u8,
    symmetry: Option<&SymmetryGroup>,
    transitions: &AtomicU64,
    truncated: &AtomicBool,
    deadline: Option<Instant>,
) -> WorkerOut<S> {
    let mut out = WorkerOut {
        children: Vec::new(),
        raw_hits: Vec::new(),
        dedup_old: 0,
    };
    loop {
        let job = next_job.fetch_add(1, Ordering::Relaxed);
        if job >= frontier.len() || truncated.load(Ordering::Relaxed) {
            break;
        }
        let (_, state) = &frontier[job];
        for (event_idx, &event) in state.events().iter().enumerate() {
            let total = transitions.fetch_add(1, Ordering::Relaxed);
            if total & BUDGET_POLL_MASK == 0 {
                if let Some(deadline) = deadline {
                    if Instant::now() >= deadline {
                        truncated.store(true, Ordering::Relaxed);
                    }
                }
            }
            if truncated.load(Ordering::Relaxed) {
                break;
            }
            let mut child = state.clone();
            let hits = child.step(event);
            if !hits.is_empty() {
                // Terminal: record, never fingerprint or expand.
                out.raw_hits.push(RawHit {
                    job: u32::try_from(job).expect("frontier fits u32"),
                    event_idx: u16::try_from(event_idx).expect("alphabet fits u16"),
                    event,
                    hits,
                });
                continue;
            }
            let fingerprint = child.fingerprint(symmetry);
            match seen.probe(fingerprint, depth_left) {
                Probe::Covered => out.dedup_old += 1,
                owned => out.children.push(ChildRec {
                    fingerprint,
                    job: u32::try_from(job).expect("frontier fits u32"),
                    event_idx: u16::try_from(event_idx).expect("alphabet fits u16"),
                    event,
                    state: (owned == Probe::New).then_some(child),
                }),
            }
        }
    }
    out
}

/// Reconstructs the event path from the root to arena entry `id`.
fn path_of(arena: &[ArenaEntry], mut id: u32) -> Vec<CheckEvent> {
    let mut path = Vec::new();
    while id != NO_PARENT {
        let entry = &arena[id as usize];
        if entry.parent == NO_PARENT {
            break; // the root carries no event
        }
        path.push(entry.event.unpack());
        id = entry.parent;
    }
    path.reverse();
    path
}

/// Explores `root` to `config.depth`, layer by layer.
pub(crate) fn explore<S: Space>(root: S, config: &EngineConfig) -> EngineReport<S::Hit> {
    let symmetry = config.symmetry.as_ref();
    let threads = config.threads.max(1);
    let seen = ShardedSeen::new();
    seen.probe(root.fingerprint(symmetry), depth_u8(config.depth));

    let mut arena = vec![ArenaEntry {
        parent: NO_PARENT,
        event: PackedEvent(0),
    }];
    let transitions = AtomicU64::new(0);
    let truncated = AtomicBool::new(false);
    let mut states_explored: u64 = 1;
    let mut dedup_hits: u64 = 0;
    let mut hit_recs: Vec<HitRec<S::Hit>> = Vec::new();
    let mut frontier: Vec<(u32, S)> = vec![(0, root)];

    let mut depth_left = config.depth;
    while depth_left > 0 && !frontier.is_empty() && !truncated.load(Ordering::Relaxed) {
        let child_depth = depth_u8(depth_left - 1);
        let next_job = AtomicUsize::new(0);
        let workers = threads.min(frontier.len()).max(1);
        let mut outs: Vec<WorkerOut<S>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        expand_layer(
                            &frontier,
                            &next_job,
                            &seen,
                            child_depth,
                            symmetry,
                            &transitions,
                            &truncated,
                            config.deadline,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("engine worker panicked"))
                .collect()
        });

        // Deterministic merge: canonical-coordinate order erases the
        // worker schedule.
        let mut children = Vec::new();
        let mut raw_hits = Vec::new();
        for out in &mut outs {
            dedup_hits += out.dedup_old;
            children.append(&mut out.children);
            raw_hits.append(&mut out.raw_hits);
        }
        children.sort_by_key(|c| (c.job, c.event_idx));
        raw_hits.sort_by_key(|r| (r.job, r.event_idx));

        // Once the budget has expired, inserting the surviving children
        // into the arena buys nothing — the next layer will never be
        // expanded — and on a large layer it can cost multiples of the
        // budget itself. Skip straight to recording this layer's hits.
        // The merge below also re-polls the deadline periodically so a
        // merge that *starts* inside the budget cannot overrun it
        // unboundedly either.
        let merge_children = !truncated.load(Ordering::Relaxed);

        let mut state_of: HashMap<u64, S> = HashMap::new();
        if merge_children {
            for child in &mut children {
                if let Some(state) = child.state.take() {
                    state_of.insert(child.fingerprint, state);
                }
            }
        }
        let mut next_frontier: Vec<(u32, S)> = Vec::new();
        let mut placed: HashMap<u64, ()> = HashMap::new();
        for (merged, child) in children.iter().enumerate() {
            if !merge_children {
                break;
            }
            if merged & 0x1FFF == 0 {
                if let Some(deadline) = config.deadline {
                    if Instant::now() >= deadline {
                        truncated.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            if placed.contains_key(&child.fingerprint) {
                dedup_hits += 1; // same-layer collision
                continue;
            }
            let Some(state) = state_of.remove(&child.fingerprint) else {
                dedup_hits += 1; // depth-clamp corner: treat as covered
                continue;
            };
            placed.insert(child.fingerprint, ());
            let id = u32::try_from(arena.len()).expect("arena fits u32");
            arena.push(ArenaEntry {
                parent: frontier[child.job as usize].0,
                event: PackedEvent::pack(child.event),
            });
            states_explored += 1;
            next_frontier.push((id, state));
        }
        for raw in raw_hits {
            let trace = (hit_recs.len() < config.max_traced).then(|| {
                let mut path = path_of(&arena, frontier[raw.job as usize].0);
                path.push(raw.event);
                path
            });
            hit_recs.push(HitRec {
                hits: raw.hits,
                trace,
            });
        }

        frontier = next_frontier;
        depth_left -= 1;
    }

    EngineReport {
        states_explored,
        dedup_hits,
        transitions: transitions.load(Ordering::Relaxed),
        truncated: truncated.load(Ordering::Relaxed),
        hits: hit_recs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_event_roundtrips() {
        for event in [
            CheckEvent::Crash(dynvote_types::SiteId::new(7)),
            CheckEvent::Repair(dynvote_types::SiteId::new(0)),
            CheckEvent::Recover(dynvote_types::SiteId::new(15)),
            CheckEvent::Partition(3),
            CheckEvent::Heal,
            CheckEvent::Read(dynvote_types::SiteId::new(2)),
            CheckEvent::Write(dynvote_types::SiteId::new(31)),
        ] {
            assert_eq!(PackedEvent::pack(event).unpack(), event);
        }
    }

    #[test]
    fn sharded_seen_dominance() {
        let seen = ShardedSeen::new();
        assert_eq!(seen.probe(42, 5), Probe::New);
        assert_eq!(seen.probe(42, 5), Probe::Tied);
        assert_eq!(seen.probe(42, 4), Probe::Covered);
        assert_eq!(seen.probe(42, 6), Probe::New, "deeper visit re-owns");
        assert_eq!(seen.probe(42, 5), Probe::Covered);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen.probe(7, 1), Probe::New);
        assert_eq!(seen.len(), 2);
    }
}
