//! CLI for the bounded exhaustive model checker.
//!
//! ```text
//! dynvote-check [--policy NAME|all] [--sites N] [--segments K]
//!               [--depth D] [--budget-secs S] [--max-findings M]
//!               [--threads N] [--symmetry on|off] [--bench-out PATH]
//!               [--deny-hazards] [--no-shrink] [--trace-dir DIR]
//!               [--diff dv-ldv|odv-ldv|otdv-tdv|mcv-ldv]
//! ```
//!
//! Exit status: `0` clean, `1` real violations (or known hazards under
//! `--deny-hazards`, or a broken differential relation), `2` usage
//! error.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use dynvote_check::{
    policy_name, run, run_differential, CheckConfig, DiffConfig, Expectation, Relation, Report,
    Scenario, TraceFile, ALL_POLICIES,
};
use dynvote_replica::Protocol;

struct Args {
    policies: Vec<Protocol>,
    sites: usize,
    segments: usize,
    depth: usize,
    budget: Option<Duration>,
    max_findings: usize,
    deny_hazards: bool,
    shrink: bool,
    trace_dir: Option<String>,
    diff: Option<(Protocol, Protocol, Relation)>,
    threads: usize,
    symmetry: bool,
    bench_out: Option<String>,
}

const USAGE: &str = "usage: dynvote-check [--policy NAME|all] [--sites N (<=8)] \
[--segments K (<=3)] [--depth D] [--budget-secs S] [--max-findings M] \
[--threads N] [--symmetry on|off] [--bench-out PATH] \
[--deny-hazards] [--no-shrink] [--trace-dir DIR] [--diff dv-ldv|odv-ldv|otdv-tdv|mcv-ldv]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        policies: ALL_POLICIES.to_vec(),
        sites: 4,
        segments: 1,
        depth: 6,
        budget: None,
        max_findings: 8,
        deny_hazards: false,
        shrink: true,
        trace_dir: None,
        diff: None,
        threads: 1,
        symmetry: false,
        bench_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--policy" => {
                let name = value("--policy")?;
                if name == "all" {
                    args.policies = ALL_POLICIES.to_vec();
                } else {
                    let policy = dynvote_check::parse_policy(&name)
                        .ok_or_else(|| format!("unknown policy {name:?}\n{USAGE}"))?;
                    args.policies = vec![policy];
                }
            }
            "--sites" => {
                args.sites = value("--sites")?
                    .parse()
                    .map_err(|_| format!("bad --sites value\n{USAGE}"))?;
            }
            "--segments" => {
                args.segments = value("--segments")?
                    .parse()
                    .map_err(|_| format!("bad --segments value\n{USAGE}"))?;
            }
            "--depth" => {
                args.depth = value("--depth")?
                    .parse()
                    .map_err(|_| format!("bad --depth value\n{USAGE}"))?;
            }
            "--budget-secs" => {
                let secs: u64 = value("--budget-secs")?
                    .parse()
                    .map_err(|_| format!("bad --budget-secs value\n{USAGE}"))?;
                args.budget = Some(Duration::from_secs(secs));
            }
            "--max-findings" => {
                args.max_findings = value("--max-findings")?
                    .parse()
                    .map_err(|_| format!("bad --max-findings value\n{USAGE}"))?;
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|_| format!("bad --threads value\n{USAGE}"))?;
                if args.threads == 0 {
                    return Err(format!("--threads must be at least 1\n{USAGE}"));
                }
            }
            "--symmetry" => {
                args.symmetry = match value("--symmetry")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(format!("--symmetry wants on|off, got {other:?}\n{USAGE}"))
                    }
                };
            }
            "--bench-out" => args.bench_out = Some(value("--bench-out")?),
            "--deny-hazards" => args.deny_hazards = true,
            "--no-shrink" => args.shrink = false,
            "--trace-dir" => args.trace_dir = Some(value("--trace-dir")?),
            "--diff" => {
                args.diff = Some(match value("--diff")?.as_str() {
                    "dv-ldv" => (Protocol::Dv, Protocol::Ldv, Relation::GrantImplies),
                    "odv-ldv" => (Protocol::Odv, Protocol::Ldv, Relation::Equivalent),
                    "otdv-tdv" => (Protocol::Otdv, Protocol::Tdv, Relation::Equivalent),
                    // Known-false relation, kept for demonstration: MCV
                    // counts repaired-but-unrecovered copies that LDV's
                    // shrunk partitions exclude (see EXPERIMENTS.md).
                    "mcv-ldv" => (Protocol::Mcv, Protocol::Ldv, Relation::GrantImplies),
                    other => return Err(format!("unknown --diff relation {other:?}\n{USAGE}")),
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    // The small-scope bounds the tool is calibrated for; 8 sites /
    // 3 segments is the paper's Figure 8 topology, reachable since the
    // parallel + symmetry engine landed.
    if args.sites > 8 {
        return Err(format!(
            "--sites is capped at 8, got {}\n{USAGE}",
            args.sites
        ));
    }
    if args.segments > 3 {
        return Err(format!(
            "--segments is capped at 3, got {}\n{USAGE}",
            args.segments
        ));
    }
    Ok(args)
}

fn write_trace_artifacts(dir: &str, report: &Report) {
    if let Err(error) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir}: {error}");
        return;
    }
    for (index, finding) in report.findings.iter().enumerate() {
        let file = TraceFile {
            scenario: report.scenario,
            expect: Expectation::Violation {
                invariant: finding.violation.invariant.to_string(),
                known_hazard: finding.known_hazard,
            },
            events: finding.shrunk.clone(),
        };
        let path = format!(
            "{dir}/{}-{}-{index}.trace",
            policy_name(report.scenario.policy),
            finding.violation.invariant
        );
        if let Err(error) = std::fs::write(&path, file.render()) {
            eprintln!("warning: cannot write {path}: {error}");
        } else {
            eprintln!("wrote {path}");
        }
    }
}

fn run_diff(args: &Args, primary: Protocol, reference: Protocol, relation: Relation) -> ExitCode {
    let scenario = match Scenario::new(primary, args.sites, args.segments) {
        Ok(s) => s,
        Err(error) => {
            eprintln!("{error}");
            return ExitCode::from(2);
        }
    };
    let mut config = DiffConfig::new(scenario, reference, relation, args.depth)
        .threads(args.threads)
        .symmetry(args.symmetry);
    config.budget = args.budget;
    config.max_findings = args.max_findings;
    let report = run_differential(&config);
    println!(
        "diff {} vs {} ({}): {} states, {} dedup, {} transitions{}",
        policy_name(primary),
        policy_name(reference),
        match relation {
            Relation::GrantImplies => "grant-implies",
            Relation::Equivalent => "equivalent",
        },
        report.states_explored,
        report.dedup_hits,
        report.transitions,
        if report.truncated {
            " [truncated by budget]"
        } else {
            ""
        },
    );
    if report.holds() {
        println!("relation holds everywhere explored");
        return ExitCode::SUCCESS;
    }
    println!("relation BROKEN: {} mismatches", report.mismatches);
    for finding in &report.findings {
        println!("\n  {}", finding.detail);
        println!("  minimized witness ({} events):", finding.shrunk.len());
        for event in &finding.shrunk {
            println!("    {event}");
        }
    }
    ExitCode::FAILURE
}

struct BenchRow {
    policy: String,
    states: u64,
    dedup: u64,
    transitions: u64,
    secs: f64,
    real: u64,
    hazards: u64,
    truncated: bool,
}

fn rate(states: u64, secs: f64) -> u64 {
    if secs > 0.0 {
        (states as f64 / secs) as u64
    } else {
        0
    }
}

/// Renders the sweep as a BENCH_*.json document. The headline
/// `states_per_sec` comes first so CI's `grep -o ... | head -1`
/// baseline pattern picks up the aggregate, not a per-policy row.
fn write_bench(path: &str, args: &Args, rows: &[BenchRow]) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let total_states: u64 = rows.iter().map(|r| r.states).sum();
    let total_transitions: u64 = rows.iter().map(|r| r.transitions).sum();
    let total_secs: f64 = rows.iter().map(|r| r.secs).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"generated_by\": \"cargo run --release -p dynvote-check --bin dynvote-check -- --bench-out\",\n",
    );
    out.push_str(&format!("  \"machine\": {{ \"cores\": {cores} }},\n"));
    out.push_str(&format!(
        "  \"scenario\": {{ \"sites\": {}, \"segments\": {}, \"depth\": {}, \"threads\": {}, \"symmetry\": {} }},\n",
        args.sites, args.segments, args.depth, args.threads, args.symmetry
    ));
    out.push_str(&format!(
        "  \"total\": {{ \"states\": {}, \"transitions\": {}, \"secs\": {:.3}, \"states_per_sec\": {} }},\n",
        total_states,
        total_transitions,
        total_secs,
        rate(total_states, total_secs)
    ));
    out.push_str("  \"per_policy\": [\n");
    for (index, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"policy\": \"{}\", \"states\": {}, \"dedup\": {}, \"transitions\": {}, \
             \"secs\": {:.3}, \"states_per_sec\": {}, \"real\": {}, \"hazards\": {}, \
             \"truncated\": {} }}{}\n",
            row.policy,
            row.states,
            row.dedup,
            row.transitions,
            row.secs,
            rate(row.states, row.secs),
            row.real,
            row.hazards,
            row.truncated,
            if index + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(error) = std::fs::write(path, out) {
        eprintln!("warning: cannot write {path}: {error}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(error) => {
            eprintln!("{error}");
            return ExitCode::from(2);
        }
    };

    if let Some((primary, reference, relation)) = args.diff {
        return run_diff(&args, primary, reference, relation);
    }

    println!(
        "dynvote-check: depth {}, {} sites, {} segment(s), {} thread(s), symmetry {}",
        args.depth,
        args.sites,
        args.segments,
        args.threads,
        if args.symmetry { "on" } else { "off" }
    );
    let mut rows: Vec<BenchRow> = Vec::new();
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>6} {:>7}",
        "policy", "states", "dedup", "transitions", "real", "hazards"
    );
    let mut failed = false;
    for &policy in &args.policies {
        let scenario = match Scenario::new(policy, args.sites, args.segments) {
            Ok(s) => s,
            Err(error) => {
                eprintln!("{error}");
                return ExitCode::from(2);
            }
        };
        let mut config = CheckConfig::new(scenario, args.depth)
            .threads(args.threads)
            .symmetry(args.symmetry);
        config.budget = args.budget;
        config.max_findings = args.max_findings;
        config.shrink = args.shrink;
        let started = Instant::now();
        let report = run(&config);
        let secs = started.elapsed().as_secs_f64();
        rows.push(BenchRow {
            policy: policy_name(policy).to_string(),
            states: report.states_explored,
            dedup: report.dedup_hits,
            transitions: report.transitions,
            secs,
            real: report.real_violations,
            hazards: report.known_hazards,
            truncated: report.truncated,
        });
        println!(
            "{:<6} {:>10} {:>10} {:>12} {:>6} {:>7}{}",
            policy_name(policy),
            report.states_explored,
            report.dedup_hits,
            report.transitions,
            report.real_violations,
            report.known_hazards,
            if report.truncated {
                " [truncated by budget]"
            } else {
                ""
            },
        );
        for finding in &report.findings {
            println!(
                "\n  {} [{}]: {}",
                finding.violation.invariant,
                if finding.known_hazard {
                    "known hazard"
                } else {
                    "VIOLATION"
                },
                finding.violation.detail
            );
            println!("  minimized trace ({} events):", finding.shrunk.len());
            for event in &finding.shrunk {
                println!("    {event}");
            }
            println!("\n  regression test:\n");
            for line in finding.regression.lines() {
                println!("  {line}");
            }
        }
        if let Some(dir) = &args.trace_dir {
            if !report.findings.is_empty() {
                write_trace_artifacts(dir, &report);
            }
        }
        if report.real_violations > 0 || (args.deny_hazards && report.known_hazards > 0) {
            failed = true;
        }
    }
    if let Some(path) = &args.bench_out {
        write_bench(path, &args, &rows);
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
