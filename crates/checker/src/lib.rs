#![warn(missing_docs)]

//! `dynvote-check`: a bounded exhaustive model checker for the six
//! voting policies, with shrinking counterexample traces.
//!
//! The checker drives the *real* message-level implementation — the
//! [`dynvote_replica::Cluster`] with its actual READ / WRITE / RECOVER
//! code paths — through every interleaving of a small event alphabet
//! (site crash, site repair, explicit RECOVER, segment-respecting
//! partition, heal, READ, WRITE) up to a configurable depth, on
//! small-scope configurations (≤5 sites, ≤3 segments). It is not a
//! re-model: a bug in the cluster is a bug the checker can reach.
//!
//! The pieces:
//!
//! * [`Scenario`] — policy × sites × segments, with a canonical
//!   topology;
//! * [`CheckEvent`] / [`World`] — the enumerable alphabet and the
//!   explored state (real cluster + write-token ground truth);
//! * [`run`] / [`run_with_factory`] — memoized depth-first exploration
//!   ([`explore`]), deduplicating states by
//!   [`dynvote_replica::Cluster::fingerprint`] with depth-left
//!   dominance;
//! * invariants — the pluggable [`dynvote_core::check::StateInvariant`]
//!   suite (rival majorities, monotone counters) plus history oracles
//!   (stale reads, duplicate versions, lineage forks, the write-token
//!   oracle);
//! * [`ddmin`] / [`trace`] — delta-debugged 1-minimal traces,
//!   replayable text files, and generated `#[test]` regression
//!   snippets;
//! * [`diff`] — lockstep cross-policy differential checking
//!   (DV ⊆ LDV, ODV ≡ LDV, OTDV ≡ TDV).
//!
//! Violations under TDV/OTDV that stem from the documented
//! sequential-claim hazard are *classified* as known hazards and
//! reported separately instead of failing the run (see DESIGN.md); the
//! `--deny-hazards` CLI flag turns them back into failures.

pub mod diff;
pub(crate) mod engine;
pub mod event;
pub mod explore;
pub mod scenario;
pub mod shrink;
pub mod symmetry;
pub mod trace;
pub mod world;

pub use diff::{run_differential, DiffConfig, DiffFinding, DiffReport, Relation};
pub use event::CheckEvent;
pub use explore::{enumerate_events, run, run_with_factory, CheckConfig, Finding, Report};
pub use scenario::{parse_policy, policy_name, Scenario, ALL_POLICIES};
pub use shrink::ddmin;
pub use symmetry::{canonical_fingerprint, SymView, SymmetryGroup};
pub use trace::{replay, verify, Expectation, TraceFile};
pub use world::{
    apply_and_detect, classify_known_hazard, default_suite, groups_of, state_table_of, World,
};
