//! Replayable counterexample traces: a small text format, a replayer,
//! and a regression-test code generator.
//!
//! A trace file pins one scenario, one expectation, and one event
//! sequence:
//!
//! ```text
//! # free-form comment lines
//! policy: tdv
//! sites: 2
//! segments: 1
//! expect: lineage-fork
//! hazard: true
//! --
//! crash 0
//! read 1
//! crash 1
//! repair 0
//! recover 0
//! ```
//!
//! `expect` is either `none` (the replay must stay violation-free) or
//! an invariant name (`stale-read`, `duplicate-version`,
//! `lineage-fork`, `token-oracle`, `at-most-one-majority`,
//! `monotone-counters`); `hazard` (default `false`) states the expected
//! classification. [`verify`] replays the events through the real
//! cluster and checks the expectation — the corpus under the
//! repository's `tests/traces/` is replayed this way on every test run.

use dynvote_core::check::Violation;

use crate::event::CheckEvent;
use crate::scenario::{parse_policy, policy_name, Scenario};
use crate::world::{apply_and_detect, classify_known_hazard, default_suite, World};

/// What a trace expects its replay to surface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// The replay must surface no violation at all.
    None,
    /// The replay must surface this invariant, with this hazard
    /// classification, at some step.
    Violation {
        /// The expected invariant name.
        invariant: String,
        /// The expected classification.
        known_hazard: bool,
    },
}

/// One parsed trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceFile {
    /// The scenario the events run against.
    pub scenario: Scenario,
    /// The expected replay outcome.
    pub expect: Expectation,
    /// The event sequence.
    pub events: Vec<CheckEvent>,
}

impl TraceFile {
    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line or missing
    /// header field.
    pub fn parse(text: &str) -> Result<TraceFile, String> {
        let mut policy = None;
        let mut sites = None;
        let mut segments = None;
        let mut expect_raw: Option<String> = None;
        let mut hazard = false;
        let mut events = Vec::new();
        let mut in_body = false;
        for (number, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "--" {
                in_body = true;
                continue;
            }
            if in_body {
                events.push(
                    CheckEvent::parse(line).map_err(|e| format!("line {}: {e}", number + 1))?,
                );
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| format!("line {}: expected `key: value`", number + 1))?;
            let value = value.trim();
            match key.trim() {
                "policy" => {
                    policy =
                        Some(parse_policy(value).ok_or_else(|| {
                            format!("line {}: unknown policy {value:?}", number + 1)
                        })?);
                }
                "sites" => {
                    sites =
                        Some(value.parse::<usize>().map_err(|_| {
                            format!("line {}: bad sites count {value:?}", number + 1)
                        })?);
                }
                "segments" => {
                    segments = Some(value.parse::<usize>().map_err(|_| {
                        format!("line {}: bad segments count {value:?}", number + 1)
                    })?);
                }
                "expect" => expect_raw = Some(value.to_string()),
                "hazard" => {
                    hazard = value
                        .parse::<bool>()
                        .map_err(|_| format!("line {}: bad hazard flag {value:?}", number + 1))?;
                }
                other => return Err(format!("line {}: unknown key {other:?}", number + 1)),
            }
        }
        let scenario = Scenario::new(
            policy.ok_or("missing `policy:` header")?,
            sites.ok_or("missing `sites:` header")?,
            segments.ok_or("missing `segments:` header")?,
        )?;
        let expect = match expect_raw.as_deref() {
            None => return Err("missing `expect:` header".to_string()),
            Some("none") => Expectation::None,
            Some(invariant) => Expectation::Violation {
                invariant: invariant.to_string(),
                known_hazard: hazard,
            },
        };
        Ok(TraceFile {
            scenario,
            expect,
            events,
        })
    }

    /// Renders the text format (parseable by [`TraceFile::parse`]).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# dynvote-check minimized trace\n");
        out.push_str(&format!("policy: {}\n", policy_name(self.scenario.policy)));
        out.push_str(&format!("sites: {}\n", self.scenario.sites));
        out.push_str(&format!("segments: {}\n", self.scenario.segments));
        match &self.expect {
            Expectation::None => out.push_str("expect: none\n"),
            Expectation::Violation {
                invariant,
                known_hazard,
            } => {
                out.push_str(&format!("expect: {invariant}\n"));
                if *known_hazard {
                    out.push_str("hazard: true\n");
                }
            }
        }
        out.push_str("--\n");
        for event in &self.events {
            out.push_str(&format!("{event}\n"));
        }
        out
    }
}

/// Replays the trace and returns every violation each step surfaced,
/// with its hazard classification.
#[must_use]
pub fn replay(file: &TraceFile) -> Vec<(Violation, bool)> {
    let suite = default_suite();
    let mut world = World::new(&file.scenario);
    let mut all = Vec::new();
    for &event in &file.events {
        let was_forked = world.forked();
        let found = apply_and_detect(&mut world, &suite, event);
        let now_forked = world.forked();
        for violation in found {
            let hazard =
                classify_known_hazard(file.scenario.policy, was_forked, now_forked, &violation);
            all.push((violation, hazard));
        }
    }
    all
}

/// Replays the trace and checks its expectation.
///
/// # Errors
///
/// Returns a human-readable mismatch description.
pub fn verify(file: &TraceFile) -> Result<(), String> {
    let surfaced = replay(file);
    match &file.expect {
        Expectation::None => {
            if let Some((violation, _)) = surfaced.first() {
                return Err(format!("expected a clean replay, got: {violation}"));
            }
        }
        Expectation::Violation {
            invariant,
            known_hazard,
        } => {
            let hit = surfaced
                .iter()
                .any(|(v, hazard)| v.invariant == invariant.as_str() && *hazard == *known_hazard);
            if !hit {
                let got: Vec<String> = surfaced
                    .iter()
                    .map(|(v, h)| format!("{} (hazard: {h})", v.invariant))
                    .collect();
                return Err(format!(
                    "expected {invariant} (hazard: {known_hazard}), replay surfaced: [{}]",
                    got.join(", ")
                ));
            }
        }
    }
    Ok(())
}

/// Generates a ready-to-paste `#[test]` reproducing a violation.
#[must_use]
pub fn regression_snippet(
    scenario: &Scenario,
    events: &[CheckEvent],
    invariant: &str,
    known_hazard: bool,
) -> String {
    let mut body = String::new();
    for event in events {
        let constructor = match event {
            CheckEvent::Crash(s) => format!("CheckEvent::Crash(SiteId::new({}))", s.index()),
            CheckEvent::Repair(s) => format!("CheckEvent::Repair(SiteId::new({}))", s.index()),
            CheckEvent::Recover(s) => format!("CheckEvent::Recover(SiteId::new({}))", s.index()),
            CheckEvent::Partition(i) => format!("CheckEvent::Partition({i})"),
            CheckEvent::Heal => "CheckEvent::Heal".to_string(),
            CheckEvent::Read(s) => format!("CheckEvent::Read(SiteId::new({}))", s.index()),
            CheckEvent::Write(s) => format!("CheckEvent::Write(SiteId::new({}))", s.index()),
        };
        body.push_str(&format!("        {constructor},\n"));
    }
    let test_name = format!(
        "regression_{}_{}",
        policy_name(scenario.policy),
        invariant.replace('-', "_")
    );
    format!(
        r#"#[test]
fn {test_name}() {{
    use dynvote_check::{{apply_and_detect, default_suite, CheckEvent, Scenario, World}};
    use dynvote_replica::Protocol;
    use dynvote_types::SiteId;

    // {hazard_note}
    let scenario = Scenario::new(Protocol::{protocol:?}, {sites}, {segments}).unwrap();
    let suite = default_suite();
    let mut world = World::new(&scenario);
    let events = [
{body}    ];
    let mut surfaced = Vec::new();
    for event in events {{
        surfaced.extend(apply_and_detect(&mut world, &suite, event));
    }}
    assert!(
        surfaced.iter().any(|v| v.invariant == "{invariant}"),
        "expected {invariant}, replay surfaced {{surfaced:?}}"
    );
}}
"#,
        hazard_note = if known_hazard {
            "Known topological sequential-claim hazard (see DESIGN.md)."
        } else {
            "Real invariant violation."
        },
        protocol = scenario.policy,
        sites = scenario.sites,
        segments = scenario.segments,
    )
}

#[cfg(test)]
mod tests {
    use dynvote_replica::Protocol;
    use dynvote_types::SiteId;

    use super::*;

    fn fork_trace() -> TraceFile {
        TraceFile {
            scenario: Scenario::new(Protocol::Tdv, 2, 1).unwrap(),
            expect: Expectation::Violation {
                invariant: "lineage-fork".to_string(),
                known_hazard: true,
            },
            events: vec![
                CheckEvent::Crash(SiteId::new(0)),
                CheckEvent::Read(SiteId::new(1)),
                CheckEvent::Crash(SiteId::new(1)),
                CheckEvent::Repair(SiteId::new(0)),
                CheckEvent::Recover(SiteId::new(0)),
            ],
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let file = fork_trace();
        let text = file.render();
        assert_eq!(TraceFile::parse(&text), Ok(file));
    }

    #[test]
    fn fork_trace_verifies() {
        verify(&fork_trace()).unwrap();
    }

    #[test]
    fn expectation_mismatch_is_reported() {
        let mut file = fork_trace();
        file.scenario.policy = Protocol::Ldv; // LDV refuses the claim
        let err = verify(&file).unwrap_err();
        assert!(err.contains("expected lineage-fork"), "{err}");

        let clean = TraceFile {
            scenario: Scenario::new(Protocol::Ldv, 2, 1).unwrap(),
            expect: Expectation::None,
            events: fork_trace().events,
        };
        verify(&clean).unwrap();
    }

    #[test]
    fn parse_rejects_malformed_headers() {
        assert!(
            TraceFile::parse("policy: xyz\nsites: 2\nsegments: 1\nexpect: none\n--\n").is_err()
        );
        assert!(TraceFile::parse("sites: 2\nsegments: 1\nexpect: none\n--\n").is_err());
        assert!(TraceFile::parse("policy: dv\nsites: 2\nsegments: 1\n--\n").is_err());
        assert!(TraceFile::parse(
            "policy: dv\nsites: 2\nsegments: 1\nexpect: none\n--\nexplode 1\n"
        )
        .is_err());
    }

    #[test]
    fn snippet_mentions_the_invariant_and_events() {
        let file = fork_trace();
        let snippet = regression_snippet(&file.scenario, &file.events, "lineage-fork", true);
        assert!(snippet.contains("fn regression_tdv_lineage_fork()"));
        assert!(snippet.contains("CheckEvent::Recover(SiteId::new(0))"));
        assert!(snippet.contains("sequential-claim hazard"));
        assert!(snippet.contains("Protocol::Tdv"));
    }
}
