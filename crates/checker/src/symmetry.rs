//! Symmetry reduction: canonical fingerprints that quotient out
//! permutations of interchangeable sites.
//!
//! Sites within one segment that hold equal votes (every copy in the
//! checker's scenarios carries one vote) and equal ⟨o, v, P⟩ state are
//! *interchangeable*: relabeling them maps reachable states onto
//! reachable states and violations onto violations of the same
//! invariant. The exploration engine therefore deduplicates states by a
//! **canonical fingerprint** — the minimum plain fingerprint over every
//! admissible relabeling — so one representative per symmetry orbit is
//! explored instead of the whole orbit.
//!
//! Admissible relabelings ([`SymmetryGroup`]) are the permutations that
//! fix everything the *dynamics* can distinguish structurally:
//!
//! * sites only move **within their segment** (topological counting and
//!   the partition alphabet are segment-shaped);
//! * **gateway** sites never move (losing a gateway disconnects
//!   segments, so a gateway is observably different from its segment
//!   peers);
//! * witness and non-copy sites never move (they hold different vote
//!   weight by construction).
//!
//! The canonicalization is *orbit-invariant by construction*: a
//! label-free signature is computed per site (two refinement rounds
//! over liveness, pending votes, ⟨o, v⟩, data, and P-set/commit-log
//! membership patterns), sites are sorted into their segment's slots by
//! signature, and all orderings of signature-tied sites are enumerated
//! — the minimum fingerprint over those relabeled worlds is the
//! canonical form. For two views `w` and `ρ(w)` (ρ admissible) the
//! candidate sets coincide (`π′∘ρ` ranges over exactly the
//! signature-sorted relabelings of `w` as `π′` ranges over those of
//! `ρ(w)`), hence equal canonical fingerprints; the property test in
//! `tests/symmetry_props.rs` exercises exactly this identity.
//!
//! # Soundness and the lexicon (why eligibility is policy-aware)
//!
//! Structural interchangeability is necessary but **not sufficient**:
//! the relabeling must also commute with every choice the *decision
//! rule* makes by site identity. The lexicographic tie-break
//! (`dynvote_core::Lexicon`, a fixed total order consulted on even
//! splits) never commutes with a non-identity relabeling, and the
//! failure is not a corner case — it is the checker's bread and butter:
//!
//! > Two sites `a >ₗ b`, state `w` = "only `a` up", `w' = swap(w)` =
//! > "only `b` up". From `w`, a write ties on `P = {a, b}` and is
//! > **granted** (`max({a,b}) = a ∈ Q`); from `w'` the mirrored write
//! > is **refused**. Merging `w` with `w'` therefore drops either a
//! > granting branch or a refusing branch — and the TDV lineage-fork
//! > kernel lives exactly on those branches.
//!
//! Since any two pool sites can end up as a reachable `{a, b}`
//! tie, *every* non-identity relabeling mis-predicts some future for a
//! rule with a lexicographic tie-break. (TLC documents the same
//! restriction for symmetry sets used under `CHOOSE`.) So
//! [`SymmetryGroup::of`] grants non-trivial pools only where the rule
//! is site-symmetric:
//!
//! * **DV** (`Rule::dv()`): ties *fail* for everyone, and the
//!   `Q.min()` representative is behaviour-irrelevant because Q members
//!   agree on ⟨o, v, P⟩ — the quotient is exact;
//! * **MCV**: static majorities are cardinality-only; the one
//!   site-identity choice (the designated tie-break site,
//!   `Lexicon::max_of(copies)`) is pinned by excluding it from its
//!   pool — exact again;
//! * **LDV / ODV / TDV / OTDV**: the rule consults the lexicon on
//!   ties, so the group degenerates to the identity and `--symmetry on`
//!   is a sound no-op. The structural pools remain available as
//!   [`SymmetryGroup::structural`] for testing the canonicalization
//!   function itself.
//!
//! `tests/symmetry_props.rs` locks both halves down: canonical
//! fingerprints are invariant under random admissible relabelings of
//! random views (any pools), and symmetry-on never reports fewer
//! distinct violations than symmetry-off on small random scenarios.

use dynvote_types::{SiteId, SiteSet};

use crate::scenario::Scenario;

/// The admissible relabelings of one scenario: per-segment pools of
/// interchangeable-candidate sites, with gateways (and any non-copy
/// site) pinned.
#[derive(Clone, Debug)]
pub struct SymmetryGroup {
    /// Number of addressable sites (`0..sites`).
    sites: usize,
    /// Eligible sites per segment, ascending site order.
    pools: Vec<Vec<SiteId>>,
    /// Sites no admissible permutation may move.
    fixed: SiteSet,
}

impl SymmetryGroup {
    /// The admissible relabelings of `scenario` — topology *and* policy
    /// aware (see the module docs): full segment pools for DV, segment
    /// pools minus the designated tie-break site for MCV, and the
    /// identity group for the lexicographic policies, whose tie-break
    /// commutes with no non-trivial relabeling.
    #[must_use]
    pub fn of(scenario: &Scenario) -> SymmetryGroup {
        use dynvote_replica::Protocol;
        match scenario.policy {
            Protocol::Dv => SymmetryGroup::structural(scenario, SiteSet::EMPTY),
            Protocol::Mcv => {
                let copies = SiteSet::first_n(scenario.sites);
                let designated = dynvote_core::Lexicon::default().max_of(copies);
                SymmetryGroup::structural(
                    scenario,
                    designated.map_or(SiteSet::EMPTY, SiteSet::singleton),
                )
            }
            Protocol::Ldv | Protocol::Odv | Protocol::Tdv | Protocol::Otdv => {
                SymmetryGroup::trivial(scenario.sites)
            }
        }
    }

    /// The *structural* relabelings of `scenario`'s canonical topology
    /// (segment-preserving, gateway-fixing, plus `pinned` extra fixed
    /// sites) — ignoring the policy's tie-break. Sound as a state
    /// quotient only for site-symmetric rules; [`SymmetryGroup::of`]
    /// applies the policy filter. Public so the property tests can
    /// exercise the canonicalization on every topology.
    #[must_use]
    pub fn structural(scenario: &Scenario, pinned: SiteSet) -> SymmetryGroup {
        let network = scenario.network();
        let copies = SiteSet::first_n(scenario.sites);
        let gateways = network.gateways() | pinned;
        let mut pools = Vec::new();
        let mut movable = SiteSet::EMPTY;
        let mut seen_segments = Vec::new();
        for site in copies.iter() {
            let Some(segment) = network.segment_of(site) else {
                continue;
            };
            if seen_segments.contains(&segment) {
                continue;
            }
            seen_segments.push(segment);
            let eligible = (network.segment_members(segment) & copies).difference(gateways);
            if eligible.len() >= 2 {
                movable |= eligible;
                pools.push(eligible.iter().collect());
            }
        }
        SymmetryGroup {
            sites: scenario.sites,
            pools,
            fixed: copies.difference(movable),
        }
    }

    /// The largest group admissible under *both* `self` and `other`:
    /// pairwise pool intersections, everything else fixed. This is the
    /// sound group for lockstep differential states, where one
    /// relabeling acts on both policies' worlds at once.
    #[must_use]
    pub fn meet(&self, other: &SymmetryGroup) -> SymmetryGroup {
        let sites = self.sites.max(other.sites);
        let mut pools = Vec::new();
        let mut movable = SiteSet::EMPTY;
        for mine in &self.pools {
            let mine_set = SiteSet::from_indices(mine.iter().map(|s| s.index()));
            for theirs in &other.pools {
                let theirs_set = SiteSet::from_indices(theirs.iter().map(|s| s.index()));
                let both = mine_set & theirs_set;
                if both.len() >= 2 {
                    movable |= both;
                    pools.push(both.iter().collect());
                }
            }
        }
        SymmetryGroup {
            sites,
            pools,
            fixed: SiteSet::first_n(sites).difference(movable),
        }
    }

    /// A group with no admissible relabeling but the identity.
    #[must_use]
    pub fn trivial(sites: usize) -> SymmetryGroup {
        SymmetryGroup {
            sites,
            pools: Vec::new(),
            fixed: SiteSet::first_n(sites),
        }
    }

    /// Sites no admissible permutation may move.
    #[must_use]
    pub fn fixed(&self) -> SiteSet {
        self.fixed
    }

    /// The per-segment pools of interchangeable-candidate sites.
    #[must_use]
    pub fn pools(&self) -> &[Vec<SiteId>] {
        &self.pools
    }

    /// Whether `map` (old index → new index, identity-padded) is an
    /// admissible relabeling: a bijection moving sites only within
    /// their pool.
    #[must_use]
    pub fn admits(&self, map: &[usize]) -> bool {
        if map.len() < self.sites {
            return false;
        }
        for fixed in self.fixed.iter() {
            if map[fixed.index()] != fixed.index() {
                return false;
            }
        }
        for pool in &self.pools {
            let mut image: Vec<usize> = pool.iter().map(|s| map[s.index()]).collect();
            image.sort_unstable();
            let expected: Vec<usize> = pool.iter().map(|s| s.index()).collect();
            if image != expected {
                return false;
            }
        }
        true
    }
}

/// Everything a state contributes to its (plain or canonical)
/// fingerprint, extracted into site-indexed plain data so permutations
/// can act on it directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymView {
    /// Number of addressable sites.
    pub sites: usize,
    /// The up-set.
    pub up: SiteSet,
    /// Index of the forced canonical partition, if any. Canonical
    /// partitions are segment-shaped, so admissible permutations fix
    /// the *index* (each group maps onto itself).
    pub forced: Option<usize>,
    /// Per-site protocol-visible state, indexed by site index.
    pub nodes: Vec<NodeView>,
    /// The invariant monitor's commit log, sorted by operation number.
    pub commits: Vec<(u64, SiteSet)>,
    /// The written-version multiset, sorted by version.
    pub versions: Vec<(u64, u64)>,
    /// Monitor scalars: latest written version, violation count.
    pub monitor: (u64, u64),
    /// Site-free world bookkeeping (write tokens, oracle counters).
    pub scalars: [u64; 3],
}

/// One site's contribution to the fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeView {
    /// Whether the site participates at all (holds a copy).
    pub participant: bool,
    /// Liveness.
    pub up: bool,
    /// Whether the site holds an outstanding vote.
    pub pending: bool,
    /// Operation number `o_i`.
    pub op: u64,
    /// Version number `v_i`.
    pub version: u64,
    /// Partition set `P_i`.
    pub partition: SiteSet,
    /// The data (write token) stored at the copy.
    pub value: u64,
}

impl SymView {
    /// Applies an admissible relabeling to the view — pure data
    /// permutation, used by the invariance property tests and by the
    /// canonicalization itself (implicitly, via permuted hashing).
    #[must_use]
    pub fn permuted(&self, map: &[usize]) -> SymView {
        let mut nodes = vec![
            NodeView {
                participant: false,
                up: false,
                pending: false,
                op: 0,
                version: 0,
                partition: SiteSet::EMPTY,
                value: 0,
            };
            self.nodes.len()
        ];
        for (old, node) in self.nodes.iter().enumerate() {
            let mut moved = *node;
            moved.partition = permute_set(node.partition, map);
            nodes[map[old]] = moved;
        }
        SymView {
            sites: self.sites,
            up: permute_set(self.up, map),
            forced: self.forced,
            nodes,
            commits: self
                .commits
                .iter()
                .map(|&(op, parts)| (op, permute_set(parts, map)))
                .collect(),
            versions: self.versions.clone(),
            monitor: self.monitor,
            scalars: self.scalars,
        }
    }

    /// The view's plain (identity-relabeling) fingerprint.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fingerprint_under(self, IDENTITY[..self.nodes.len()].as_ref())
    }
}

/// The identity relabeling, long enough for any addressable site.
const IDENTITY: [usize; dynvote_types::MAX_SITES] = {
    let mut id = [0usize; dynvote_types::MAX_SITES];
    let mut i = 0;
    while i < dynvote_types::MAX_SITES {
        id[i] = i;
        i += 1;
    }
    id
};

/// Applies `map` to every member of `set`.
#[must_use]
pub fn permute_set(set: SiteSet, map: &[usize]) -> SiteSet {
    let mut out = SiteSet::EMPTY;
    for site in set.iter() {
        out.insert(SiteId::new(map[site.index()]));
    }
    out
}

/// Hashes `view` as relabeled by `map` (old index → new index) without
/// materializing the permuted view: sites are visited in *new*-index
/// order and every site set is remapped on the fly.
fn fingerprint_under(view: &SymView, map: &[usize]) -> u64 {
    use std::hash::{Hash, Hasher};

    let n = view.nodes.len();
    let mut inverse = [0usize; dynvote_types::MAX_SITES];
    for (old, &new) in map.iter().enumerate().take(n) {
        inverse[new] = old;
    }

    let mut h = dynvote_core::Fnv64::new();
    permute_set(view.up, map).bits().hash(&mut h);
    match view.forced {
        None => 0u8.hash(&mut h),
        Some(index) => {
            1u8.hash(&mut h);
            index.hash(&mut h);
        }
    }
    for (new, &old) in inverse.iter().enumerate().take(n) {
        let node = &view.nodes[old];
        (
            new,
            node.participant,
            node.up,
            node.pending,
            node.op,
            node.version,
            permute_set(node.partition, map).bits(),
            node.value,
        )
            .hash(&mut h);
    }
    for &(op, parts) in &view.commits {
        (op, permute_set(parts, map).bits()).hash(&mut h);
    }
    for entry in &view.versions {
        entry.hash(&mut h);
    }
    view.monitor.hash(&mut h);
    view.scalars.hash(&mut h);
    h.finish()
}

/// Label-free per-site signatures: two refinement rounds, equivariant
/// under every admissible relabeling (no component mentions a movable
/// site's index).
fn signatures(views: &[&SymView], group: &SymmetryGroup) -> Vec<u64> {
    let n = group.sites;
    let fixed = group.fixed;
    let mut round1 = vec![0u64; n];
    for (slot, sig) in round1.iter_mut().enumerate() {
        let site = SiteId::new(slot);
        let mut acc = 0u64;
        for (v, view) in views.iter().enumerate() {
            let node = &view.nodes[slot];
            let mut commit_pattern = 0u64;
            for &(op, parts) in &view.commits {
                commit_pattern = commit_pattern.wrapping_add(dynvote_core::fingerprint_of(&(
                    op,
                    parts.contains(site),
                    parts.len(),
                    (parts & fixed).bits(),
                )));
            }
            acc = acc
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(dynvote_core::fingerprint_of(&(
                    v,
                    node.participant,
                    node.up,
                    node.pending,
                    node.op,
                    node.version,
                    node.value,
                    node.partition.len(),
                    node.partition.contains(site),
                    (node.partition & fixed).bits(),
                    view.up.contains(site),
                    commit_pattern,
                )));
        }
        *sig = acc;
    }
    // Round 2: fold in the (order-free) multiset of relations to every
    // other site, tagged with that site's round-1 signature.
    let mut round2 = vec![0u64; n];
    for (slot, sig) in round2.iter_mut().enumerate() {
        let site = SiteId::new(slot);
        let mut acc = round1[slot];
        for (other_slot, &other_sig) in round1.iter().enumerate().take(n) {
            let other = SiteId::new(other_slot);
            let mut fold = 0u64;
            for view in views {
                fold = fold.wrapping_add(dynvote_core::fingerprint_of(&(
                    other_sig,
                    view.nodes[other_slot].partition.contains(site),
                    view.nodes[slot].partition.contains(other),
                )));
            }
            acc = acc.wrapping_add(fold);
        }
        *sig = acc;
    }
    round2
}

/// The canonical fingerprint of one or more lockstep views under
/// `group`: the minimum combined fingerprint over every admissible
/// signature-sorted relabeling. Multiple views (the differential
/// checker's policy pairs) are relabeled by the *same* permutation and
/// combined exactly like the plain pair fingerprint
/// (`a ^ b.rotate_left(17)`).
#[must_use]
pub fn canonical_fingerprint(views: &[&SymView], group: &SymmetryGroup) -> u64 {
    debug_assert!(!views.is_empty());
    let combine = |map: &[usize]| -> u64 {
        let mut acc = 0u64;
        for (i, view) in views.iter().enumerate() {
            acc ^= fingerprint_under(view, map).rotate_left(17 * i as u32);
        }
        acc
    };
    if group.pools.is_empty() {
        return combine(&IDENTITY[..group.sites]);
    }

    let sigs = signatures(views, group);

    // Target order per pool: the pool's own slots (ascending), filled
    // by the pool's sites sorted by signature; signature ties keep all
    // their orderings as candidates.
    let mut map = [0usize; dynvote_types::MAX_SITES];
    for (i, slot) in IDENTITY.iter().enumerate().take(group.sites) {
        map[i] = *slot;
    }
    // tie_runs: per pool, the signature-sorted member list plus the
    // boundaries of equal-signature runs.
    let mut pools_sorted: Vec<Vec<SiteId>> = Vec::with_capacity(group.pools.len());
    for pool in &group.pools {
        let mut sorted = pool.clone();
        sorted.sort_by_key(|s| sigs[s.index()]);
        pools_sorted.push(sorted);
    }

    let mut best = u64::MAX;
    enumerate(
        &pools_sorted,
        &sigs,
        group,
        0,
        0,
        &mut map,
        &mut |map: &[usize]| {
            let fp = combine(map);
            if fp < best {
                best = fp;
            }
        },
    );
    best
}

/// Recursively assigns each pool's signature-sorted sites to the pool's
/// slots, branching over every ordering of signature-tied runs, and
/// calls `visit` with each completed relabeling.
fn enumerate(
    pools: &[Vec<SiteId>],
    sigs: &[u64],
    group: &SymmetryGroup,
    pool_idx: usize,
    pos: usize,
    map: &mut [usize; dynvote_types::MAX_SITES],
    visit: &mut dyn FnMut(&[usize]),
) {
    if pool_idx == pools.len() {
        visit(&map[..group.sites]);
        return;
    }
    let sorted = &pools[pool_idx];
    if pos == sorted.len() {
        enumerate(pools, sigs, group, pool_idx + 1, 0, map, visit);
        return;
    }
    // The run of signature-tied sites starting at `pos`.
    let sig = sigs[sorted[pos].index()];
    let mut end = pos + 1;
    while end < sorted.len() && sigs[sorted[end].index()] == sig {
        end += 1;
    }
    // Slots for this run: the pool's slots at positions pos..end. Pool
    // slots are the pool members' own indices, ascending.
    let slots: Vec<usize> = group.pools[pool_idx][pos..end]
        .iter()
        .map(|s| s.index())
        .collect();
    let mut members: Vec<SiteId> = sorted[pos..end].to_vec();
    permute_run(&mut members, &slots, 0, map, &mut |map| {
        enumerate(pools, sigs, group, pool_idx, end, map, visit);
    });
}

/// All assignments of `members` to `slots` (Heap-style in-place
/// enumeration over prefix swaps).
fn permute_run(
    members: &mut [SiteId],
    slots: &[usize],
    at: usize,
    map: &mut [usize; dynvote_types::MAX_SITES],
    next: &mut dyn FnMut(&mut [usize; dynvote_types::MAX_SITES]),
) {
    if at == slots.len() {
        next(map);
        return;
    }
    for i in at..members.len() {
        members.swap(at, i);
        map[members[at].index()] = slots[at];
        permute_run(members, slots, at + 1, map, next);
        members.swap(at, i);
    }
    // Restore identity-ish entries is unnecessary: every completed
    // assignment overwrites all run members before `next` fires.
}

#[cfg(test)]
mod tests {
    use dynvote_replica::Protocol;

    use super::*;
    use crate::event::CheckEvent;
    use crate::world::World;

    #[test]
    fn group_pins_gateways_and_respects_segments() {
        // Figure 8: 8 sites over 3 segments {0,1,2} {3,4,5} {6,7};
        // gateways 2 and 5 chain the segments.
        let scenario = Scenario::new(Protocol::Dv, 8, 3).unwrap();
        let group = SymmetryGroup::of(&scenario);
        let pools: Vec<Vec<usize>> = group
            .pools()
            .iter()
            .map(|p| p.iter().map(|s| s.index()).collect())
            .collect();
        assert_eq!(pools, vec![vec![0, 1], vec![3, 4], vec![6, 7]]);
        assert!(group.fixed().contains(SiteId::new(2)));
        assert!(group.fixed().contains(SiteId::new(5)));

        // Swapping within a pool is admissible; across pools is not.
        let mut swap01 = IDENTITY[..8].to_vec();
        swap01.swap(0, 1);
        assert!(group.admits(&swap01));
        let mut swap03 = IDENTITY[..8].to_vec();
        swap03.swap(0, 3);
        assert!(!group.admits(&swap03));
        let mut move_gateway = IDENTITY[..8].to_vec();
        move_gateway.swap(0, 2);
        assert!(!group.admits(&move_gateway));
    }

    #[test]
    fn single_segment_pools_every_copy() {
        let scenario = Scenario::new(Protocol::Dv, 4, 1).unwrap();
        let group = SymmetryGroup::of(&scenario);
        assert_eq!(group.pools().len(), 1);
        assert_eq!(group.pools()[0].len(), 4);
        assert!(group.fixed().is_empty());
    }

    #[test]
    fn eligibility_is_policy_aware() {
        // MCV pins the designated tie-break site; the lexicographic
        // policies get the identity group (module docs: the tie-break
        // commutes with no non-trivial relabeling).
        let mcv = SymmetryGroup::of(&Scenario::new(Protocol::Mcv, 4, 1).unwrap());
        let designated = dynvote_core::Lexicon::default()
            .max_of(SiteSet::first_n(4))
            .unwrap();
        assert!(mcv.fixed().contains(designated));
        assert_eq!(mcv.pools().len(), 1);
        assert_eq!(mcv.pools()[0].len(), 3);

        for policy in [Protocol::Ldv, Protocol::Odv, Protocol::Tdv, Protocol::Otdv] {
            let group = SymmetryGroup::of(&Scenario::new(policy, 4, 1).unwrap());
            assert!(group.pools().is_empty(), "{policy:?} must stay identity");
        }
    }

    #[test]
    fn canonical_fingerprint_merges_mirror_crashes() {
        // crash 0 and crash 1 reach distinct plain fingerprints but the
        // same symmetry orbit on a fresh single-segment world.
        let scenario = Scenario::new(Protocol::Dv, 3, 1).unwrap();
        let group = SymmetryGroup::of(&scenario);
        let mut a = World::new(&scenario);
        let mut b = World::new(&scenario);
        a.apply(CheckEvent::Crash(dynvote_types::SiteId::new(0)));
        b.apply(CheckEvent::Crash(dynvote_types::SiteId::new(1)));
        assert_ne!(a.fingerprint(), b.fingerprint());
        let va = a.sym_view();
        let vb = b.sym_view();
        assert_eq!(
            canonical_fingerprint(&[&va], &group),
            canonical_fingerprint(&[&vb], &group),
        );
    }

    #[test]
    fn canonical_fingerprint_keeps_distinct_states_apart() {
        // A written world and a fresh world must never merge.
        let scenario = Scenario::new(Protocol::Dv, 3, 1).unwrap();
        let group = SymmetryGroup::of(&scenario);
        let fresh = World::new(&scenario);
        let mut written = World::new(&scenario);
        written.apply(CheckEvent::Write(dynvote_types::SiteId::new(0)));
        assert_ne!(
            canonical_fingerprint(&[&fresh.sym_view()], &group),
            canonical_fingerprint(&[&written.sym_view()], &group),
        );
    }

    #[test]
    fn permuted_view_has_equal_canonical_fingerprint() {
        // Structural pools on a TDV world: the canonicalization is a
        // pure function of the view, invariant for ANY pools — only its
        // use as a state quotient is policy-restricted.
        let scenario = Scenario::new(Protocol::Tdv, 4, 1).unwrap();
        let group = SymmetryGroup::structural(&scenario, SiteSet::EMPTY);
        let mut world = World::new(&scenario);
        for event in [
            CheckEvent::Crash(dynvote_types::SiteId::new(0)),
            CheckEvent::Write(dynvote_types::SiteId::new(2)),
            CheckEvent::Crash(dynvote_types::SiteId::new(3)),
        ] {
            world.apply(event);
        }
        let view = world.sym_view();
        let mut map = IDENTITY[..4].to_vec();
        map.swap(1, 2);
        map.swap(0, 3);
        assert!(group.admits(&map));
        let permuted = view.permuted(&map);
        assert_ne!(view, permuted, "the relabeling must actually move data");
        assert_eq!(
            canonical_fingerprint(&[&view], &group),
            canonical_fingerprint(&[&permuted], &group),
        );
    }
}
