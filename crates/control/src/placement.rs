//! Placement policies: how shards map onto sites.
//!
//! Two policies ship:
//!
//! * [`Placement::Ring`] — shard `k` lands on `replicas` consecutive
//!   sites starting at `k mod sites` (coordinator first). Spreads both
//!   copies *and* coordinator duty evenly, which is what gives a
//!   multi-shard fleet parallel quorum rounds.
//! * [`Placement::Paper`] — shard `k` takes the copy set of the
//!   paper's configuration `A + (k mod 8)` (Table 3's eight placements
//!   on the Figure 8 network). Needs a fleet of ≥ 8 sites; it turns
//!   the availability study's placements into live per-shard layouts.

use dynvote_availability::config::ALL_CONFIGS;

use crate::map::ShardSpec;

/// A per-shard placement policy (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// `replicas` consecutive sites starting at `shard mod sites`.
    Ring {
        /// Copies per shard (clamped to the fleet size).
        replicas: usize,
    },
    /// The paper's configurations A–H, cycled over shards.
    Paper,
}

impl Placement {
    /// Parses the `--shard-placement` flag dialect: `ring:R` (or just
    /// `ring`, defaulting to 3 replicas) and `paper`.
    #[must_use]
    pub fn parse(text: &str) -> Option<Placement> {
        match text {
            "paper" => Some(Placement::Paper),
            "ring" => Some(Placement::Ring { replicas: 3 }),
            other => {
                let replicas = other.strip_prefix("ring:")?.parse::<usize>().ok()?;
                (replicas >= 1).then_some(Placement::Ring { replicas })
            }
        }
    }

    /// The stable token this policy round-trips through flags as.
    #[must_use]
    pub fn token(&self) -> String {
        match self {
            Placement::Ring { replicas } => format!("ring:{replicas}"),
            Placement::Paper => "paper".to_string(),
        }
    }

    /// Builds the per-shard placements for `shards` shards over a fleet
    /// of `sites` sites (site indices `0..sites`).
    ///
    /// # Errors
    ///
    /// A human-readable reason when the policy cannot place on this
    /// fleet (paper placements need ≥ 8 sites; a ring needs ≥ 1).
    pub fn build(&self, shards: usize, sites: usize) -> Result<Vec<ShardSpec>, String> {
        if sites == 0 || shards == 0 {
            return Err("placement needs at least one site and one shard".to_string());
        }
        match self {
            Placement::Ring { replicas } => {
                let width = (*replicas).min(sites);
                Ok((0..shards)
                    .map(|shard| ShardSpec {
                        placement: (0..width).map(|i| (shard + i) % sites).collect(),
                    })
                    .collect())
            }
            Placement::Paper => {
                if sites < 8 {
                    return Err(format!(
                        "paper placements are the Figure 8 configurations A-H and need 8 sites; this fleet has {sites}"
                    ));
                }
                Ok((0..shards)
                    .map(|shard| {
                        let config = ALL_CONFIGS[shard % ALL_CONFIGS.len()];
                        ShardSpec {
                            // Paper sites are 1-based; the fleet is 0-based.
                            placement: config.paper_sites.iter().map(|&s| s - 1).collect(),
                        }
                    })
                    .collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_spreads_coordinators() {
        let specs = Placement::Ring { replicas: 3 }.build(4, 4).unwrap();
        let coordinators: Vec<usize> = specs.iter().map(ShardSpec::coordinator).collect();
        assert_eq!(coordinators, vec![0, 1, 2, 3]);
        assert_eq!(specs[3].placement, vec![3, 0, 1]);
    }

    #[test]
    fn ring_clamps_to_the_fleet() {
        let specs = Placement::Ring { replicas: 5 }.build(2, 3).unwrap();
        assert!(specs.iter().all(|s| s.placement.len() == 3));
    }

    #[test]
    fn paper_cycles_configurations_a_through_h() {
        let specs = Placement::Paper.build(9, 8).unwrap();
        // Configuration A is paper sites {1, 2, 4} → 0-based {0, 1, 3}.
        assert_eq!(specs[0].placement, vec![0, 1, 3]);
        assert_eq!(specs[8].placement, specs[0].placement);
        assert!(Placement::Paper.build(2, 4).is_err());
    }

    #[test]
    fn flag_dialect_round_trips() {
        for token in ["ring:2", "ring:5", "paper"] {
            let policy = Placement::parse(token).unwrap();
            assert_eq!(policy.token(), token);
        }
        assert_eq!(
            Placement::parse("ring"),
            Some(Placement::Ring { replicas: 3 })
        );
        assert_eq!(Placement::parse("ring:0"), None);
        assert_eq!(Placement::parse("hash"), None);
    }
}
