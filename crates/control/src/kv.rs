//! Codec for the replicated value each shard group votes on.
//!
//! A shard's single replicated object is an ordered `key → bytes` map,
//! so one quorum round (one COMMIT, one fsync) can carry a whole batch
//! of keyed writes. The encoding is length-prefixed and *total*: every
//! byte is accounted for, and any truncation, trailing garbage, or
//! invalid UTF-8 key decodes to `None` rather than a partial map.
//!
//! Layout: `u32 entry count`, then per entry `u16 key len, key bytes
//! (UTF-8), u32 value len, value bytes`. All integers big-endian, to
//! match the wire protocol's dialect.

use std::collections::BTreeMap;

/// Encodes a KV map into the shard group's replicated value.
#[must_use]
pub fn encode_kv(map: &BTreeMap<String, Vec<u8>>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + map.len() * 8);
    out.extend_from_slice(
        &u32::try_from(map.len())
            .expect("kv map entry count fits u32")
            .to_be_bytes(),
    );
    for (key, value) in map {
        let key_len = u16::try_from(key.len()).expect("kv key fits u16 length prefix");
        out.extend_from_slice(&key_len.to_be_bytes());
        out.extend_from_slice(key.as_bytes());
        let value_len = u32::try_from(value.len()).expect("kv value fits u32 length prefix");
        out.extend_from_slice(&value_len.to_be_bytes());
        out.extend_from_slice(value);
    }
    out
}

/// Decodes a replicated value back into a KV map.
///
/// An empty input decodes to an empty map (a freshly-placed shard has
/// the empty value). Returns `None` on any malformed input.
#[must_use]
pub fn decode_kv(bytes: &[u8]) -> Option<BTreeMap<String, Vec<u8>>> {
    if bytes.is_empty() {
        return Some(BTreeMap::new());
    }
    let mut cursor = bytes;
    let count = read_u32(&mut cursor)?;
    let mut map = BTreeMap::new();
    for _ in 0..count {
        let key_len = read_u16(&mut cursor)? as usize;
        let key = String::from_utf8(take(&mut cursor, key_len)?.to_vec()).ok()?;
        let value_len = read_u32(&mut cursor)? as usize;
        let value = take(&mut cursor, value_len)?.to_vec();
        map.insert(key, value);
    }
    cursor.is_empty().then_some(map)
}

fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if cursor.len() < n {
        return None;
    }
    let (head, tail) = cursor.split_at(n);
    *cursor = tail;
    Some(head)
}

fn read_u16(cursor: &mut &[u8]) -> Option<u16> {
    take(cursor, 2).map(|b| u16::from_be_bytes([b[0], b[1]]))
}

fn read_u32(cursor: &mut &[u8]) -> Option<u32> {
    take(cursor, 4).map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BTreeMap<String, Vec<u8>> {
        let mut map = BTreeMap::new();
        map.insert("alpha".to_string(), b"one".to_vec());
        map.insert("beta".to_string(), vec![0u8; 300]);
        map.insert(String::new(), Vec::new());
        map
    }

    #[test]
    fn round_trips() {
        let map = sample();
        assert_eq!(decode_kv(&encode_kv(&map)), Some(map));
        assert_eq!(decode_kv(&[]), Some(BTreeMap::new()));
        assert_eq!(
            decode_kv(&encode_kv(&BTreeMap::new())),
            Some(BTreeMap::new())
        );
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let encoded = encode_kv(&sample());
        for cut in 1..encoded.len() {
            assert_eq!(decode_kv(&encoded[..cut]), None, "truncated at {cut}");
        }
        let mut padded = encoded;
        padded.push(0);
        assert_eq!(decode_kv(&padded), None);
    }

    #[test]
    fn bogus_counts_do_not_panic() {
        // Claims 2^32-1 entries with no bodies.
        assert_eq!(decode_kv(&[0xFF, 0xFF, 0xFF, 0xFF]), None);
    }
}
