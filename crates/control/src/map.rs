//! The shard map: a versioned, checksummed assignment of key-hash
//! ranges onto shard groups, with the site addresses a client needs to
//! route by it.
//!
//! Keys hash with [`route_hash`] (FNV-1a plus a murmur-style
//! finalizer, 64-bit) and the hash space splits into
//! `shards.len()` *contiguous equal ranges*: shard `k` owns hashes in
//! `[k·2⁶⁴/N, (k+1)·2⁶⁴/N)`. Contiguous ranges (rather than `hash % N`)
//! keep the door open for range splits later without rehashing every
//! key's shard.
//!
//! The encoding is self-validating: a fixed magic, a version byte, the
//! payload, and a trailing FNV-1a checksum over everything before it.
//! [`ShardMap::decode`] rejects torn or corrupt bytes with a typed
//! [`MapError`]; [`ShardMap::persist`] writes via a temp file + rename
//! so a crash mid-write leaves the previous generation intact.

use std::io::Write as _;
use std::path::Path;

/// One shard's placement: which sites hold its copies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Sites holding this shard's copies. `placement[0]` is the
    /// *coordinator* — the only site that accepts keyed client
    /// operations for the shard (the funnel that serializes
    /// read-modify-write on the shard's KV map).
    pub placement: Vec<usize>,
}

impl ShardSpec {
    /// The shard's coordinator site (the first placement entry).
    #[must_use]
    pub fn coordinator(&self) -> usize {
        self.placement[0]
    }
}

/// The versioned shard map (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// The map version. Every change — rebalance step, placement edit —
    /// bumps it; daemons refuse keyed operations carrying another epoch
    /// with a typed `StaleShardMap` answer.
    pub epoch: u64,
    /// Per-shard placements, indexed by shard id.
    pub shards: Vec<ShardSpec>,
    /// Every site's client address, so a router can reach any
    /// coordinator from one bootstrap address.
    pub sites: Vec<(usize, String)>,
}

/// Why shard-map bytes failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapError {
    /// Too short, wrong magic, or an unknown format version.
    BadHeader,
    /// The payload ended before a field did, or a count was absurd.
    Truncated,
    /// The trailing checksum does not match the bytes.
    BadChecksum,
    /// A placement was empty or named an out-of-range site.
    BadPlacement,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::BadHeader => write!(f, "bad shard-map header"),
            MapError::Truncated => write!(f, "truncated shard map"),
            MapError::BadChecksum => write!(f, "shard-map checksum mismatch"),
            MapError::BadPlacement => write!(f, "empty or out-of-range shard placement"),
        }
    }
}

impl std::error::Error for MapError {}

const MAGIC: &[u8; 4] = b"DVSM";
const FORMAT: u8 = 1;

/// FNV-1a, 64-bit — used for the map's trailing checksum.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The hash keys route by: FNV-1a plus a murmur-style finalizer.
///
/// Raw FNV-1a has poor high-bit avalanche on short keys (every
/// `key-N` string lands in the same top half of the hash space), and
/// [`ShardMap::shard_of`] partitions on the *high* bits. The fmix64
/// finalizer spreads every input bit across the whole word.
#[must_use]
pub fn route_hash(key: &[u8]) -> u64 {
    let mut hash = fnv1a(key);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    hash
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_be_bytes());
}

fn put_u16(out: &mut Vec<u8>, value: u16) {
    out.extend_from_slice(&value.to_be_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], MapError> {
        let end = self.at.checked_add(n).ok_or(MapError::Truncated)?;
        if end > self.bytes.len() {
            return Err(MapError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, MapError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn u16(&mut self) -> Result<u16, MapError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2")))
    }
}

impl ShardMap {
    /// The shard owning `key`: FNV-1a into contiguous equal hash
    /// ranges.
    #[must_use]
    pub fn shard_of(&self, key: &[u8]) -> u16 {
        let n = self.shards.len() as u128;
        let hash = u128::from(route_hash(key));
        // hash ∈ [0, 2⁶⁴); shard = ⌊hash·N / 2⁶⁴⌋ ∈ [0, N).
        ((hash * n) >> 64) as u16
    }

    /// The client address of `site`, if the map lists it.
    #[must_use]
    pub fn addr_of(&self, site: usize) -> Option<&str> {
        self.sites
            .iter()
            .find(|(s, _)| *s == site)
            .map(|(_, addr)| addr.as_str())
    }

    /// The coordinator address for `shard`.
    #[must_use]
    pub fn coordinator_addr(&self, shard: u16) -> Option<&str> {
        let spec = self.shards.get(shard as usize)?;
        self.addr_of(spec.coordinator())
    }

    /// Serializes the map: magic, format byte, payload, trailing
    /// FNV-1a checksum over everything before it.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(MAGIC);
        out.push(FORMAT);
        put_u64(&mut out, self.epoch);
        put_u16(&mut out, self.shards.len() as u16);
        for spec in &self.shards {
            put_u16(&mut out, spec.placement.len() as u16);
            for &site in &spec.placement {
                put_u16(&mut out, site as u16);
            }
        }
        put_u16(&mut out, self.sites.len() as u16);
        for (site, addr) in &self.sites {
            put_u16(&mut out, *site as u16);
            put_u16(&mut out, addr.len() as u16);
            out.extend_from_slice(addr.as_bytes());
        }
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Decodes and validates map bytes.
    ///
    /// # Errors
    ///
    /// [`MapError`] on any malformed, torn, or corrupt input; never
    /// panics, and no allocation is sized beyond the bytes present.
    pub fn decode(bytes: &[u8]) -> Result<ShardMap, MapError> {
        if bytes.len() < MAGIC.len() + 1 + 8 || &bytes[..4] != MAGIC || bytes[4] != FORMAT {
            return Err(MapError::BadHeader);
        }
        let body_len = bytes.len() - 8;
        let claimed = u64::from_be_bytes(bytes[body_len..].try_into().expect("8"));
        if fnv1a(&bytes[..body_len]) != claimed {
            return Err(MapError::BadChecksum);
        }
        let mut r = Reader {
            bytes: &bytes[..body_len],
            at: 5,
        };
        let epoch = r.u64()?;
        let shard_count = r.u16()? as usize;
        let mut shards = Vec::with_capacity(shard_count.min(1024));
        for _ in 0..shard_count {
            let width = r.u16()? as usize;
            let mut placement = Vec::with_capacity(width.min(64));
            for _ in 0..width {
                placement.push(r.u16()? as usize);
            }
            shards.push(ShardSpec { placement });
        }
        let site_count = r.u16()? as usize;
        let mut sites = Vec::with_capacity(site_count.min(1024));
        for _ in 0..site_count {
            let site = r.u16()? as usize;
            let len = r.u16()? as usize;
            let addr = String::from_utf8(r.take(len)?.to_vec()).map_err(|_| MapError::Truncated)?;
            sites.push((site, addr));
        }
        if r.at != body_len {
            return Err(MapError::Truncated);
        }
        let map = ShardMap {
            epoch,
            shards,
            sites,
        };
        map.validate()?;
        Ok(map)
    }

    /// Structural validation: at least one shard, no empty placement,
    /// every placed site within the `SiteSet` word (0..64).
    ///
    /// # Errors
    ///
    /// [`MapError::BadPlacement`].
    pub fn validate(&self) -> Result<(), MapError> {
        if self.shards.is_empty() {
            return Err(MapError::BadPlacement);
        }
        for spec in &self.shards {
            if spec.placement.is_empty() || spec.placement.iter().any(|&s| s >= 64) {
                return Err(MapError::BadPlacement);
            }
        }
        Ok(())
    }

    /// Persists the map atomically: temp file in the same directory,
    /// fsync, rename over the target.
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    pub fn persist(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&self.encode())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a persisted map; `Ok(None)` when the file does not exist.
    ///
    /// # Errors
    ///
    /// I/O errors pass through; corrupt bytes surface as
    /// `InvalidData` wrapping the [`MapError`].
    pub fn load(path: &Path) -> std::io::Result<Option<ShardMap>> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        ShardMap::decode(&bytes)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardMap {
        ShardMap {
            epoch: 7,
            shards: vec![
                ShardSpec {
                    placement: vec![0, 1, 2],
                },
                ShardSpec {
                    placement: vec![1, 2, 3],
                },
            ],
            sites: vec![
                (0, "127.0.0.1:7100".to_string()),
                (1, "127.0.0.1:7101".to_string()),
                (2, "127.0.0.1:7102".to_string()),
                (3, "127.0.0.1:7103".to_string()),
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let map = sample();
        assert_eq!(ShardMap::decode(&map.encode()).unwrap(), map);
    }

    #[test]
    fn every_corruption_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                ShardMap::decode(&bad).is_err(),
                "flipping byte {i} went undetected"
            );
        }
        for cut in 0..bytes.len() {
            assert!(ShardMap::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn shard_of_covers_every_shard_and_is_stable() {
        let map = sample();
        let mut seen = [false; 2];
        for i in 0..256 {
            let key = format!("key-{i}");
            let shard = map.shard_of(key.as_bytes());
            assert!((shard as usize) < map.shards.len());
            assert_eq!(shard, map.shard_of(key.as_bytes()), "routing must be pure");
            seen[shard as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "256 keys never hit every shard");
    }

    #[test]
    fn persist_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("dynvote-map-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shardmap.bin");
        let map = sample();
        map.persist(&path).unwrap();
        assert_eq!(ShardMap::load(&path).unwrap(), Some(map));
        assert_eq!(ShardMap::load(&dir.join("absent.bin")).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_placements_are_rejected() {
        let mut map = sample();
        map.shards[0].placement.clear();
        assert_eq!(map.validate(), Err(MapError::BadPlacement));
        let mut map = sample();
        map.shards[1].placement.push(64);
        assert_eq!(map.validate(), Err(MapError::BadPlacement));
    }
}
