#![warn(missing_docs)]

//! The sharded store's control plane (DESIGN.md §14).
//!
//! The data plane runs N independent dynamic-voting groups — one
//! `Cluster` per *shard*, each with its own ⟨o, v, P⟩ state, its own
//! placement, and its own WAL/snapshot namespace. This crate holds
//! everything the control plane needs to describe and route that
//! fleet, with no networking of its own:
//!
//! * [`map`] — the [`ShardMap`](map::ShardMap): a versioned,
//!   checksummed, persisted assignment of key-hash ranges onto shard
//!   groups. Every daemon and every client carries one; the map
//!   *epoch* is the single version number that makes "stale client"
//!   a typed, retryable condition instead of a misrouted write.
//! * [`placement`] — [`Placement`](placement::Placement) policies
//!   mapping shards onto sites: a rotating ring, plus the paper's
//!   configurations A–H reused as per-shard placements on an
//!   eight-site fleet.
//! * [`kv`] — the codec for the replicated value each shard group
//!   actually votes on: an ordered `key → bytes` map, so one quorum
//!   round can carry a whole batch of keyed writes.
//!
//! Rebalancing is deliberately *not* a new protocol: moving a copy of
//! shard `k` to site `t` is (1) an epoch bump adding `t` to `k`'s
//! placement, (2) the paper's RECOVER run at `t` — a brand-new copy
//! with ⟨0, 0, P₀⟩ is indistinguishable from a crashed-and-wiped site,
//! which RECOVER already handles — and (3) optionally a second epoch
//! bump dropping the source copy. See DESIGN.md §14 for the soundness
//! argument.

pub mod kv;
pub mod map;
pub mod placement;

pub use kv::{decode_kv, encode_kv};
pub use map::{route_hash, MapError, ShardMap, ShardSpec};
pub use placement::Placement;
