//! Offline stand-in for the crates.io `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so the workspace cannot
//! fetch `rand` from a registry. This crate implements exactly the
//! surface the workspace uses — `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] for `f64`/integers/`bool`, [`Rng::gen_range`] and
//! [`Rng::gen_bool`] — on top of SplitMix64, which passes BigCrush and is
//! more than adequate for the simulator's statistical needs.
//!
//! It is **not** a cryptographic RNG and makes no attempt to be
//! stream-compatible with the real `rand::rngs::StdRng`; determinism is
//! only promised within this workspace.

#![warn(missing_docs)]

pub mod rngs;

use core::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of a word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore`.
///
/// Stand-in for `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            #[inline]
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy {
    /// Draws uniformly from the half-open `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// A uniform draw in `[0, n)` by Lemire's widening-multiply method with
/// rejection, so every residue is exactly equally likely.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(n);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[inline]
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "cannot sample from empty range"
                );
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )+};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// A uniform draw of `T` (full range for integers, `[0, 1)` for
    /// floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from the half-open `range`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_small_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_signed_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn mean_of_f64_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(3usize..3);
    }
}
