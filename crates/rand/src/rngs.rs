//! Concrete generator types.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// SplitMix64 (Steele, Lea & Flood 2014): a 64-bit counter advanced by
/// the golden-ratio increment and finalized with two xor-shift-multiply
/// rounds. Statistically strong for simulation purposes and trivially
/// seedable — which is all this workspace asks of it.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    #[inline]
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}
