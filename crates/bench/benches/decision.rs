//! Latency of Algorithm 1 — the majority-partition decision — across
//! rules and copy counts.
//!
//! The paper's efficiency argument for ODV rests on the decision being
//! a trivial computation over state gathered at access time; this bench
//! quantifies "trivial" (it should sit in the tens of nanoseconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynvote_core::decision::{decide, Rule};
use dynvote_core::state::StateTable;
use dynvote_topology::Network;
use dynvote_types::SiteSet;
use std::hint::black_box;

/// A mid-history state: the partition set has shrunk once and one copy
/// is stale, so the decision exercises the max-op/max-version scans.
fn mid_history_state(n: usize) -> (SiteSet, StateTable) {
    let copies = SiteSet::first_n(n);
    let mut states = StateTable::fresh(copies);
    let shrunk = copies.without(copies.max().expect("non-empty"));
    states.commit(shrunk, 7, 5, shrunk);
    (copies, states)
}

fn bench_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision");
    for n in [3usize, 5, 8, 16, 32] {
        let (copies, states) = mid_history_state(n);
        let reachable = copies.without(SiteSet::first_n(n).min().expect("non-empty"));

        group.bench_with_input(BenchmarkId::new("dv", n), &n, |b, _| {
            let rule = Rule::dv();
            b.iter(|| decide(black_box(reachable), copies, &states, &rule, None).is_granted());
        });
        group.bench_with_input(BenchmarkId::new("ldv", n), &n, |b, _| {
            let rule = Rule::lexicographic();
            b.iter(|| decide(black_box(reachable), copies, &states, &rule, None).is_granted());
        });
        let network = Network::single_segment(n);
        group.bench_with_input(BenchmarkId::new("tdv", n), &n, |b, _| {
            let rule = Rule::topological();
            b.iter(|| {
                decide(black_box(reachable), copies, &states, &rule, Some(&network)).is_granted()
            });
        });
    }
    group.finish();
}

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability");
    let ucsd = dynvote_availability::network::ucsd_network();
    group.bench_function("ucsd_all_up", |b| {
        b.iter(|| ucsd.reachability(black_box(SiteSet::first_n(8))));
    });
    group.bench_function("ucsd_gateways_down", |b| {
        let up = SiteSet::from_indices([0, 1, 2, 5, 6, 7]);
        b.iter(|| ucsd.reachability(black_box(up)));
    });
    let mesh = Network::fully_connected(16);
    group.bench_function("mesh16_half_up", |b| {
        let up = SiteSet::from_bits(0xAAAA);
        b.iter(|| mesh.reachability(black_box(up)));
    });
    group.finish();
}

criterion_group!(benches, bench_decision, bench_reachability);
criterion_main!(benches);
