//! Message-level operation latency and message-traffic accounting.
//!
//! The paper claims the optimistic protocols incur "much the same
//! message traffic overhead as majority consensus voting": the
//! `messages_per_*` benchmarks print that comparison as a side effect
//! of measuring operation latency per protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynvote_replica::{Cluster, ClusterBuilder, Protocol};
use dynvote_types::SiteId;
use std::hint::black_box;

fn cluster(protocol: Protocol, n: usize) -> Cluster<u64> {
    ClusterBuilder::new()
        .copies(0..n)
        .protocol(protocol)
        .build_with_value(0)
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("replica_ops");
    for protocol in [Protocol::Mcv, Protocol::Odv, Protocol::Otdv] {
        for n in [3usize, 5, 9] {
            group.bench_with_input(
                BenchmarkId::new(format!("read_{}", protocol.name()), n),
                &n,
                |b, &n| {
                    let mut cl = cluster(protocol, n);
                    let origin = SiteId::new(0);
                    b.iter(|| black_box(cl.read(origin).is_ok()));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("write_{}", protocol.name()), n),
                &n,
                |b, &n| {
                    let mut cl = cluster(protocol, n);
                    let origin = SiteId::new(0);
                    let mut v = 0u64;
                    b.iter(|| {
                        v += 1;
                        black_box(cl.write(origin, v).is_ok())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("replica_recovery");
    group.bench_function("fail_write_recover_cycle", |b| {
        let mut cl = cluster(Protocol::Odv, 5);
        let a = SiteId::new(0);
        let d = SiteId::new(4);
        let mut v = 0u64;
        b.iter(|| {
            cl.fail_site(d);
            v += 1;
            cl.write(a, v).expect("majority up");
            cl.repair_site(d);
            cl.recover(d).expect("majority reachable");
        });
    });
    group.finish();
}

/// Not a timing benchmark: prints the per-operation message counts the
/// paper's traffic claim is about, so `cargo bench` output doubles as
/// the traffic table.
fn report_message_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_traffic");
    group.sample_size(10);
    println!("\nmessages per operation (3 copies, all up, origin holds a copy):");
    println!("{:<8} {:>6} {:>6}", "proto", "read", "write");
    for protocol in Protocol::ALL {
        let mut cl = cluster(protocol, 3);
        cl.clear_trace();
        cl.read(SiteId::new(0)).unwrap();
        let read_msgs = cl.trace().total();
        cl.clear_trace();
        cl.write(SiteId::new(0), 1).unwrap();
        let write_msgs = cl.trace().total();
        println!("{:<8} {:>6} {:>6}", protocol.name(), read_msgs, write_msgs);
    }
    // Anchor the claim in a measurable assertion-like benchmark body.
    group.bench_function("odv_vs_mcv_read_traffic", |b| {
        b.iter(|| {
            let mut mcv = cluster(Protocol::Mcv, 3);
            let mut odv = cluster(Protocol::Odv, 3);
            mcv.clear_trace();
            odv.clear_trace();
            mcv.read(SiteId::new(0)).unwrap();
            odv.read(SiteId::new(0)).unwrap();
            black_box((mcv.trace().total(), odv.trace().total()))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ops, bench_recovery, report_message_traffic);
criterion_main!(benches);
