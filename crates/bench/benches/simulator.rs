//! Throughput of the availability simulator — the cost of regenerating
//! Tables 2 and 3.
//!
//! Measures (a) the raw failure/repair/access event stream and (b) a
//! full single-policy and six-policy measurement year, per
//! configuration class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dynvote_availability::config::{CONFIG_A, CONFIG_G};
use dynvote_availability::driver::Driver;
use dynvote_availability::network::ucsd_network;
use dynvote_availability::run::{simulate, simulate_row, Params};
use dynvote_availability::sites::UCSD_SITES;
use dynvote_core::policy::PolicyKind;
use dynvote_sim::Duration;
use std::hint::black_box;

fn bench_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("driver");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("raw_events_10k", |b| {
        b.iter(|| {
            let mut driver = Driver::new(ucsd_network(), &UCSD_SITES, 1, 1.0);
            for _ in 0..10_000 {
                black_box(driver.step());
            }
        });
    });
    group.finish();
}

fn bench_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("measurement");
    group.sample_size(10);
    // Ten simulated years, single policy vs the full six-policy row.
    let params = Params {
        seed: 2,
        access_rate: 1.0,
        warmup: Duration::days(100.0),
        batch_len: Duration::days(365.0),
        batches: 10,
    };
    for (config, label) in [(&CONFIG_A, "A"), (&CONFIG_G, "G")] {
        group.bench_with_input(BenchmarkId::new("ldv_10y", label), config, |b, config| {
            b.iter(|| simulate(PolicyKind::Ldv, black_box(config), &params));
        });
        group.bench_with_input(
            BenchmarkId::new("six_policies_10y", label),
            config,
            |b, config| {
                b.iter(|| simulate_row(black_box(config), &params));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_driver, bench_measurement);
criterion_main!(benches);
