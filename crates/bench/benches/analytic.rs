//! Cost of the exact CTMC models: state-space construction plus dense
//! steady-state solve, as the copy count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynvote_analytic::{dv_unavailability, ldv_unavailability, ParSystem};
use std::hint::black_box;

fn bench_ctmc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmc");
    for n in [3usize, 4, 5, 6] {
        let sys = ParSystem {
            n,
            mttf: 10.0,
            mttr: 0.5,
        };
        group.bench_with_input(BenchmarkId::new("dv_exact", n), &sys, |b, sys| {
            b.iter(|| black_box(dv_unavailability(sys)));
        });
        group.bench_with_input(BenchmarkId::new("ldv_exact", n), &sys, |b, sys| {
            b.iter(|| black_box(ldv_unavailability(sys)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ctmc);
criterion_main!(benches);
