//! Events-per-second snapshot of the availability simulator, written to
//! `BENCH_sim.json` at the repo root.
//!
//! Criterion (`benches/simulator.rs`) answers "did this commit regress?"
//! interactively; this harness produces the *committed* number — a
//! machine-readable baseline future PRs diff against. It measures:
//!
//! * **driver-only** — raw failure/repair/access events through
//!   [`Driver::step`] on the Figure 8 network, with the reachability
//!   cache on and off (`set_memoize`), which brackets the memoization
//!   win in isolation;
//! * **full row** — one six-policy [`simulate_row`] over configuration A
//!   at the `--quick` table parameters, i.e. the unit of work
//!   `table2`/`table3` fan out per configuration;
//! * **quick study** — wall-clock of `regenerate_results.sh --quick`,
//!   passed in by `scripts/bench_sim.sh` (the harness cannot time the
//!   script from inside one of the binaries the script builds), next to
//!   the pre-memoization sequential baseline recorded on this machine.
//!
//! ```text
//! cargo run --release -p dynvote-bench --bin sim_throughput -- \
//!     [--events N] [--quick-study-secs S] [--out PATH]
//! ```

use std::time::Instant;

use dynvote_availability::config::CONFIG_A;
use dynvote_availability::driver::Driver;
use dynvote_availability::network::ucsd_network;
use dynvote_availability::run::{simulate_row, Params};
use dynvote_availability::sites::UCSD_SITES;
use dynvote_sim::SimTime;

/// `regenerate_results.sh --quick` on this machine immediately before
/// the reachability cache landed (sequential rows, per-event BFS).
/// Re-measure and update when the hardware changes.
const PRE_PR_QUICK_STUDY_SECS: f64 = 21.813;

struct Args {
    /// Driver-only event count per pass.
    events: u64,
    /// Measured `regenerate_results.sh --quick` wall-clock, if the
    /// caller timed one (see `scripts/bench_sim.sh`).
    quick_study_secs: Option<f64>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        events: 2_000_000,
        quick_study_secs: None,
        out: concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json").to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--events" => {
                args.events = value("--events").parse().unwrap_or_else(|e| {
                    eprintln!("error: --events: {e}");
                    std::process::exit(2);
                });
            }
            "--quick-study-secs" => {
                args.quick_study_secs =
                    Some(value("--quick-study-secs").parse().unwrap_or_else(|e| {
                        eprintln!("error: --quick-study-secs: {e}");
                        std::process::exit(2);
                    }));
            }
            "--out" => args.out = value("--out"),
            other => {
                eprintln!(
                    "error: unknown flag {other:?}\nusage: sim_throughput \
                     [--events N] [--quick-study-secs S] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Steps a fresh driver through `events` events and reports
/// (seconds, cache hits, cache misses).
fn drive(events: u64, memoize: bool) -> (f64, u64, u64) {
    let mut driver = Driver::new(ucsd_network(), &UCSD_SITES, Params::paper().seed, 1.0);
    driver.set_memoize(memoize);
    let start = Instant::now();
    for _ in 0..events {
        std::hint::black_box(driver.step());
    }
    let secs = start.elapsed().as_secs_f64();
    let cache = driver.reachability_cache();
    (secs, cache.hits(), cache.misses())
}

/// Counts driver events inside the horizon `simulate_row` consumes for
/// `params` (warm-up plus all batches).
fn events_in_horizon(params: &Params) -> u64 {
    let mut driver = Driver::new(ucsd_network(), &UCSD_SITES, params.seed, params.access_rate);
    let end = SimTime::ZERO + params.warmup + params.batch_len * params.batches as f64;
    let mut n = 0u64;
    while let Some((t, _)) = driver.step() {
        if t >= end {
            break;
        }
        n += 1;
    }
    n
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |s| format!("{s:.3}"))
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // ---- driver-only events/sec, cache on vs off ----------------------
    eprintln!("driver: {} events, memoized ...", args.events);
    let (memo_secs, hits, misses) = drive(args.events, true);
    eprintln!("driver: {} events, per-event BFS ...", args.events);
    let (bfs_secs, _, _) = drive(args.events, false);
    let memo_eps = args.events as f64 / memo_secs;
    let bfs_eps = args.events as f64 / bfs_secs;

    // ---- full six-policy row at the --quick table parameters ----------
    let quick = Params::quick_test();
    let mut row_params = Params::paper();
    row_params.batches = quick.batches;
    row_params.batch_len = quick.batch_len;
    let row_events = events_in_horizon(&row_params);
    eprintln!("full row: configuration A, six policies, {row_events} events ...");
    let start = Instant::now();
    let row = simulate_row(&CONFIG_A, &row_params);
    let row_secs = start.elapsed().as_secs_f64();
    assert_eq!(row.len(), 6, "expected one result per paper policy");
    let row_eps = row_events as f64 / row_secs;

    // ---- quick-study wall-clock ---------------------------------------
    let quick_speedup = args.quick_study_secs.map(|s| PRE_PR_QUICK_STUDY_SECS / s);

    let json = format!(
        r#"{{
  "generated_by": "scripts/bench_sim.sh (cargo run --release -p dynvote-bench --bin sim_throughput)",
  "machine": {{ "cores": {cores} }},
  "driver": {{
    "events": {events},
    "memoized": {{ "secs": {memo_secs:.3}, "events_per_sec": {memo_eps:.0}, "cache_hits": {hits}, "cache_misses": {misses} }},
    "per_event_bfs": {{ "secs": {bfs_secs:.3}, "events_per_sec": {bfs_eps:.0} }},
    "speedup": {speedup:.2}
  }},
  "full_row": {{
    "config": "A",
    "policies": 6,
    "params": "--quick (6 batches x 3000 days, 360-day warm-up, paper seed)",
    "events": {row_events},
    "secs": {row_secs:.3},
    "events_per_sec": {row_eps:.0}
  }},
  "quick_study": {{
    "workload": "scripts/regenerate_results.sh --quick (14 binaries, full artefact sweep)",
    "pre_pr_sequential_secs": {pre:.3},
    "this_run_secs": {this_run},
    "speedup": {qspeed}
  }}
}}
"#,
        events = args.events,
        speedup = memo_eps / bfs_eps,
        pre = PRE_PR_QUICK_STUDY_SECS,
        this_run = fmt_opt(args.quick_study_secs),
        qspeed = quick_speedup.map_or_else(|| "null".to_string(), |s| format!("{s:.2}")),
    );

    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {}: {e}", args.out);
        std::process::exit(1);
    });
    eprint!("{json}");
    eprintln!("wrote {}", args.out);
}
