//! Closed-loop load driver for the networked store, written to
//! `BENCH_store.json` at the repo root.
//!
//! The number this replaces was a lie the file admitted to: ~500 put/s
//! of *CLI latency*, where every operation paid a process spawn, a
//! fresh TCP connect, and a serial quorum round. This harness measures
//! the transport instead: it boots a loopback fleet **in process**
//! (real daemons, real sockets, the same `TcpTransport` peer links),
//! then drives it through persistent pipelined [`Connection`]s —
//! configurable client count, pipeline depth, and read/write mix —
//! and reports sustained req/s plus p50/p99/p999 latency.
//!
//! All clients target site 0: a single coordinator is the honest
//! configuration for a throughput ceiling (two coordinators polling
//! *at* each other serialize on vote wedging, which is a protocol
//! property, not a transport one — EXPERIMENTS.md discusses it).
//!
//! ```text
//! cargo run --release -p dynvote-bench --bin store_throughput -- \
//!     [--clients N] [--pipeline D] [--write-pct P] [--secs S] \
//!     [--policy odv] [--sites 3] [--quick] [--out PATH]
//! ```

use std::collections::VecDeque;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use dynvote_store::client::request;
use dynvote_store::config::Config;
use dynvote_store::conn::{ConnOptions, Connection};
use dynvote_store::server::{start_on, ServiceHandle};
use dynvote_store::wire::Frame;
use dynvote_store::{Deadline, Outcome};

struct Args {
    clients: usize,
    pipeline: usize,
    write_pct: u64,
    secs: f64,
    policy: String,
    sites: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 2,
        pipeline: 256,
        write_pct: 90,
        secs: 5.0,
        policy: "odv".to_string(),
        sites: 3,
        out: concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json").to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--clients" => args.clients = value("--clients").parse().expect("--clients"),
            "--pipeline" => args.pipeline = value("--pipeline").parse().expect("--pipeline"),
            "--write-pct" => args.write_pct = value("--write-pct").parse().expect("--write-pct"),
            "--secs" => args.secs = value("--secs").parse().expect("--secs"),
            "--policy" => args.policy = value("--policy"),
            "--sites" => args.sites = value("--sites").parse().expect("--sites"),
            "--quick" => args.secs = 2.0,
            "--out" => args.out = value("--out"),
            other => {
                eprintln!(
                    "error: unknown flag {other:?}\nusage: store_throughput \
                     [--clients N] [--pipeline D] [--write-pct P] [--secs S] \
                     [--policy NAME] [--sites N] [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(args.clients >= 1 && args.pipeline >= 1 && args.sites >= 1);
    assert!(args.write_pct <= 100, "--write-pct is a percentage");
    args
}

/// Boots a loopback fleet: ephemeral listeners first (so every config
/// names real addresses), then one daemon per site, then a status poll
/// until all accept. `--quiet` keeps the grant log off stderr — at the
/// rates this harness drives, the terminal would be the bottleneck.
fn boot_fleet(policy: &str, sites: usize) -> (Vec<ServiceHandle>, Vec<String>) {
    let listeners: Vec<TcpListener> = (0..sites)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect();
    let peers = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| format!("{i}={a}"))
        .collect::<Vec<_>>()
        .join(",");
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let flags = format!(
                "--site {i} --policy {policy} --peers {peers} --value v0 --quiet \
                 --connect-timeout-ms 250 --read-timeout-ms 2000 \
                 --backoff-ms 10 --backoff-cap-ms 100"
            );
            let config = Config::parse_args(flags.split_whitespace().map(str::to_string))
                .expect("bench config");
            start_on(config, listener).expect("daemon start")
        })
        .collect();
    for addr in &addrs {
        let up = (0..50).any(|_| {
            matches!(
                request(addr, &Frame::Status, Duration::from_millis(500)),
                Ok(Outcome::Report(_))
            )
        });
        assert!(up, "daemon at {addr} never answered status");
    }
    (handles, addrs)
}

/// What one client thread brings back.
struct ClientRun {
    /// (latency in µs, was a write) per completed request.
    samples: Vec<(u64, bool)>,
    refused: u64,
    errors: u64,
}

/// One closed-loop client: keep `depth` requests in flight on a single
/// pipelined connection until `end`, then drain.
fn drive_client(addr: &str, depth: usize, write_pct: u64, seed: u64, end: Instant) -> ClientRun {
    let conn = Connection::new(addr, ConnOptions::default());
    let mut jitter = dynvote_store::jitter::Jitter::new(seed);
    let payload = vec![b'x'; 32];
    let mut run = ClientRun {
        samples: Vec::with_capacity(1 << 16),
        refused: 0,
        errors: 0,
    };
    let mut inflight = VecDeque::with_capacity(depth);
    let reap =
        |run: &mut ClientRun,
         (pending, started, is_write): (dynvote_store::conn::Pending, Instant, bool)| {
            let wait_deadline = Deadline::within(Duration::from_secs(10));
            match conn.wait(&pending, &wait_deadline) {
                Ok(outcome) if outcome.granted() => {
                    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                    run.samples.push((micros, is_write));
                }
                Ok(_) => run.refused += 1,
                Err(_) => run.errors += 1,
            }
        };
    while Instant::now() < end {
        while inflight.len() < depth {
            let is_write = jitter.in_range(0, 99) < write_pct;
            let frame = if is_write {
                Frame::Put {
                    value: payload.clone(),
                }
            } else {
                Frame::Get
            };
            let submit_deadline = Deadline::within(Duration::from_secs(10));
            match conn.submit(&frame, &submit_deadline) {
                Ok(pending) => inflight.push_back((pending, Instant::now(), is_write)),
                Err(_) => {
                    run.errors += 1;
                    break;
                }
            }
        }
        let Some(oldest) = inflight.pop_front() else {
            break;
        };
        reap(&mut run, oldest);
    }
    for leftover in inflight {
        reap(&mut run, leftover);
    }
    run
}

/// The `q`-th percentile (0.0–1.0) of a sorted sample vector, in µs.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn histogram_json(label: &str, mut samples: Vec<u64>) -> String {
    samples.sort_unstable();
    format!(
        r#""{label}": {{ "count": {count}, "p50_us": {p50}, "p99_us": {p99}, "p999_us": {p999}, "max_us": {max} }}"#,
        count = samples.len(),
        p50 = percentile(&samples, 0.50),
        p99 = percentile(&samples, 0.99),
        p999 = percentile(&samples, 0.999),
        max = samples.last().copied().unwrap_or(0),
    )
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!(
        "booting {} x {} loopback fleet ...",
        args.sites, args.policy
    );
    let (handles, addrs) = boot_fleet(&args.policy, args.sites);
    let target = addrs[0].clone();

    eprintln!(
        "driving: {} clients x pipeline {} at {}% writes for {:.1}s ...",
        args.clients, args.pipeline, args.write_pct, args.secs
    );
    let started = Instant::now();
    let end = started + Duration::from_secs_f64(args.secs);
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..args.clients)
            .map(|i| {
                let target = &target;
                scope.spawn(move || {
                    drive_client(
                        target,
                        args.pipeline,
                        args.write_pct,
                        0x5eed_0000 + i as u64,
                        end,
                    )
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();

    let mut all: Vec<u64> = Vec::new();
    let mut writes: Vec<u64> = Vec::new();
    let mut reads: Vec<u64> = Vec::new();
    let mut refused = 0u64;
    let mut errors = 0u64;
    for run in runs {
        refused += run.refused;
        errors += run.errors;
        for (micros, is_write) in run.samples {
            all.push(micros);
            if is_write {
                writes.push(micros);
            } else {
                reads.push(micros);
            }
        }
    }
    let completed = all.len() as u64;
    let rps = completed as f64 / wall;
    assert!(
        errors == 0 && refused == 0,
        "fault-free loopback run saw {refused} refusals / {errors} errors"
    );

    let json = format!(
        r#"{{
  "generated_by": "cargo run --release -p dynvote-bench --bin store_throughput",
  "machine": {{ "cores": {cores} }},
  "cluster": {{ "policy": "{policy}", "sites": {sites}, "durable": false }},
  "workload": {{ "clients": {clients}, "pipeline_depth": {pipeline}, "write_pct": {write_pct}, "payload_bytes": 32, "secs": {wall:.3} }},
  "completed_requests": {completed},
  "requests_per_sec": {rps:.0},
  {hist_all},
  {hist_writes},
  {hist_reads},
  "note": "closed-loop, in-process loopback fleet; persistent pipelined connections (correlation-id frames) and batched quorum commits; latency includes pipeline queueing"
}}
"#,
        policy = args.policy,
        sites = args.sites,
        clients = args.clients,
        pipeline = args.pipeline,
        write_pct = args.write_pct,
        hist_all = histogram_json("latency", all),
        hist_writes = histogram_json("write_latency", writes),
        hist_reads = histogram_json("read_latency", reads),
    );

    for handle in handles {
        handle.stop();
    }
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {}: {e}", args.out);
        std::process::exit(1);
    });
    eprint!("{json}");
    eprintln!("wrote {} ({rps:.0} req/s)", args.out);
}
