//! Closed-loop load driver for the networked store, written to
//! `BENCH_store.json` at the repo root.
//!
//! The number this replaces was a lie the file admitted to: ~500 put/s
//! of *CLI latency*, where every operation paid a process spawn, a
//! fresh TCP connect, and a serial quorum round. This harness measures
//! the transport instead: it boots a loopback fleet **in process**
//! (real daemons, real sockets, the same `TcpTransport` peer links),
//! then drives it through persistent pipelined [`Connection`]s —
//! configurable client count, pipeline depth, and read/write mix —
//! and reports sustained req/s plus p50/p99/p999 latency.
//!
//! All clients target site 0: a single coordinator is the honest
//! configuration for a throughput ceiling (two coordinators polling
//! *at* each other serialize on vote wedging, which is a protocol
//! property, not a transport one — EXPERIMENTS.md discusses it).
//!
//! ```text
//! cargo run --release -p dynvote-bench --bin store_throughput -- \
//!     [--clients N] [--pipeline D] [--write-pct P] [--secs S] \
//!     [--policy odv] [--sites 3] [--shards N] [--quick] [--out PATH]
//! ```
//!
//! With `--shards N` the fleet runs N independent shard groups and the
//! drivers speak the *keyed* protocol: each client thread owns one
//! shard, pre-hashes a key pool onto it, and pipelines
//! `PutKey`/`GetKey` batches at that shard's coordinator — the
//! multi-shard aggregate lands in `BENCH_shard.json` with a per-shard
//! latency breakdown. On a multi-core box the aggregate is expected to
//! scale with shards (independent quorums, independent batch fsyncs);
//! on a single core the gated property is *fairness* instead — every
//! shard gets an even slice of the one core (`fairness.max_over_min`
//! close to 1), and the aggregate stays within noise of one shard.

use std::collections::VecDeque;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use dynvote_store::client::request;
use dynvote_store::config::Config;
use dynvote_store::conn::{ConnOptions, Connection};
use dynvote_store::server::{start_on, ServiceHandle};
use dynvote_store::wire::Frame;
use dynvote_store::{Deadline, Outcome};

struct Args {
    clients: usize,
    pipeline: usize,
    write_pct: u64,
    secs: f64,
    policy: String,
    sites: usize,
    /// 0 = the classic unsharded store; N ≥ 1 = keyed workload over N
    /// shard groups.
    shards: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 2,
        pipeline: 256,
        write_pct: 90,
        secs: 5.0,
        policy: "odv".to_string(),
        sites: 3,
        shards: 0,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--clients" => args.clients = value("--clients").parse().expect("--clients"),
            "--pipeline" => args.pipeline = value("--pipeline").parse().expect("--pipeline"),
            "--write-pct" => args.write_pct = value("--write-pct").parse().expect("--write-pct"),
            "--secs" => args.secs = value("--secs").parse().expect("--secs"),
            "--policy" => args.policy = value("--policy"),
            "--sites" => args.sites = value("--sites").parse().expect("--sites"),
            "--shards" => args.shards = value("--shards").parse().expect("--shards"),
            "--quick" => args.secs = 2.0,
            "--out" => args.out = Some(value("--out")),
            other => {
                eprintln!(
                    "error: unknown flag {other:?}\nusage: store_throughput \
                     [--clients N] [--pipeline D] [--write-pct P] [--secs S] \
                     [--policy NAME] [--sites N] [--shards N] [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(args.clients >= 1 && args.pipeline >= 1 && args.sites >= 1);
    assert!(args.write_pct <= 100, "--write-pct is a percentage");
    args
}

/// Boots a loopback fleet: ephemeral listeners first (so every config
/// names real addresses), then one daemon per site, then a status poll
/// until all accept. `--quiet` keeps the grant log off stderr — at the
/// rates this harness drives, the terminal would be the bottleneck.
fn boot_fleet(policy: &str, sites: usize, shards: usize) -> (Vec<ServiceHandle>, Vec<String>) {
    let listeners: Vec<TcpListener> = (0..sites)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect();
    let peers = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| format!("{i}={a}"))
        .collect::<Vec<_>>()
        .join(",");
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let sharding = if shards > 0 {
                format!("--shards {shards} --shard-placement ring:3 ")
            } else {
                "--value v0 ".to_string()
            };
            let flags = format!(
                "--site {i} --policy {policy} --peers {peers} {sharding}--quiet \
                 --connect-timeout-ms 250 --read-timeout-ms 2000 \
                 --backoff-ms 10 --backoff-cap-ms 100"
            );
            let config = Config::parse_args(flags.split_whitespace().map(str::to_string))
                .expect("bench config");
            start_on(config, listener).expect("daemon start")
        })
        .collect();
    for addr in &addrs {
        let up = (0..50).any(|_| {
            matches!(
                request(addr, &Frame::Status, Duration::from_millis(500)),
                Ok(Outcome::Report(_))
            )
        });
        assert!(up, "daemon at {addr} never answered status");
    }
    (handles, addrs)
}

/// What one client thread brings back.
struct ClientRun {
    /// (latency in µs, was a write) per completed request.
    samples: Vec<(u64, bool)>,
    refused: u64,
    errors: u64,
}

/// One closed-loop client: keep `depth` requests in flight on a single
/// pipelined connection until `end`, then drain.
fn drive_client(addr: &str, depth: usize, write_pct: u64, seed: u64, end: Instant) -> ClientRun {
    let conn = Connection::new(addr, ConnOptions::default());
    let mut jitter = dynvote_store::jitter::Jitter::new(seed);
    let payload = vec![b'x'; 32];
    let mut run = ClientRun {
        samples: Vec::with_capacity(1 << 16),
        refused: 0,
        errors: 0,
    };
    let mut inflight = VecDeque::with_capacity(depth);
    let reap =
        |run: &mut ClientRun,
         (pending, started, is_write): (dynvote_store::conn::Pending, Instant, bool)| {
            let wait_deadline = Deadline::within(Duration::from_secs(10));
            match conn.wait(&pending, &wait_deadline) {
                Ok(outcome) if outcome.granted() => {
                    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                    run.samples.push((micros, is_write));
                }
                Ok(_) => run.refused += 1,
                Err(_) => run.errors += 1,
            }
        };
    while Instant::now() < end {
        while inflight.len() < depth {
            let is_write = jitter.in_range(0, 99) < write_pct;
            let frame = if is_write {
                Frame::Put {
                    value: payload.clone(),
                }
            } else {
                Frame::Get
            };
            let submit_deadline = Deadline::within(Duration::from_secs(10));
            match conn.submit(&frame, &submit_deadline) {
                Ok(pending) => inflight.push_back((pending, Instant::now(), is_write)),
                Err(_) => {
                    run.errors += 1;
                    break;
                }
            }
        }
        let Some(oldest) = inflight.pop_front() else {
            break;
        };
        reap(&mut run, oldest);
    }
    for leftover in inflight {
        reap(&mut run, leftover);
    }
    run
}

/// One closed-loop *keyed* client: owns one shard, cycles a pre-hashed
/// key pool, and pipelines `PutKey`/`GetKey` at the shard's
/// coordinator. The epoch is fixed for the run — the bench never
/// rebalances, so a stale answer would be a bug and lands in `errors`
/// via the refused path.
#[allow(clippy::too_many_arguments)] // one call site; the args are the run parameters
fn drive_keyed_client(
    addr: &str,
    shard: u16,
    epoch: u64,
    keys: &[String],
    depth: usize,
    write_pct: u64,
    seed: u64,
    end: Instant,
) -> ClientRun {
    let conn = Connection::new(addr, ConnOptions::default());
    let mut jitter = dynvote_store::jitter::Jitter::new(seed);
    let payload = vec![b'x'; 32];
    let mut run = ClientRun {
        samples: Vec::with_capacity(1 << 16),
        refused: 0,
        errors: 0,
    };
    let mut next_key = 0usize;
    let mut inflight = VecDeque::with_capacity(depth);
    let reap =
        |run: &mut ClientRun,
         (pending, started, is_write): (dynvote_store::conn::Pending, Instant, bool)| {
            let wait_deadline = Deadline::within(Duration::from_secs(10));
            match conn.wait(&pending, &wait_deadline) {
                Ok(outcome) if outcome.granted() => {
                    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                    run.samples.push((micros, is_write));
                }
                Ok(_) => run.refused += 1,
                Err(_) => run.errors += 1,
            }
        };
    while Instant::now() < end {
        while inflight.len() < depth {
            let is_write = jitter.in_range(0, 99) < write_pct;
            let key = keys[next_key % keys.len()].clone();
            next_key += 1;
            let frame = if is_write {
                Frame::PutKey {
                    epoch,
                    shard,
                    key,
                    value: payload.clone(),
                }
            } else {
                Frame::GetKey { epoch, shard, key }
            };
            let submit_deadline = Deadline::within(Duration::from_secs(10));
            match conn.submit(&frame, &submit_deadline) {
                Ok(pending) => inflight.push_back((pending, Instant::now(), is_write)),
                Err(_) => {
                    run.errors += 1;
                    break;
                }
            }
        }
        let Some(oldest) = inflight.pop_front() else {
            break;
        };
        reap(&mut run, oldest);
    }
    for leftover in inflight {
        reap(&mut run, leftover);
    }
    run
}

/// The `q`-th percentile (0.0–1.0) of a sorted sample vector, in µs.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn histogram_object(mut samples: Vec<u64>) -> String {
    samples.sort_unstable();
    format!(
        r#"{{ "count": {count}, "p50_us": {p50}, "p99_us": {p99}, "p999_us": {p999}, "max_us": {max} }}"#,
        count = samples.len(),
        p50 = percentile(&samples, 0.50),
        p99 = percentile(&samples, 0.99),
        p999 = percentile(&samples, 0.999),
        max = samples.last().copied().unwrap_or(0),
    )
}

fn histogram_json(label: &str, samples: Vec<u64>) -> String {
    format!(r#""{label}": {}"#, histogram_object(samples))
}

/// The `--shards N` mode: keyed workload, one coordinator connection
/// per shard, per-shard latency breakdown and a fairness summary in
/// `BENCH_shard.json`.
fn run_sharded(args: &Args) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!(
        "booting {} x {} loopback fleet ({} shards) ...",
        args.sites, args.policy, args.shards
    );
    let (handles, addrs) = boot_fleet(&args.policy, args.sites, args.shards);
    let map = dynvote_store::router::fetch_map(&addrs[0], Duration::from_secs(5))
        .expect("shard map from the fleet");
    assert_eq!(map.shards.len(), args.shards, "fleet built the wrong map");

    // Pre-hash a key pool onto every shard, then warm each key with
    // one routed write — a `GetKey` on a never-written key is a typed
    // refusal, which the fault-free gate below counts as a failure.
    const KEYS_PER_SHARD: usize = 64;
    let mut pools: Vec<Vec<String>> = vec![Vec::new(); args.shards];
    let mut probe = 0u64;
    while pools.iter().any(|pool| pool.len() < KEYS_PER_SHARD) {
        let key = format!("bench-{probe}");
        probe += 1;
        let shard = map.shard_of(key.as_bytes()) as usize;
        if pools[shard].len() < KEYS_PER_SHARD {
            pools[shard].push(key);
        }
    }
    let router =
        dynvote_store::router::ShardRouter::new(vec![addrs[0].clone()], ConnOptions::default());
    for pool in &pools {
        for key in pool {
            let deadline = Deadline::within(Duration::from_secs(10));
            let outcome = router.put(key, b"warm", &deadline).expect("warmup put");
            assert!(outcome.granted(), "warmup put {key}: {outcome:?}");
        }
    }

    // One driver thread per shard slice; thread i owns shard i % N, so
    // every shard always has at least one closed loop on it.
    let threads = args.clients.max(args.shards);
    eprintln!(
        "driving: {threads} keyed clients x pipeline {} at {}% writes for {:.1}s ...",
        args.pipeline, args.write_pct, args.secs
    );
    let started = Instant::now();
    let end = started + Duration::from_secs_f64(args.secs);
    let runs: Vec<(usize, ClientRun)> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..threads)
            .map(|i| {
                let shard = i % args.shards;
                let addr = map
                    .coordinator_addr(shard as u16)
                    .expect("coordinator addr");
                let pool = &pools[shard];
                let epoch = map.epoch;
                scope.spawn(move || {
                    (
                        shard,
                        drive_keyed_client(
                            addr,
                            shard as u16,
                            epoch,
                            pool,
                            args.pipeline,
                            args.write_pct,
                            0x5eed_1000 + i as u64,
                            end,
                        ),
                    )
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|t| t.join().expect("keyed client thread"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();

    let mut all: Vec<u64> = Vec::new();
    let mut writes: Vec<u64> = Vec::new();
    let mut reads: Vec<u64> = Vec::new();
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); args.shards];
    let mut refused = 0u64;
    let mut errors = 0u64;
    for (shard, run) in runs {
        refused += run.refused;
        errors += run.errors;
        for (micros, is_write) in run.samples {
            all.push(micros);
            per_shard[shard].push(micros);
            if is_write {
                writes.push(micros);
            } else {
                reads.push(micros);
            }
        }
    }
    let completed = all.len() as u64;
    let rps = completed as f64 / wall;
    assert!(
        errors == 0 && refused == 0,
        "fault-free sharded run saw {refused} refusals / {errors} errors"
    );

    // The per-shard breakdown and the single-core fairness summary.
    let shard_rps: Vec<f64> = per_shard
        .iter()
        .map(|samples| samples.len() as f64 / wall)
        .collect();
    let min_rps = shard_rps.iter().copied().fold(f64::INFINITY, f64::min);
    let max_rps = shard_rps.iter().copied().fold(0.0f64, f64::max);
    let per_shard_json = per_shard
        .iter()
        .enumerate()
        .map(|(shard, samples)| {
            format!(
                r#"    "{shard}": {{ "requests_per_sec": {rps:.0}, "latency": {hist} }}"#,
                rps = shard_rps[shard],
                hist = histogram_object(samples.clone()),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        r#"{{
  "generated_by": "cargo run --release -p dynvote-bench --bin store_throughput -- --shards {shards}",
  "machine": {{ "cores": {cores} }},
  "cluster": {{ "policy": "{policy}", "sites": {sites}, "shards": {shards}, "placement": "ring:3", "durable": false }},
  "workload": {{ "clients": {threads}, "pipeline_depth": {pipeline}, "write_pct": {write_pct}, "payload_bytes": 32, "keys_per_shard": {keys_per_shard}, "secs": {wall:.3} }},
  "completed_requests": {completed},
  "requests_per_sec": {rps:.0},
  {hist_all},
  {hist_writes},
  {hist_reads},
  "per_shard": {{
{per_shard_json}
  }},
  "fairness": {{ "min_shard_rps": {min_rps:.0}, "max_shard_rps": {max_rps:.0}, "max_over_min": {ratio:.3} }},
  "note": "keyed closed-loop over {shards} independent shard groups, one pipelined coordinator connection per shard; on a multi-core host the aggregate scales with shards (independent quorums and batch commits) — on a single core the gated property is fairness (max_over_min near 1) with the aggregate within noise of one shard"
}}
"#,
        shards = args.shards,
        policy = args.policy,
        sites = args.sites,
        pipeline = args.pipeline,
        write_pct = args.write_pct,
        keys_per_shard = KEYS_PER_SHARD,
        hist_all = histogram_json("latency", all),
        hist_writes = histogram_json("write_latency", writes),
        hist_reads = histogram_json("read_latency", reads),
        ratio = if min_rps > 0.0 {
            max_rps / min_rps
        } else {
            f64::INFINITY
        },
    );

    for handle in handles {
        handle.stop();
    }
    let out = args.out.clone().unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json").to_string()
    });
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    });
    eprint!("{json}");
    eprintln!("wrote {out} ({rps:.0} req/s over {} shards)", args.shards);
}

fn main() {
    let args = parse_args();
    if args.shards > 0 {
        run_sharded(&args);
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!(
        "booting {} x {} loopback fleet ...",
        args.sites, args.policy
    );
    let (handles, addrs) = boot_fleet(&args.policy, args.sites, 0);
    let target = addrs[0].clone();

    eprintln!(
        "driving: {} clients x pipeline {} at {}% writes for {:.1}s ...",
        args.clients, args.pipeline, args.write_pct, args.secs
    );
    let started = Instant::now();
    let end = started + Duration::from_secs_f64(args.secs);
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..args.clients)
            .map(|i| {
                let target = &target;
                scope.spawn(move || {
                    drive_client(
                        target,
                        args.pipeline,
                        args.write_pct,
                        0x5eed_0000 + i as u64,
                        end,
                    )
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();

    let mut all: Vec<u64> = Vec::new();
    let mut writes: Vec<u64> = Vec::new();
    let mut reads: Vec<u64> = Vec::new();
    let mut refused = 0u64;
    let mut errors = 0u64;
    for run in runs {
        refused += run.refused;
        errors += run.errors;
        for (micros, is_write) in run.samples {
            all.push(micros);
            if is_write {
                writes.push(micros);
            } else {
                reads.push(micros);
            }
        }
    }
    let completed = all.len() as u64;
    let rps = completed as f64 / wall;
    assert!(
        errors == 0 && refused == 0,
        "fault-free loopback run saw {refused} refusals / {errors} errors"
    );

    let json = format!(
        r#"{{
  "generated_by": "cargo run --release -p dynvote-bench --bin store_throughput",
  "machine": {{ "cores": {cores} }},
  "cluster": {{ "policy": "{policy}", "sites": {sites}, "durable": false }},
  "workload": {{ "clients": {clients}, "pipeline_depth": {pipeline}, "write_pct": {write_pct}, "payload_bytes": 32, "secs": {wall:.3} }},
  "completed_requests": {completed},
  "requests_per_sec": {rps:.0},
  {hist_all},
  {hist_writes},
  {hist_reads},
  "note": "closed-loop, in-process loopback fleet; persistent pipelined connections (correlation-id frames) and batched quorum commits; latency includes pipeline queueing"
}}
"#,
        policy = args.policy,
        sites = args.sites,
        clients = args.clients,
        pipeline = args.pipeline,
        write_pct = args.write_pct,
        hist_all = histogram_json("latency", all),
        hist_writes = histogram_json("write_latency", writes),
        hist_reads = histogram_json("read_latency", reads),
    );

    for handle in handles {
        handle.stop();
    }
    let out = args.out.clone().unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json").to_string()
    });
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    });
    eprint!("{json}");
    eprintln!("wrote {out} ({rps:.0} req/s)");
}
