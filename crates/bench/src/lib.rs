#![warn(missing_docs)]

//! Criterion benchmarks for the dynamic-voting workspace.
//!
//! The measurable claims live in `benches/`:
//!
//! * `decision` — latency of Algorithm 1 under each rule and copy count
//!   (the paper's efficiency claim: the optimistic decision is a handful
//!   of set operations on information gathered at access time);
//! * `simulator` — events/second of the availability study, the cost of
//!   regenerating Tables 2 and 3;
//! * `replica_ops` — message-level operation latency and message counts
//!   per protocol (the "much the same message traffic as MCV" claim);
//! * `analytic` — exact CTMC model construction + solve cost.
//!
//! Availability-number ablations (lexicon direction, rejoin timing,
//! access rates) live in `dynvote-experiments` — they measure protocol
//! quality, not wall-clock time.
//!
//! This library crate intentionally exports nothing; it exists so the
//! bench targets have a home in the workspace.
