//! Exact availability models for the tractable special cases.
//!
//! Assumptions throughout (the Pâris–Burkhard setting): *n* identical
//! sites, exponential times-to-fail (mean `mttf`) and exponential
//! repairs (mean `mttr`, independent repair crews), a fully-connected
//! network (no partitions). Under these assumptions:
//!
//! * **MCV** availability is a binomial tail — each site is up
//!   independently with probability `A = mttf / (mttf + mttr)`;
//! * **DV / LDV / Available Copy** are finite CTMCs over
//!   `(up-set, protocol-state)` pairs with *instantaneous* state
//!   exchange, built by reachability search from the all-up state and
//!   solved exactly;
//! * **ODV** adds one more exponential event stream — Poisson file
//!   accesses at rate `λ_a` — and exchanges state *only* at those
//!   events, so even the optimistic protocol has an exact chain here.
//!
//! The integration tests drive the discrete-event simulator with the
//! same parameters and check agreement, validating the whole simulation
//! stack (queue, distributions, driver, policies, statistics).

use std::collections::HashMap;

use crate::ctmc::Ctmc;

/// The parameters of the identical-site, fully-connected system.
#[derive(Clone, Copy, Debug)]
pub struct ParSystem {
    /// Number of replica sites.
    pub n: usize,
    /// Mean time to fail of each site (any time unit).
    pub mttf: f64,
    /// Mean time to repair (same unit).
    pub mttr: f64,
}

impl ParSystem {
    /// Per-site steady-state availability.
    #[must_use]
    pub fn site_availability(&self) -> f64 {
        site_availability(self.mttf, self.mttr)
    }
}

/// Steady-state availability of a single repairable site:
/// `MTTF / (MTTF + MTTR)`.
#[must_use]
pub fn site_availability(mttf: f64, mttr: f64) -> f64 {
    mttf / (mttf + mttr)
}

fn binomial(n: usize, k: usize) -> f64 {
    let mut result = 1.0f64;
    for i in 0..k.min(n - k) {
        result = result * (n - i) as f64 / (i + 1) as f64;
    }
    result
}

/// Exact MCV unavailability: the probability that fewer than
/// `⌊n/2⌋ + 1` of the `n` sites are up.
///
/// # Panics
///
/// Panics when `sys.n == 0`.
#[must_use]
pub fn mcv_unavailability(sys: &ParSystem) -> f64 {
    assert!(sys.n > 0, "at least one copy required");
    let a = sys.site_availability();
    let quorum = sys.n / 2 + 1;
    (0..quorum)
        .map(|k| binomial(sys.n, k) * a.powi(k as i32) * (1.0 - a).powi((sys.n - k) as i32))
        .sum()
}

// ---------------------------------------------------------------------------
// The generic (up-set, protocol-state) chain builder.
// ---------------------------------------------------------------------------

/// A protocol abstracted for exact analysis: a word of protocol state
/// (e.g. the partition set as a bitmask), an availability predicate,
/// and a state-exchange (sync) function.
struct ChainProtocol {
    /// Would an access be granted in `(up, state)`?
    grants: Box<dyn Fn(u32, u32) -> bool>,
    /// The state after one state-exchange opportunity in `(up, state)`.
    sync: Box<dyn Fn(u32, u32) -> u32>,
}

impl ChainProtocol {
    fn from_fns(grants: fn(u32, u32) -> bool, sync: fn(u32, u32) -> u32) -> Self {
        ChainProtocol {
            grants: Box::new(grants),
            sync: Box::new(sync),
        }
    }
}

/// A fully built protocol chain, ready for steady-state or
/// first-passage analysis.
struct BuiltChain {
    chain: Ctmc,
    states: Vec<(u32, u32)>,
    grants: Box<dyn Fn(u32, u32) -> bool>,
}

impl BuiltChain {
    /// Steady-state unavailability: probability mass on non-granting
    /// states.
    fn unavailability(&self) -> f64 {
        let pi = self.chain.steady_state();
        self.states
            .iter()
            .zip(&pi)
            .filter(|(&(up, st), _)| !(self.grants)(up, st))
            .map(|(_, &prob)| prob)
            .sum()
    }

    /// Reliability: mean time from the fresh all-up state until the
    /// file *first* becomes unavailable.
    fn mttf(&self) -> f64 {
        let targets: Vec<bool> = self
            .states
            .iter()
            .map(|&(up, st)| !(self.grants)(up, st))
            .collect();
        self.chain.mean_first_passage(0, &targets)
    }
}

/// Builds the exact chain for `proto` on `sys`.
///
/// `access_rate` selects the state-exchange semantics:
/// * `None` — *instantaneous*: a sync runs at every up-set change (the
///   connection-vector protocols DV, LDV, AC);
/// * `Some(λ)` — *optimistic*: syncs run only at Poisson(λ) access
///   events, so `(up, state)` pairs with stale state are first-class
///   chain states (ODV).
fn build_chain(sys: &ParSystem, proto: ChainProtocol, access_rate: Option<f64>) -> BuiltChain {
    assert!(sys.n >= 1 && sys.n <= 16, "chain built for 1..=16 sites");
    let n = sys.n;
    let all: u32 = (1u32 << n) - 1;
    let lambda = 1.0 / sys.mttf;
    let mu = 1.0 / sys.mttr;

    let effective = |up: u32, state: u32| -> u32 {
        match access_rate {
            None => (proto.sync)(up, state),
            Some(_) => state, // optimistic: topology changes do not sync
        }
    };

    // Reachability search over (up, state) from the all-up, all-synced
    // start.
    let start = (all, (proto.sync)(all, all));
    let mut index: HashMap<(u32, u32), usize> = HashMap::new();
    let mut states: Vec<(u32, u32)> = vec![start];
    index.insert(start, 0);
    let mut stack = vec![start];
    let mut successors: Vec<(u32, u32)> = Vec::new();
    while let Some((up, st)) = stack.pop() {
        successors.clear();
        for site in 0..n {
            let up2 = up ^ (1u32 << site);
            successors.push((up2, effective(up2, st)));
        }
        if access_rate.is_some() {
            successors.push((up, (proto.sync)(up, st)));
        }
        for &next in &successors {
            if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(next) {
                slot.insert(states.len());
                states.push(next);
                stack.push(next);
            }
        }
    }

    let mut chain = Ctmc::new(states.len());
    for (i, &(up, st)) in states.iter().enumerate() {
        for site in 0..n {
            let bit = 1u32 << site;
            let (rate, up2) = if up & bit != 0 {
                (lambda, up & !bit)
            } else {
                (mu, up | bit)
            };
            let j = index[&(up2, effective(up2, st))];
            if i != j {
                chain.add_rate(i, j, rate);
            }
        }
        if let Some(acc) = access_rate {
            let j = index[&(up, (proto.sync)(up, st))];
            if i != j {
                chain.add_rate(i, j, acc);
            }
        }
    }

    BuiltChain {
        chain,
        states,
        grants: proto.grants,
    }
}

fn chain_unavailability(sys: &ParSystem, proto: ChainProtocol, access_rate: Option<f64>) -> f64 {
    build_chain(sys, proto, access_rate).unavailability()
}

// ---------------------------------------------------------------------------
// Concrete protocols.
// ---------------------------------------------------------------------------

/// Dynamic-voting grant: a strict majority of the partition set `p`,
/// without tie-break.
fn dv_grants(up: u32, p: u32) -> bool {
    2 * (up & p).count_ones() > p.count_ones()
}

fn dv_sync(up: u32, p: u32) -> u32 {
    if up != 0 && dv_grants(up, p) {
        up
    } else {
        p
    }
}

/// Lexicographic grant: majority, or exactly half including `max(p)` —
/// the lowest set bit under the default (descending-priority) lexicon.
fn ldv_grants(up: u32, p: u32) -> bool {
    let q = (up & p).count_ones();
    let c = p.count_ones();
    if 2 * q > c {
        return true;
    }
    if 2 * q == c && c > 0 {
        let max_site = p.trailing_zeros();
        return up & (1 << max_site) != 0;
    }
    false
}

fn ldv_sync(up: u32, p: u32) -> u32 {
    if up != 0 && ldv_grants(up, p) {
        up
    } else {
        p
    }
}

/// Available-Copy grant: some up site holds current data (`state` is
/// the current set).
fn ac_grants(up: u32, current: u32) -> bool {
    up & current != 0
}

fn ac_sync(up: u32, current: u32) -> u32 {
    if up & current != 0 {
        up
    } else {
        current
    }
}

/// Exact unavailability of original Dynamic Voting (no tie-break) with
/// instantaneous state exchange.
#[must_use]
pub fn dv_unavailability(sys: &ParSystem) -> f64 {
    chain_unavailability(sys, dv_proto(), None)
}

/// Exact unavailability of Lexicographic Dynamic Voting with
/// instantaneous state exchange.
#[must_use]
pub fn ldv_unavailability(sys: &ParSystem) -> f64 {
    chain_unavailability(sys, ldv_proto(), None)
}

/// Exact unavailability of **Optimistic** Dynamic Voting: the LDV rule
/// with state exchanged only at Poisson accesses of the given rate
/// (in events per the same time unit as `mttf`/`mttr`).
///
/// As `access_rate → ∞` this converges to [`ldv_unavailability`]; as
/// `access_rate → 0` the quorum fossilizes at the initial all-copies
/// partition set and the model approaches static majority voting.
#[must_use]
pub fn odv_unavailability(sys: &ParSystem, access_rate: f64) -> f64 {
    assert!(access_rate > 0.0, "the optimistic chain needs accesses");
    chain_unavailability(sys, ldv_proto(), Some(access_rate))
}

/// Exact unavailability of the Available-Copy protocol (instantaneous
/// resynchronization, non-partitionable network): unavailable only while
/// no holder of the latest data is up.
#[must_use]
pub fn ac_unavailability(sys: &ParSystem) -> f64 {
    chain_unavailability(sys, ac_proto(), None)
}

/// Topological (TDV) grant over a static segment map: `Q ∪ claimed`
/// against `p`, where a member of `p` is claimed iff it shares a
/// segment with a present member of `p`; the tie-break consults the
/// *present* members only (Figures 5–7).
fn tdv_grants(up: u32, p: u32, segments: &[u32]) -> bool {
    let present = up & p;
    if present == 0 {
        return false;
    }
    let mut t = 0u32;
    for &segment in segments {
        if present & segment != 0 {
            t |= p & segment;
        }
    }
    let count = t.count_ones();
    let c = p.count_ones();
    if 2 * count > c {
        return true;
    }
    if 2 * count == c {
        let max_site = p.trailing_zeros();
        return present & (1 << max_site) != 0;
    }
    false
}

fn tdv_proto(segments: Vec<u32>) -> ChainProtocol {
    let seg2 = segments.clone();
    ChainProtocol {
        grants: Box::new(move |up, p| tdv_grants(up, p, &segments)),
        sync: Box::new(move |up, p| {
            if up != 0 && tdv_grants(up, p, &seg2) {
                up
            } else {
                p
            }
        }),
    }
}

/// Exact unavailability of Topological Dynamic Voting on identical
/// sites grouped into the given non-partitionable `segments` (bitmask
/// per segment; the masks must partition the first `sys.n` bits).
///
/// With every site on its own segment this equals
/// [`ldv_unavailability`]; with all sites on one segment it equals
/// [`ac_unavailability`] — the paper's two degenerate-case claims,
/// both verified in the tests. Because segments never partition in
/// this model, the intermediate cases isolate the pure effect of vote
/// claiming.
///
/// Note: the chain reproduces Figures 5–7 *as published*, including
/// the sequential-claim forks after co-segment total failures — the
/// unavailability it reports counts rival blocks as available, exactly
/// like the simulator.
#[must_use]
pub fn tdv_unavailability(sys: &ParSystem, segments: &[u32]) -> f64 {
    validate_segments(sys, segments);
    chain_unavailability(sys, tdv_proto(segments.to_vec()), None)
}

/// Mean time until Topological Dynamic Voting first becomes
/// unavailable (see [`tdv_unavailability`] for the segment encoding).
#[must_use]
pub fn tdv_mttf(sys: &ParSystem, segments: &[u32]) -> f64 {
    validate_segments(sys, segments);
    build_chain(sys, tdv_proto(segments.to_vec()), None).mttf()
}

fn validate_segments(sys: &ParSystem, segments: &[u32]) {
    let all: u32 = (1u32 << sys.n) - 1;
    let mut union = 0u32;
    for &segment in segments {
        assert_eq!(union & segment, 0, "segments must be disjoint");
        union |= segment;
    }
    assert_eq!(union, all, "segments must cover all sites");
}

// ---------------------------------------------------------------------------
// Reliability (mean time to first unavailability).
// ---------------------------------------------------------------------------

fn dv_proto() -> ChainProtocol {
    ChainProtocol::from_fns(dv_grants, dv_sync)
}
fn ldv_proto() -> ChainProtocol {
    ChainProtocol::from_fns(ldv_grants, ldv_sync)
}
fn ac_proto() -> ChainProtocol {
    ChainProtocol::from_fns(ac_grants, ac_sync)
}

/// Mean time (same unit as `mttf`/`mttr`) from the fresh all-up state
/// until static majority voting first loses its quorum.
///
/// MCV keeps no adjustable state; the chain's state word is fixed at
/// the all-copies mask, whose popcount gives the total `n` for the
/// static quorum test.
#[must_use]
pub fn mcv_mttf(sys: &ParSystem) -> f64 {
    build_chain(
        sys,
        ChainProtocol::from_fns(
            |up, all| 2 * up.count_ones() > all.count_ones(),
            |_up, all| all,
        ),
        None,
    )
    .mttf()
}

/// Mean time until original Dynamic Voting first becomes unavailable.
#[must_use]
pub fn dv_mttf(sys: &ParSystem) -> f64 {
    build_chain(sys, dv_proto(), None).mttf()
}

/// Mean time until Lexicographic Dynamic Voting first becomes
/// unavailable.
#[must_use]
pub fn ldv_mttf(sys: &ParSystem) -> f64 {
    build_chain(sys, ldv_proto(), None).mttf()
}

/// Mean time until the Available-Copy protocol first becomes
/// unavailable (i.e. until the last current copy dies).
#[must_use]
pub fn ac_mttf(sys: &ParSystem) -> f64 {
    build_chain(sys, ac_proto(), None).mttf()
}

/// Mean time until Optimistic Dynamic Voting (accesses at `access_rate`)
/// first becomes unavailable.
///
/// # Panics
///
/// Panics when `access_rate` is not strictly positive.
#[must_use]
pub fn odv_mttf(sys: &ParSystem, access_rate: f64) -> f64 {
    assert!(access_rate > 0.0, "the optimistic chain needs accesses");
    build_chain(sys, ldv_proto(), Some(access_rate)).mttf()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(n: usize) -> ParSystem {
        ParSystem {
            n,
            mttf: 10.0,
            mttr: 1.0,
        }
    }

    #[test]
    fn binomial_coefficients() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(8, 4), 70.0);
    }

    #[test]
    fn single_copy_equals_site_unavailability() {
        let s = sys(1);
        let u = 1.0 - s.site_availability();
        for model in [
            mcv_unavailability(&s),
            dv_unavailability(&s),
            ldv_unavailability(&s),
            ac_unavailability(&s),
            odv_unavailability(&s, 3.0),
        ] {
            assert!((model - u).abs() < 1e-12, "{model} vs {u}");
        }
    }

    #[test]
    fn mcv_three_copies_closed_form() {
        let s = sys(3);
        let a = s.site_availability();
        // Unavailable iff 0 or 1 up.
        let expect = (1.0 - a).powi(3) + 3.0 * a * (1.0 - a) * (1.0 - a);
        assert!((mcv_unavailability(&s) - expect).abs() < 1e-12);
    }

    #[test]
    fn ldv_beats_dv() {
        for n in 2..=5 {
            let s = sys(n);
            assert!(
                ldv_unavailability(&s) <= dv_unavailability(&s) + 1e-15,
                "n = {n}"
            );
        }
    }

    #[test]
    fn dv_three_copies_worse_than_mcv() {
        // The Pâris–Burkhard result the paper repeats: for three copies
        // DV is *more* restrictive than MCV.
        let s = sys(3);
        assert!(dv_unavailability(&s) > mcv_unavailability(&s));
    }

    #[test]
    fn ldv_five_copies_beats_mcv() {
        let s = sys(5);
        assert!(ldv_unavailability(&s) < mcv_unavailability(&s));
    }

    #[test]
    fn available_copy_dominates_everything() {
        // AC needs only one surviving current copy: on a partition-free
        // network it lower-bounds every voting scheme.
        for n in 2..=5 {
            let s = sys(n);
            let ac = ac_unavailability(&s);
            assert!(ac <= mcv_unavailability(&s));
            assert!(ac <= ldv_unavailability(&s));
        }
    }

    #[test]
    fn ac_two_copies_closed_form() {
        // With instantaneous resync, the only unavailable states are
        // "all down": from all-up, failures must take down the last
        // current holder. For n = 2 the chain is small enough to check
        // against an independently derived value: unavailability =
        // P(both down and the last-down site still down), which for
        // identical exponential sites is P(both down) (the current set
        // always contains the most recent survivor, who is down too).
        let s = sys(2);
        let a = s.site_availability();
        let both_down = (1.0 - a) * (1.0 - a);
        let ac = ac_unavailability(&s);
        // AC can also be unavailable when the last holder is down but
        // the *other* site is back up (it holds stale data): so the
        // exact value exceeds P(both down) but is below P(either down).
        assert!(ac >= both_down);
        assert!(ac < 1.0 - a);
    }

    #[test]
    fn odv_converges_to_ldv_with_fast_access() {
        for n in [2usize, 3, 4] {
            let s = sys(n);
            let ldv = ldv_unavailability(&s);
            let odv_fast = odv_unavailability(&s, 1e4);
            assert!(
                (odv_fast - ldv).abs() < 1e-4,
                "n = {n}: odv(∞) = {odv_fast}, ldv = {ldv}"
            );
        }
    }

    #[test]
    fn odv_is_monotone_in_access_rate_here() {
        // On the identical-site system, fresher information can only
        // help (the paper's configuration-F inversion needs asymmetric
        // repair times and a partition point).
        let s = sys(3);
        let slow = odv_unavailability(&s, 0.1);
        let mid = odv_unavailability(&s, 1.0);
        let fast = odv_unavailability(&s, 10.0);
        assert!(slow >= mid && mid >= fast, "{slow} >= {mid} >= {fast}");
    }

    #[test]
    fn odv_never_beats_ldv_on_symmetric_systems() {
        for n in 2..=4 {
            let s = sys(n);
            assert!(odv_unavailability(&s, 1.0) >= ldv_unavailability(&s) - 1e-12);
        }
    }

    #[test]
    fn single_copy_mttf_is_site_mttf() {
        let s = sys(1);
        for (name, mttf) in [
            ("mcv", mcv_mttf(&s)),
            ("dv", dv_mttf(&s)),
            ("ldv", ldv_mttf(&s)),
            ("ac", ac_mttf(&s)),
        ] {
            assert!((mttf - 10.0).abs() < 1e-9, "{name}: {mttf}");
        }
    }

    #[test]
    fn mttf_orderings_match_availability_orderings() {
        // More permissive protocols live longer before the first outage.
        for n in 2..=5 {
            let s = sys(n);
            assert!(ldv_mttf(&s) >= dv_mttf(&s) - 1e-9, "n = {n}");
            assert!(ac_mttf(&s) >= ldv_mttf(&s) - 1e-9, "n = {n}");
        }
        // Note: DV's *first* outage from the fresh state coincides with
        // MCV's (two failures faster than one repair) — the Table 2 gap
        // between them is a steady-state effect (DV stays stuck after a
        // tie), not a first-passage one.
        let s = sys(3);
        assert!((dv_mttf(&s) - mcv_mttf(&s)).abs() < 1e-6);
        assert!(dv_unavailability(&s) > mcv_unavailability(&s));
    }

    #[test]
    fn mttf_grows_with_copies_for_ldv() {
        let base = ldv_mttf(&sys(2));
        let more = ldv_mttf(&sys(4));
        assert!(more > base, "{more} should exceed {base}");
    }

    #[test]
    fn odv_mttf_approaches_ldv_with_fast_access() {
        let s = sys(3);
        let ldv = ldv_mttf(&s);
        let odv = odv_mttf(&s, 1e4);
        assert!(
            (odv - ldv).abs() / ldv < 1e-2,
            "odv(fast) = {odv}, ldv = {ldv}"
        );
        // And a slow ODV dies sooner (stale quorums).
        assert!(odv_mttf(&s, 0.1) <= ldv + 1e-9);
    }

    #[test]
    fn two_copy_ldv_mttf_equals_max_site_mttf() {
        // With two copies the file is available exactly while site 0
        // (the tie winner) is up: its first outage is site 0's first
        // failure, so the file MTTF equals one site MTTF exactly.
        let s = sys(2);
        assert!((ldv_mttf(&s) - s.mttf).abs() < 1e-9);
        // DV dies at the first failure of *either* site: half the MTTF.
        assert!((dv_mttf(&s) - s.mttf / 2.0).abs() < 1e-9);
        // AC survives until both are down simultaneously: much longer.
        assert!(ac_mttf(&s) > 5.0 * s.mttf);
    }

    #[test]
    fn tdv_degenerate_cases_match_the_paper_claims() {
        for n in 2..=5usize {
            let s = sys(n);
            let all_separate: Vec<u32> = (0..n).map(|i| 1u32 << i).collect();
            assert!(
                (tdv_unavailability(&s, &all_separate) - ldv_unavailability(&s)).abs() < 1e-12,
                "n = {n}: separate segments ⇒ TDV ≡ LDV"
            );
            let one_segment = vec![(1u32 << n) - 1];
            assert!(
                (tdv_unavailability(&s, &one_segment) - ac_unavailability(&s)).abs() < 1e-12,
                "n = {n}: one segment ⇒ TDV ≡ Available Copy"
            );
        }
    }

    #[test]
    fn tdv_intermediate_segmentation_is_intermediate() {
        // 4 sites: {0,1} share a segment, {2}, {3} separate — strictly
        // between LDV (no claims) and AC (all claims).
        let s = sys(4);
        let mixed = tdv_unavailability(&s, &[0b0011, 0b0100, 0b1000]);
        assert!(mixed <= ldv_unavailability(&s) + 1e-15);
        assert!(mixed >= ac_unavailability(&s) - 1e-15);
    }

    #[test]
    fn tdv_mttf_degenerates_too() {
        let s = sys(3);
        let all_separate = [0b001u32, 0b010, 0b100];
        assert!((tdv_mttf(&s, &all_separate) - ldv_mttf(&s)).abs() < 1e-9);
        assert!((tdv_mttf(&s, &[0b111]) - ac_mttf(&s)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "segments must cover")]
    fn tdv_segments_must_cover() {
        let _ = tdv_unavailability(&sys(3), &[0b001]);
    }

    #[test]
    #[should_panic(expected = "segments must be disjoint")]
    fn tdv_segments_must_be_disjoint() {
        let _ = tdv_unavailability(&sys(3), &[0b011, 0b110]);
    }

    #[test]
    fn grants_logic() {
        // P = {0, 1, 2} (bits 0b111): two up is a strict majority.
        assert!(dv_grants(0b011, 0b111));
        assert!(!dv_grants(0b001, 0b111));
        // P = {0, 1}: one up is a tie; bit 0 is max(P).
        assert!(!dv_grants(0b01, 0b11));
        assert!(ldv_grants(0b01, 0b11));
        assert!(!ldv_grants(0b10, 0b11));
        // Empty up set never grants.
        assert!(!ldv_grants(0, 0b11));
        // AC: any up current copy.
        assert!(ac_grants(0b10, 0b11));
        assert!(!ac_grants(0b10, 0b01));
    }

    #[test]
    fn reasonable_magnitudes() {
        // With MTTF/MTTR = 10, three-copy LDV should be far better than
        // one copy and a bit better than MCV.
        let s = sys(3);
        let one = 1.0 - s.site_availability();
        let ldv = ldv_unavailability(&s);
        let mcv = mcv_unavailability(&s);
        assert!(ldv < mcv);
        assert!(mcv < one);
    }
}
