#![warn(missing_docs)]

//! Continuous-time Markov-chain models cross-validating the simulator.
//!
//! The paper's predecessors (Pâris–Burkhard) analyzed dynamic voting with
//! Markov chains on fully-connected networks of identical sites; the
//! paper itself turned to simulation because realistic repair
//! distributions and partitions make chains intractable. This crate
//! walks the same path in reverse: for the *tractable* special cases —
//! exponential failures and repairs, no partitions — it solves the chain
//! exactly, and the integration tests check the simulator against the
//! closed form, validating the simulation machinery end to end.
//!
//! * [`ctmc`] — a dense steady-state solver for finite CTMCs,
//! * [`models`] — availability models: MCV (binomial closed form), and
//!   DV / LDV as explicit chains over `(partition-set size, up members)`.

pub mod ctmc;
pub mod models;

pub use ctmc::Ctmc;
pub use models::{
    ac_mttf, ac_unavailability, dv_mttf, dv_unavailability, ldv_mttf, ldv_unavailability, mcv_mttf,
    mcv_unavailability, odv_mttf, odv_unavailability, site_availability, tdv_mttf,
    tdv_unavailability, ParSystem,
};
