//! A dense steady-state solver for finite continuous-time Markov chains.

/// A finite CTMC described by its transition rates.
///
/// States are dense indices `0..n`. The steady-state distribution π
/// solves `π Q = 0` with `Σ π = 1`, where `Q` is the infinitesimal
/// generator (off-diagonal entries are the supplied rates, diagonals
/// make rows sum to zero). The solver does Gaussian elimination with
/// partial pivoting on the transposed system — entirely adequate for
/// the few-hundred-state protocol chains this crate builds.
///
/// # Examples
///
/// A two-state up/down machine with failure rate 1 and repair rate 3
/// is down a quarter of the time:
///
/// ```
/// use dynvote_analytic::Ctmc;
///
/// let mut chain = Ctmc::new(2);
/// chain.add_rate(0, 1, 1.0); // up → down
/// chain.add_rate(1, 0, 3.0); // down → up
/// let pi = chain.steady_state();
/// assert!((pi[1] - 0.25).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct Ctmc {
    n: usize,
    /// Row-major off-diagonal rates; `rates[i * n + j]` is the rate
    /// from state `i` to state `j`.
    rates: Vec<f64>,
}

impl Ctmc {
    /// A chain with `n` states and no transitions.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a chain needs at least one state");
        Ctmc {
            n,
            rates: vec![0.0; n * n],
        }
    }

    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the chain has no states (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Adds `rate` to the transition `from → to`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range states, self-loops, or negative rates.
    pub fn add_rate(&mut self, from: usize, to: usize, rate: f64) {
        assert!(from < self.n && to < self.n, "state out of range");
        assert_ne!(from, to, "self-loops have no meaning in a CTMC");
        assert!(rate >= 0.0, "rates are non-negative");
        self.rates[from * self.n + to] += rate;
    }

    /// The rate from `from` to `to`.
    #[must_use]
    pub fn rate(&self, from: usize, to: usize) -> f64 {
        self.rates[from * self.n + to]
    }

    /// Total outflow rate of a state.
    #[must_use]
    pub fn exit_rate(&self, state: usize) -> f64 {
        (0..self.n).map(|j| self.rates[state * self.n + j]).sum()
    }

    /// Mean first-passage time from `from` into the set `targets`
    /// (expected time to *first* reach any target state).
    ///
    /// Solves the standard linear system over the non-target states:
    /// `h_i = (1 + Σ_{j∉T} q_ij h_j / q_i) / 1` ⇔
    /// `Σ_j Q[i][j] h_j = -1` with `h_t = 0` for targets `t`. Used for
    /// the *reliability* metric: the mean time until a fresh replicated
    /// file first becomes unavailable.
    ///
    /// Returns `f64::INFINITY` when no target is reachable from `from`,
    /// and `0.0` when `from` is itself a target.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range states.
    #[must_use]
    pub fn mean_first_passage(&self, from: usize, targets: &[bool]) -> f64 {
        let n = self.n;
        assert!(from < n && targets.len() == n, "state out of range");
        if targets[from] {
            return 0.0;
        }
        // Restrict to non-target states.
        let keep: Vec<usize> = (0..n).filter(|&i| !targets[i]).collect();
        let pos: Vec<Option<usize>> = {
            let mut pos = vec![None; n];
            for (k, &i) in keep.iter().enumerate() {
                pos[i] = Some(k);
            }
            pos
        };
        let m = keep.len();
        // A h = -1 where A is the generator restricted to non-targets.
        let mut a = vec![0.0f64; m * m];
        let mut b = vec![-1.0f64; m];
        for (r, &i) in keep.iter().enumerate() {
            a[r * m + r] = -self.exit_rate(i);
            for (c, &j) in keep.iter().enumerate() {
                if r != c {
                    a[r * m + c] = self.rates[i * n + j];
                }
            }
        }
        // Gaussian elimination with partial pivoting.
        for col in 0..m {
            let pivot_row = (col..m)
                .max_by(|&r1, &r2| {
                    a[r1 * m + col]
                        .abs()
                        .partial_cmp(&a[r2 * m + col].abs())
                        .expect("rates are finite")
                })
                .expect("non-empty range");
            let pivot = a[pivot_row * m + col];
            if pivot.abs() <= 1e-14 {
                // The restricted chain is not absorbing from some state:
                // the targets are unreachable.
                return f64::INFINITY;
            }
            if pivot_row != col {
                for k in 0..m {
                    a.swap(col * m + k, pivot_row * m + k);
                }
                b.swap(col, pivot_row);
            }
            for row in (col + 1)..m {
                let factor = a[row * m + col] / a[col * m + col];
                if factor == 0.0 {
                    continue;
                }
                for k in col..m {
                    a[row * m + k] -= factor * a[col * m + k];
                }
                b[row] -= factor * b[col];
            }
        }
        let mut h = vec![0.0f64; m];
        for row in (0..m).rev() {
            let mut acc = b[row];
            for k in (row + 1)..m {
                acc -= a[row * m + k] * h[k];
            }
            h[row] = acc / a[row * m + row];
        }
        h[pos[from].expect("from is not a target")]
    }

    /// Solves for the steady-state distribution π.
    ///
    /// # Panics
    ///
    /// Panics when the linear system is singular beyond numerical
    /// tolerance — in practice, when the chain is not irreducible over
    /// the states that carry probability.
    #[must_use]
    pub fn steady_state(&self) -> Vec<f64> {
        let n = self.n;
        if n == 1 {
            return vec![1.0];
        }
        // Build A = Qᵀ with the last balance equation replaced by the
        // normalization Σ π = 1; solve A x = b with b = e_n.
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            let diag = -self.exit_rate(i);
            for j in 0..n {
                // Row j of A is the balance equation of state j:
                // Σ_i π_i Q[i][j] = 0  →  A[j][i] = Q[i][j].
                let q_ij = if i == j { diag } else { self.rates[i * n + j] };
                a[j * n + i] = q_ij;
            }
        }
        let mut b = vec![0.0f64; n];
        for i in 0..n {
            a[(n - 1) * n + i] = 1.0;
        }
        b[n - 1] = 1.0;

        // Gaussian elimination with partial pivoting.
        for col in 0..n {
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| {
                    a[r1 * n + col]
                        .abs()
                        .partial_cmp(&a[r2 * n + col].abs())
                        .expect("rates are finite")
                })
                .expect("non-empty range");
            let pivot = a[pivot_row * n + col];
            assert!(
                pivot.abs() > 1e-12,
                "singular balance system: chain not irreducible"
            );
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                b.swap(col, pivot_row);
            }
            for row in (col + 1)..n {
                let factor = a[row * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                b[row] -= factor * b[col];
            }
        }
        // Back substitution.
        let mut x = vec![0.0f64; n];
        for row in (0..n).rev() {
            let mut acc = b[row];
            for k in (row + 1)..n {
                acc -= a[row * n + k] * x[k];
            }
            x[row] = acc / a[row * n + row];
        }
        // Clamp the tiny negative round-off that elimination can leave.
        for v in &mut x {
            if *v < 0.0 && *v > -1e-9 {
                *v = 0.0;
            }
        }
        debug_assert!(
            (x.iter().sum::<f64>() - 1.0).abs() < 1e-6,
            "steady state must normalize"
        );
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_machine() {
        let mut c = Ctmc::new(2);
        c.add_rate(0, 1, 2.0);
        c.add_rate(1, 0, 8.0);
        let pi = c.steady_state();
        assert!((pi[0] - 0.8).abs() < 1e-12);
        assert!((pi[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn birth_death_chain_matches_closed_form() {
        // M/M/1/K-style chain: birth rate λ, death rate μ, K = 4.
        let (lambda, mu, k) = (1.0, 2.0, 4usize);
        let mut c = Ctmc::new(k + 1);
        for i in 0..k {
            c.add_rate(i, i + 1, lambda);
            c.add_rate(i + 1, i, mu);
        }
        let pi = c.steady_state();
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for (i, p) in pi.iter().enumerate() {
            assert!((p - rho.powi(i as i32) / norm).abs() < 1e-10, "state {i}");
        }
    }

    #[test]
    fn independent_sites_factorize() {
        // Two independent up/down sites as one 4-state chain: the
        // steady state must be the product of the marginals.
        let (lf, lr) = (0.1, 1.0);
        let mut c = Ctmc::new(4); // bit 0 = site A up, bit 1 = site B up
        for s in 0..4u32 {
            for site in 0..2 {
                let bit = 1 << site;
                if s & bit != 0 {
                    c.add_rate(s as usize, (s ^ bit) as usize, lf);
                } else {
                    c.add_rate(s as usize, (s ^ bit) as usize, lr);
                }
            }
        }
        let pi = c.steady_state();
        let a = lr / (lf + lr); // P(site up)
        let expect = [(1.0 - a) * (1.0 - a), a * (1.0 - a), (1.0 - a) * a, a * a];
        for (i, p) in pi.iter().enumerate() {
            assert!((p - expect[i]).abs() < 1e-10, "state {i}");
        }
    }

    #[test]
    fn single_state_chain() {
        let c = Ctmc::new(1);
        assert_eq!(c.steady_state(), vec![1.0]);
    }

    #[test]
    fn accumulating_rates() {
        let mut c = Ctmc::new(2);
        c.add_rate(0, 1, 1.0);
        c.add_rate(0, 1, 1.0);
        assert_eq!(c.rate(0, 1), 2.0);
        assert_eq!(c.exit_rate(0), 2.0);
    }

    #[test]
    fn first_passage_single_transition() {
        // up → down at rate λ: mean first-passage time is 1/λ.
        let mut c = Ctmc::new(2);
        c.add_rate(0, 1, 0.25);
        c.add_rate(1, 0, 1.0);
        let h = c.mean_first_passage(0, &[false, true]);
        assert!((h - 4.0).abs() < 1e-12);
        assert_eq!(c.mean_first_passage(1, &[false, true]), 0.0);
    }

    #[test]
    fn first_passage_two_hops() {
        // 0 → 1 → 2, each at rate 1, no repair: h_0 = 2, h_1 = 1.
        let mut c = Ctmc::new(3);
        c.add_rate(0, 1, 1.0);
        c.add_rate(1, 2, 1.0);
        c.add_rate(2, 0, 1.0); // irrelevant for the passage
        let t = [false, false, true];
        assert!((c.mean_first_passage(0, &t) - 2.0).abs() < 1e-12);
        assert!((c.mean_first_passage(1, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_passage_with_backtracking() {
        // Birth-death 0 ↔ 1 → 2: classic h_0 = (λ1 λ2 + μ1 λ2 + ... )
        // checked against the standard recursion h_0 = 1/λ + h_1 where
        // h_1 solves h_1 = 1/(λ+μ) + μ/(λ+μ) h_0.
        let (lam, mu) = (1.0, 3.0);
        let mut c = Ctmc::new(3);
        c.add_rate(0, 1, lam);
        c.add_rate(1, 0, mu);
        c.add_rate(1, 2, lam);
        let t = [false, false, true];
        // Solve the 2x2 recursion by hand:
        // h0 = 1/lam + h1;  h1 = 1/(lam+mu) + (mu/(lam+mu)) h0.
        let h1 = (1.0 / (lam + mu) + mu / (lam + mu) / lam) / (1.0 - mu / (lam + mu));
        let h0 = 1.0 / lam + h1;
        assert!((c.mean_first_passage(0, &t) - h0).abs() < 1e-10);
        assert!((c.mean_first_passage(1, &t) - h1).abs() < 1e-10);
    }

    #[test]
    fn first_passage_unreachable_is_infinite() {
        let mut c = Ctmc::new(3);
        c.add_rate(0, 1, 1.0);
        c.add_rate(1, 0, 1.0);
        // State 2 is disconnected.
        assert!(c.mean_first_passage(0, &[false, false, true]).is_infinite());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        Ctmc::new(2).add_rate(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn disconnected_chain_rejected() {
        // Two absorbing components: no unique steady state.
        let mut c = Ctmc::new(4);
        c.add_rate(0, 1, 1.0);
        c.add_rate(1, 0, 1.0);
        c.add_rate(2, 3, 1.0);
        c.add_rate(3, 2, 1.0);
        let _ = c.steady_state();
    }
}
