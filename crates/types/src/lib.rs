#![warn(missing_docs)]

//! Foundational types shared by every crate in the dynamic-voting workspace.
//!
//! The protocols of Pâris & Long (ICDE 1988) reason about *sites* holding
//! physical copies of a replicated file, *sets* of such sites (partition
//! sets, reachable sets, quorum sets), and — for the weighted-voting
//! extension — per-site *vote* assignments. This crate provides small,
//! allocation-free representations of all three:
//!
//! * [`SiteId`] — a site identifier with the total (lexicographic) order
//!   required by the tie-breaking rule of Lexicographic Dynamic Voting,
//! * [`SiteSet`] — a set of up to [`MAX_SITES`] sites stored as a `u64`
//!   bitmask, so that the set algebra in Algorithm 1 (`Q`, `S`, `P_m`, `T`)
//!   compiles down to a handful of bit operations,
//! * [`VoteMap`] — an integer vote assignment over sites (Gifford-style
//!   weighted voting),
//! * [`errors`] — the error vocabulary shared by the protocol engines.

pub mod errors;
pub mod site;
pub mod site_set;
pub mod votes;

pub use errors::{AccessError, AccessKind};
pub use site::SiteId;
pub use site_set::{SiteSet, SiteSetIter, MAX_SITES};
pub use votes::VoteMap;
