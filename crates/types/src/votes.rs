//! Per-site vote assignments for weighted voting.

use core::fmt;

use crate::site::SiteId;
use crate::site_set::{SiteSet, MAX_SITES};

/// An integer vote assignment over sites (Gifford's weighted voting).
///
/// Classic Majority Consensus Voting gives every copy one vote; Gifford
/// generalized this so that better-connected or more reliable sites can
/// carry more weight, and the paper's conclusion lists "weight
/// assignments" as the natural next study. A `VoteMap` assigns each site
/// a non-negative number of votes and answers the two questions quorum
/// logic needs: the total number of votes in play and the number of votes
/// held by a given group.
///
/// # Examples
///
/// ```
/// use dynvote_types::{SiteId, SiteSet, VoteMap};
///
/// let mut votes = VoteMap::uniform(SiteSet::first_n(3));
/// votes.set(SiteId::new(0), 3); // weight the most reliable site
/// assert_eq!(votes.total(), 5);
/// let group = SiteSet::from_indices([0]);
/// assert_eq!(votes.of(group), 3);
/// assert!(votes.is_strict_majority(group));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct VoteMap {
    votes: [u32; MAX_SITES],
    total: u64,
}

impl VoteMap {
    /// One vote per member of `sites`, zero elsewhere — the classic
    /// unweighted assignment.
    #[must_use]
    pub fn uniform(sites: SiteSet) -> Self {
        let mut votes = [0u32; MAX_SITES];
        for site in sites.iter() {
            votes[site.index()] = 1;
        }
        VoteMap {
            votes,
            total: sites.len() as u64,
        }
    }

    /// An all-zero assignment (useful as a builder starting point).
    #[must_use]
    pub fn empty() -> Self {
        VoteMap {
            votes: [0; MAX_SITES],
            total: 0,
        }
    }

    /// Sets the vote count of one site.
    pub fn set(&mut self, site: SiteId, votes: u32) {
        self.total = self.total - u64::from(self.votes[site.index()]) + u64::from(votes);
        self.votes[site.index()] = votes;
    }

    /// Votes held by one site.
    #[inline]
    #[must_use]
    pub fn get(&self, site: SiteId) -> u32 {
        self.votes[site.index()]
    }

    /// Total votes across all sites.
    #[inline]
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Votes held collectively by `group`.
    #[must_use]
    pub fn of(&self, group: SiteSet) -> u64 {
        group
            .iter()
            .map(|site| u64::from(self.votes[site.index()]))
            .sum()
    }

    /// `true` when `group` holds *strictly more than half* the total votes.
    ///
    /// Strictness matters: with an even total, two disjoint groups could
    /// each hold exactly half, so "at least half" would break mutual
    /// exclusion.
    #[must_use]
    pub fn is_strict_majority(&self, group: SiteSet) -> bool {
        2 * self.of(group) > self.total
    }

    /// The set of sites holding at least one vote.
    #[must_use]
    pub fn voters(&self) -> SiteSet {
        (0..MAX_SITES)
            .filter(|&i| self.votes[i] > 0)
            .map(SiteId::new)
            .collect()
    }
}

impl fmt::Debug for VoteMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for i in 0..MAX_SITES {
            if self.votes[i] > 0 {
                map.entry(&SiteId::new(i), &self.votes[i]);
            }
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_gives_one_vote_each() {
        let votes = VoteMap::uniform(SiteSet::from_indices([0, 2, 4]));
        assert_eq!(votes.total(), 3);
        assert_eq!(votes.get(SiteId::new(2)), 1);
        assert_eq!(votes.get(SiteId::new(1)), 0);
        assert_eq!(votes.voters(), SiteSet::from_indices([0, 2, 4]));
    }

    #[test]
    fn set_updates_total() {
        let mut votes = VoteMap::uniform(SiteSet::first_n(3));
        votes.set(SiteId::new(0), 5);
        assert_eq!(votes.total(), 7);
        votes.set(SiteId::new(0), 0);
        assert_eq!(votes.total(), 2);
        assert_eq!(votes.voters(), SiteSet::from_indices([1, 2]));
    }

    #[test]
    fn strict_majority_requires_more_than_half() {
        // 4 uniform votes: 2 is exactly half — not a majority.
        let votes = VoteMap::uniform(SiteSet::first_n(4));
        assert!(!votes.is_strict_majority(SiteSet::from_indices([0, 1])));
        assert!(votes.is_strict_majority(SiteSet::from_indices([0, 1, 2])));
    }

    #[test]
    fn weighted_majority_can_be_a_single_site() {
        let mut votes = VoteMap::uniform(SiteSet::first_n(3));
        votes.set(SiteId::new(2), 4); // total 6, site 2 alone holds 4
        assert!(votes.is_strict_majority(SiteSet::from_indices([2])));
        assert!(!votes.is_strict_majority(SiteSet::from_indices([0, 1])));
    }

    #[test]
    fn of_ignores_nonmembers() {
        let votes = VoteMap::uniform(SiteSet::first_n(2));
        assert_eq!(votes.of(SiteSet::from_indices([1, 5])), 1);
    }
}
