//! Error vocabulary shared by the protocol engines.

use core::fmt;

use crate::site::SiteId;
use crate::site_set::SiteSet;

/// The kind of access a client attempted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read of the replicated file.
    Read,
    /// A write to the replicated file.
    Write,
    /// Reintegration of a recovering site.
    Recover,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Recover => "recover",
        })
    }
}

/// Why an access to the replicated file was refused.
///
/// Every refusal is an **ABORT** in the paper's READ/WRITE/RECOVER
/// procedures: the requesting group failed the majority-partition test,
/// so granting the access could violate mutual exclusion. The variants
/// record enough context for callers (and tests) to distinguish *why*
/// the quorum test failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessError {
    /// The requesting group does not contain a majority of the relevant
    /// partition/quorum set.
    NoQuorum {
        /// Kind of access attempted.
        kind: AccessKind,
        /// Sites reachable from the requester (the paper's `R`).
        reachable: SiteSet,
        /// Votes/sites counted toward the quorum test (|Q| or |T|).
        counted: usize,
        /// The previous majority partition (`P_m`) against which the
        /// majority test was run.
        against: SiteSet,
    },
    /// The group holds exactly half the previous majority partition but
    /// does not contain its maximum element (the lexicographic
    /// tie-break lost).
    TieLost {
        /// Kind of access attempted.
        kind: AccessKind,
        /// The previous majority partition.
        against: SiteSet,
        /// The site whose presence would have won the tie.
        needed: SiteId,
    },
    /// No site in the requesting group holds a current copy of the data
    /// (possible only with witnesses, which store state but no data).
    NoCurrentCopy {
        /// Kind of access attempted.
        kind: AccessKind,
        /// Sites reachable from the requester.
        reachable: SiteSet,
    },
    /// The requesting site is down or unknown to the cluster.
    OriginUnavailable {
        /// The site that issued the request.
        origin: SiteId,
    },
    /// Messages were lost faster than the bounded retry policy could
    /// recover them: after `attempts` rounds the coordinator still could
    /// not assemble the quorum view (or move the data), and gave up
    /// rather than hang. Unlike [`AccessError::NoQuorum`] this is not a
    /// verdict about partitions — the coordinator simply does not know.
    Timeout {
        /// Kind of access attempted.
        kind: AccessKind,
        /// The coordinating site.
        origin: SiteId,
        /// How many delivery rounds were attempted before giving up.
        attempts: u32,
    },
    /// The operation was granted and its `COMMIT` was sent, but delivery
    /// failed at some participants even after retries: the new state is
    /// installed at `applied` and absent at `missing`. The operation
    /// must be treated as *indeterminate* — it may yet be absorbed or
    /// superseded by the next successful operation — and is **not**
    /// counted as a success.
    Indeterminate {
        /// Kind of access attempted.
        kind: AccessKind,
        /// The coordinating site.
        origin: SiteId,
        /// Participants that applied the commit.
        applied: SiteSet,
        /// Participants that never received it.
        missing: SiteSet,
    },
}

impl AccessError {
    /// The kind of access that was refused (if origin-independent).
    #[must_use]
    pub fn kind(&self) -> Option<AccessKind> {
        match self {
            AccessError::NoQuorum { kind, .. }
            | AccessError::TieLost { kind, .. }
            | AccessError::NoCurrentCopy { kind, .. }
            | AccessError::Timeout { kind, .. }
            | AccessError::Indeterminate { kind, .. } => Some(*kind),
            AccessError::OriginUnavailable { .. } => None,
        }
    }
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::NoQuorum {
                kind,
                reachable,
                counted,
                against,
            } => write!(
                f,
                "{kind} aborted: {counted} vote(s) from {reachable} is not a majority of {against}"
            ),
            AccessError::TieLost {
                kind,
                against,
                needed,
            } => write!(
                f,
                "{kind} aborted: half of {against} reachable but tie-break site {needed} absent"
            ),
            AccessError::NoCurrentCopy { kind, reachable } => write!(
                f,
                "{kind} aborted: no current full copy reachable in {reachable}"
            ),
            AccessError::OriginUnavailable { origin } => {
                write!(f, "request origin {origin} is unavailable")
            }
            AccessError::Timeout {
                kind,
                origin,
                attempts,
            } => write!(
                f,
                "{kind} at {origin} timed out after {attempts} delivery attempt(s)"
            ),
            AccessError::Indeterminate {
                kind,
                origin,
                applied,
                missing,
            } => write!(
                f,
                "{kind} at {origin} is indeterminate: commit reached {applied} but not {missing}"
            ),
        }
    }
}

impl std::error::Error for AccessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_no_quorum() {
        let err = AccessError::NoQuorum {
            kind: AccessKind::Write,
            reachable: SiteSet::from_indices([0]),
            counted: 1,
            against: SiteSet::from_indices([0, 1, 2]),
        };
        let text = err.to_string();
        assert!(text.contains("write aborted"), "{text}");
        assert!(text.contains("majority"), "{text}");
    }

    #[test]
    fn display_tie_lost_names_needed_site() {
        let err = AccessError::TieLost {
            kind: AccessKind::Read,
            against: SiteSet::from_indices([0, 2]),
            needed: SiteId::new(2),
        };
        assert!(err.to_string().contains("S2"));
    }

    #[test]
    fn kind_is_reported() {
        let err = AccessError::NoCurrentCopy {
            kind: AccessKind::Recover,
            reachable: SiteSet::EMPTY,
        };
        assert_eq!(err.kind(), Some(AccessKind::Recover));
        let err = AccessError::OriginUnavailable {
            origin: SiteId::new(0),
        };
        assert_eq!(err.kind(), None);
    }

    #[test]
    fn display_timeout_counts_attempts() {
        let err = AccessError::Timeout {
            kind: AccessKind::Write,
            origin: SiteId::new(1),
            attempts: 3,
        };
        let text = err.to_string();
        assert!(text.contains("timed out after 3"), "{text}");
        assert_eq!(err.kind(), Some(AccessKind::Write));
    }

    #[test]
    fn display_indeterminate_names_both_sides() {
        let err = AccessError::Indeterminate {
            kind: AccessKind::Write,
            origin: SiteId::new(0),
            applied: SiteSet::from_indices([0, 1]),
            missing: SiteSet::from_indices([2]),
        };
        let text = err.to_string();
        assert!(text.contains("indeterminate"), "{text}");
        assert!(text.contains("S2"), "{text}");
        assert_eq!(err.kind(), Some(AccessKind::Write));
    }

    #[test]
    fn errors_are_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<AccessError>();
    }
}
