//! Site identifiers.

use core::fmt;

use crate::site_set::MAX_SITES;

/// Identifier of a site (a host holding a physical copy, a witness, or a
/// gateway) in a replicated-file system.
///
/// Sites carry the *static linear ordering* that Lexicographic Dynamic
/// Voting uses to break ties: when exactly one half of the previous
/// majority partition is reachable, the half containing the **maximum**
/// site wins (Jajodia's rule, adopted by Algorithm 1 of the paper). The
/// `Ord` implementation on `SiteId` *is* that ordering: a numerically
/// larger index ranks higher.
///
/// Indices are bounded by [`MAX_SITES`] so that site sets fit in a single
/// machine word (see [`crate::SiteSet`]).
///
/// # Examples
///
/// ```
/// use dynvote_types::SiteId;
///
/// let a = SiteId::new(0);
/// let c = SiteId::new(2);
/// assert!(c > a, "higher index ranks higher in the lexicographic order");
/// assert_eq!(c.index(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(u8);

impl SiteId {
    /// Creates a site identifier from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_SITES` (64); site sets are single-word
    /// bitmasks and cannot address more sites.
    #[inline]
    #[must_use]
    pub const fn new(index: usize) -> Self {
        assert!(index < MAX_SITES, "site index out of range");
        SiteId(index as u8)
    }

    /// Creates a site identifier without the bounds check, returning
    /// `None` when out of range.
    #[inline]
    #[must_use]
    pub const fn try_new(index: usize) -> Option<Self> {
        if index < MAX_SITES {
            Some(SiteId(index as u8))
        } else {
            None
        }
    }

    /// The zero-based index of this site.
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The site's bit inside a [`crate::SiteSet`] mask.
    #[inline]
    #[must_use]
    pub(crate) const fn bit(self) -> u64 {
        1u64 << self.0
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<SiteId> for usize {
    fn from(s: SiteId) -> usize {
        s.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in 0..MAX_SITES {
            assert_eq!(SiteId::new(i).index(), i);
        }
    }

    #[test]
    fn try_new_rejects_out_of_range() {
        assert!(SiteId::try_new(MAX_SITES).is_none());
        assert!(SiteId::try_new(usize::MAX).is_none());
        assert_eq!(SiteId::try_new(MAX_SITES - 1), Some(SiteId::new(63)));
    }

    #[test]
    #[should_panic(expected = "site index out of range")]
    fn new_panics_out_of_range() {
        let _ = SiteId::new(MAX_SITES);
    }

    #[test]
    fn ordering_is_by_index() {
        // The lexicographic tie-break relies on this total order.
        let ids: Vec<SiteId> = (0..8).map(SiteId::new).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(ids.iter().max(), Some(&SiteId::new(7)));
    }

    #[test]
    fn display_formats_compactly() {
        assert_eq!(SiteId::new(3).to_string(), "S3");
        assert_eq!(format!("{:?}", SiteId::new(12)), "S12");
    }
}
