//! Site sets as single-word bitmasks.

use core::fmt;
use core::iter::FromIterator;
use core::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Sub, SubAssign};

use crate::site::SiteId;

/// Maximum number of addressable sites (one bit per site in a `u64`).
pub const MAX_SITES: usize = 64;

/// A set of sites, stored as a `u64` bitmask.
///
/// Every set manipulated by the voting protocols — the reachable set `R`,
/// the quorum set `Q`, the up-to-date set `S`, the partition set `P_m`,
/// and the topological claim set `T` — is a `SiteSet`. Intersections,
/// unions, cardinalities, and the `max(P_m)` tie-break all reduce to
/// single machine instructions, which keeps the majority-partition
/// decision (run on every simulated event) essentially free.
///
/// # Examples
///
/// ```
/// use dynvote_types::{SiteId, SiteSet};
///
/// let p: SiteSet = [0, 1, 2].into_iter().map(SiteId::new).collect();
/// let r = SiteSet::from_indices([0, 2]);
/// let q = p & r;
/// assert_eq!(q.len(), 2);
/// assert_eq!(p.max(), Some(SiteId::new(2)));
/// assert!(q.contains(SiteId::new(2)));
/// assert!(q.is_subset_of(p));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SiteSet(u64);

impl SiteSet {
    /// The empty set.
    pub const EMPTY: SiteSet = SiteSet(0);

    /// Creates an empty set.
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        SiteSet(0)
    }

    /// Creates the set `{S0, S1, …, S(n-1)}` of the first `n` sites.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_SITES`.
    #[inline]
    #[must_use]
    pub const fn first_n(n: usize) -> Self {
        assert!(n <= MAX_SITES, "site count out of range");
        if n == MAX_SITES {
            SiteSet(u64::MAX)
        } else {
            SiteSet((1u64 << n) - 1)
        }
    }

    /// Creates a set from zero-based site indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= MAX_SITES`.
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        indices.into_iter().map(SiteId::new).collect()
    }

    /// Creates a set containing a single site.
    #[inline]
    #[must_use]
    pub const fn singleton(site: SiteId) -> Self {
        SiteSet(site.bit())
    }

    /// The raw bitmask (bit *i* set ⇔ site *i* in the set).
    #[inline]
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a set from a raw bitmask.
    #[inline]
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        SiteSet(bits)
    }

    /// Number of sites in the set.
    #[inline]
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` when the set is empty.
    #[inline]
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    #[inline]
    #[must_use]
    pub const fn contains(self, site: SiteId) -> bool {
        self.0 & site.bit() != 0
    }

    /// Inserts a site; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, site: SiteId) -> bool {
        let added = !self.contains(site);
        self.0 |= site.bit();
        added
    }

    /// Removes a site; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, site: SiteId) -> bool {
        let present = self.contains(site);
        self.0 &= !site.bit();
        present
    }

    /// The set with `site` added (functional form of [`Self::insert`]).
    #[inline]
    #[must_use]
    pub const fn with(self, site: SiteId) -> Self {
        SiteSet(self.0 | site.bit())
    }

    /// The set with `site` removed (functional form of [`Self::remove`]).
    #[inline]
    #[must_use]
    pub const fn without(self, site: SiteId) -> Self {
        SiteSet(self.0 & !site.bit())
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub const fn union(self, other: SiteSet) -> Self {
        SiteSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub const fn intersection(self, other: SiteSet) -> Self {
        SiteSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    #[must_use]
    pub const fn difference(self, other: SiteSet) -> Self {
        SiteSet(self.0 & !other.0)
    }

    /// `true` when the two sets share no site.
    #[inline]
    #[must_use]
    pub const fn is_disjoint(self, other: SiteSet) -> bool {
        self.0 & other.0 == 0
    }

    /// `true` when every site of `self` is in `other`.
    #[inline]
    #[must_use]
    pub const fn is_subset_of(self, other: SiteSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// The maximum site in the lexicographic order, or `None` if empty.
    ///
    /// This is the `max(P_m)` of the tie-breaking rule: the group that
    /// holds exactly half the previous majority partition wins iff it
    /// contains this site.
    #[inline]
    #[must_use]
    pub fn max(self) -> Option<SiteId> {
        if self.0 == 0 {
            None
        } else {
            Some(SiteId::new(63 - self.0.leading_zeros() as usize))
        }
    }

    /// The minimum site in the lexicographic order, or `None` if empty.
    #[inline]
    #[must_use]
    pub fn min(self) -> Option<SiteId> {
        if self.0 == 0 {
            None
        } else {
            Some(SiteId::new(self.0.trailing_zeros() as usize))
        }
    }

    /// Iterates over members in ascending site order.
    #[inline]
    pub fn iter(self) -> SiteSetIter {
        SiteSetIter(self.0)
    }
}

impl BitOr for SiteSet {
    type Output = SiteSet;
    #[inline]
    fn bitor(self, rhs: SiteSet) -> SiteSet {
        self.union(rhs)
    }
}

impl BitOrAssign for SiteSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: SiteSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for SiteSet {
    type Output = SiteSet;
    #[inline]
    fn bitand(self, rhs: SiteSet) -> SiteSet {
        self.intersection(rhs)
    }
}

impl BitAndAssign for SiteSet {
    #[inline]
    fn bitand_assign(&mut self, rhs: SiteSet) {
        self.0 &= rhs.0;
    }
}

impl Sub for SiteSet {
    type Output = SiteSet;
    #[inline]
    fn sub(self, rhs: SiteSet) -> SiteSet {
        self.difference(rhs)
    }
}

impl SubAssign for SiteSet {
    #[inline]
    fn sub_assign(&mut self, rhs: SiteSet) {
        self.0 &= !rhs.0;
    }
}

impl FromIterator<SiteId> for SiteSet {
    fn from_iter<I: IntoIterator<Item = SiteId>>(iter: I) -> Self {
        let mut set = SiteSet::new();
        for site in iter {
            set.insert(site);
        }
        set
    }
}

impl Extend<SiteId> for SiteSet {
    fn extend<I: IntoIterator<Item = SiteId>>(&mut self, iter: I) {
        for site in iter {
            self.insert(site);
        }
    }
}

impl IntoIterator for SiteSet {
    type Item = SiteId;
    type IntoIter = SiteSetIter;
    fn into_iter(self) -> SiteSetIter {
        self.iter()
    }
}

impl From<SiteId> for SiteSet {
    fn from(site: SiteId) -> Self {
        SiteSet::singleton(site)
    }
}

/// Iterator over the members of a [`SiteSet`], ascending.
#[derive(Clone, Debug)]
pub struct SiteSetIter(u64);

impl Iterator for SiteSetIter {
    type Item = SiteId;

    #[inline]
    fn next(&mut self) -> Option<SiteId> {
        if self.0 == 0 {
            return None;
        }
        let idx = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1; // clear lowest set bit
        Some(SiteId::new(idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SiteSetIter {}

impl fmt::Debug for SiteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SiteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for site in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{site}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(indices: &[usize]) -> SiteSet {
        SiteSet::from_indices(indices.iter().copied())
    }

    #[test]
    fn empty_set_properties() {
        let e = SiteSet::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.max(), None);
        assert_eq!(e.min(), None);
        assert_eq!(e.iter().count(), 0);
        assert_eq!(e, SiteSet::EMPTY);
    }

    #[test]
    fn first_n_builds_prefix() {
        assert_eq!(SiteSet::first_n(0), SiteSet::EMPTY);
        assert_eq!(SiteSet::first_n(3), s(&[0, 1, 2]));
        assert_eq!(SiteSet::first_n(64).len(), 64);
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut set = SiteSet::new();
        assert!(set.insert(SiteId::new(5)));
        assert!(!set.insert(SiteId::new(5)), "double insert reports false");
        assert!(set.contains(SiteId::new(5)));
        assert!(set.remove(SiteId::new(5)));
        assert!(!set.remove(SiteId::new(5)), "double remove reports false");
        assert!(set.is_empty());
    }

    #[test]
    fn with_without_are_pure() {
        let base = s(&[1, 2]);
        assert_eq!(base.with(SiteId::new(3)), s(&[1, 2, 3]));
        assert_eq!(base.without(SiteId::new(2)), s(&[1]));
        assert_eq!(base, s(&[1, 2]), "original unchanged");
    }

    #[test]
    fn algebra_matches_set_semantics() {
        let a = s(&[0, 1, 2, 3]);
        let b = s(&[2, 3, 4, 5]);
        assert_eq!(a | b, s(&[0, 1, 2, 3, 4, 5]));
        assert_eq!(a & b, s(&[2, 3]));
        assert_eq!(a - b, s(&[0, 1]));
        assert!(!a.is_disjoint(b));
        assert!(s(&[0, 1]).is_disjoint(s(&[2, 3])));
        assert!(s(&[2, 3]).is_subset_of(a));
        assert!(!a.is_subset_of(b));
    }

    #[test]
    fn max_min_follow_lexicographic_order() {
        let p = s(&[1, 4, 7]);
        assert_eq!(p.max(), Some(SiteId::new(7)));
        assert_eq!(p.min(), Some(SiteId::new(1)));
        assert_eq!(
            SiteSet::singleton(SiteId::new(63)).max(),
            Some(SiteId::new(63))
        );
    }

    #[test]
    fn iteration_is_ascending_and_exact() {
        let p = s(&[9, 0, 33, 4]);
        let order: Vec<usize> = p.iter().map(SiteId::index).collect();
        assert_eq!(order, vec![0, 4, 9, 33]);
        assert_eq!(p.iter().len(), 4);
    }

    #[test]
    fn display_lists_members() {
        assert_eq!(s(&[0, 2]).to_string(), "{S0, S2}");
        assert_eq!(SiteSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut set: SiteSet = [SiteId::new(1)].into_iter().collect();
        set.extend([SiteId::new(2), SiteId::new(1)]);
        assert_eq!(set, s(&[1, 2]));
    }

    proptest! {
        #[test]
        fn prop_union_is_commutative(a in any::<u64>(), b in any::<u64>()) {
            let (a, b) = (SiteSet::from_bits(a), SiteSet::from_bits(b));
            prop_assert_eq!(a | b, b | a);
        }

        #[test]
        fn prop_difference_disjoint_from_subtrahend(a in any::<u64>(), b in any::<u64>()) {
            let (a, b) = (SiteSet::from_bits(a), SiteSet::from_bits(b));
            prop_assert!((a - b).is_disjoint(b));
        }

        #[test]
        fn prop_len_is_sum_of_partition(a in any::<u64>(), b in any::<u64>()) {
            let (a, b) = (SiteSet::from_bits(a), SiteSet::from_bits(b));
            prop_assert_eq!((a | b).len(), (a - b).len() + (b - a).len() + (a & b).len());
        }

        #[test]
        fn prop_iter_round_trips(a in any::<u64>()) {
            let set = SiteSet::from_bits(a);
            let rebuilt: SiteSet = set.iter().collect();
            prop_assert_eq!(set, rebuilt);
        }

        #[test]
        fn prop_max_is_largest_member(a in any::<u64>()) {
            let set = SiteSet::from_bits(a);
            match set.max() {
                None => prop_assert!(set.is_empty()),
                Some(m) => {
                    prop_assert!(set.contains(m));
                    for site in set.iter() {
                        prop_assert!(site <= m);
                    }
                }
            }
        }

        #[test]
        fn prop_subset_iff_union_is_superset(a in any::<u64>(), b in any::<u64>()) {
            let (a, b) = (SiteSet::from_bits(a), SiteSet::from_bits(b));
            prop_assert_eq!(a.is_subset_of(b), (a | b) == b);
        }
    }
}
