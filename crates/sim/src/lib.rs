#![warn(missing_docs)]

//! A small discrete-event simulation engine.
//!
//! The paper's evaluation (§4) rejects closed-form stochastic modelling —
//! non-exponential repair times and simultaneous site failures plus
//! network partitions make the chains intractable — and instead runs a
//! discrete-event simulation with batch-means confidence intervals. This
//! crate is that substrate, kept deliberately generic so the availability
//! study, the ablations, and the property tests all drive the same
//! machinery:
//!
//! * [`SimTime`]/[`Duration`] — the virtual clock, measured in days (the
//!   natural unit of Table 1),
//! * [`EventQueue`] — a monotone priority queue of timestamped events
//!   with deterministic FIFO tie-breaking,
//! * [`SimRng`] + [`Dist`] — seeded random streams and the paper's
//!   failure/repair distributions (exponential, constant, and
//!   constant-plus-exponential),
//! * [`stats`] — time-weighted availability integration, outage
//!   bookkeeping, and batch-means analysis with 95% Student-t
//!   confidence intervals.

pub mod dist;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::Dist;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use stats::{BatchMeans, OutageLog, UpDownIntegrator};
pub use time::{Duration, SimTime};
