//! Output analysis: availability integration, outage logs, batch means.

use crate::time::{Duration, SimTime};

/// Integrates a boolean (available / unavailable) signal over virtual
/// time, yielding the time-weighted unavailability — the paper's primary
/// metric (Table 2).
///
/// The meter is *edge-driven*: call [`UpDownIntegrator::record`] whenever
/// the signal may have changed, and [`UpDownIntegrator::advance`] at
/// batch boundaries and at the end of the run to absorb the final
/// interval.
#[derive(Clone, Debug)]
pub struct UpDownIntegrator {
    available: bool,
    since: SimTime,
    down: Duration,
    total: Duration,
}

impl UpDownIntegrator {
    /// A meter starting at `start` in the given state.
    #[must_use]
    pub fn new(start: SimTime, initially_available: bool) -> Self {
        UpDownIntegrator {
            available: initially_available,
            since: start,
            down: Duration::ZERO,
            total: Duration::ZERO,
        }
    }

    /// Absorbs the elapsed interval `[since, now)` into the totals.
    pub fn advance(&mut self, now: SimTime) {
        let span = now - self.since;
        debug_assert!(span >= Duration::ZERO, "time went backwards");
        self.total += span;
        if !self.available {
            self.down += span;
        }
        self.since = now;
    }

    /// Advances to `now`, then switches the signal to `available`.
    pub fn record(&mut self, now: SimTime, available: bool) {
        self.advance(now);
        self.available = available;
    }

    /// Starts a new accumulation window (e.g. a batch) at `now`,
    /// preserving the current signal state.
    pub fn reset(&mut self, now: SimTime) {
        self.advance(now);
        self.down = Duration::ZERO;
        self.total = Duration::ZERO;
    }

    /// The fraction of absorbed time spent unavailable.
    #[must_use]
    pub fn unavailability(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.down / self.total
        }
    }

    /// Total absorbed time.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Absorbed unavailable time.
    #[must_use]
    pub fn downtime(&self) -> Duration {
        self.down
    }

    /// Current signal state.
    #[must_use]
    pub fn is_available(&self) -> bool {
        self.available
    }
}

/// Records the lengths of maximal unavailable intervals — the paper's
/// *mean duration of unavailable periods* (Table 3).
#[derive(Clone, Debug)]
pub struct OutageLog {
    available: bool,
    outage_started: Option<SimTime>,
    count: u64,
    total: Duration,
    longest: Duration,
    /// Individual outage lengths in days, kept (up to a cap) for
    /// percentile reporting.
    samples: Vec<f64>,
}

/// Retention cap for individual outage samples; beyond it the log
/// keeps counting but stops recording lengths (percentiles then
/// describe the first `SAMPLE_CAP` outages).
const SAMPLE_CAP: usize = 262_144;

impl OutageLog {
    /// A log starting at `start` in the given state.
    #[must_use]
    pub fn new(start: SimTime, initially_available: bool) -> Self {
        OutageLog {
            available: initially_available,
            outage_started: (!initially_available).then_some(start),
            count: 0,
            total: Duration::ZERO,
            longest: Duration::ZERO,
            samples: Vec::new(),
        }
    }

    /// Notes that the signal is `available` as of `now`.
    pub fn record(&mut self, now: SimTime, available: bool) {
        match (self.available, available) {
            (true, false) => self.outage_started = Some(now),
            (false, true) => {
                let started = self
                    .outage_started
                    .take()
                    .expect("unavailable state must carry a start time");
                let len = now - started;
                self.count += 1;
                self.total += len;
                if len > self.longest {
                    self.longest = len;
                }
                if self.samples.len() < SAMPLE_CAP {
                    self.samples.push(len.as_days());
                }
            }
            _ => {}
        }
        self.available = available;
    }

    /// Closes an outage still open at the end of the run.
    pub fn finish(&mut self, now: SimTime) {
        if !self.available {
            self.record(now, true);
            self.available = false;
        }
    }

    /// Number of completed outages.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total outage time.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Mean outage duration, or zero when no outage occurred.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total * (1.0 / self.count as f64)
        }
    }

    /// Longest single outage.
    #[must_use]
    pub fn longest(&self) -> Duration {
        self.longest
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of recorded outage durations, by
    /// the nearest-rank method, or `None` when no outage was recorded.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(Duration::days(sorted[rank - 1]))
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
///
/// Exact table entries for small `df`, the asymptotic normal value
/// beyond 120.
#[must_use]
pub fn t95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// Batch-means analysis: the run is cut into batches, each batch yields
/// one (approximately independent) observation, and the sample of batch
/// values gives a mean with a Student-t confidence interval.
///
/// This is exactly the paper's method: "Batch-means analysis was used to
/// compute 95% confidence intervals for all performance indices."
#[derive(Clone, Debug, Default)]
pub struct BatchMeans {
    values: Vec<f64>,
}

impl BatchMeans {
    /// An empty analysis.
    #[must_use]
    pub fn new() -> Self {
        BatchMeans::default()
    }

    /// Adds one batch observation.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of batches recorded.
    #[must_use]
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// The grand mean across batches.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Unbiased sample variance of the batch values.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    }

    /// Half-width of the 95% confidence interval for the mean.
    #[must_use]
    pub fn half_width_95(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return f64::INFINITY;
        }
        t95(n - 1) * (self.variance() / n as f64).sqrt()
    }

    /// The 95% confidence interval `(lo, hi)` for the mean.
    #[must_use]
    pub fn ci95(&self) -> (f64, f64) {
        let m = self.mean();
        let h = self.half_width_95();
        (m - h, m + h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrator_half_down() {
        let mut m = UpDownIntegrator::new(SimTime::ZERO, true);
        m.record(SimTime::at_days(1.0), false); // up for 1d
        m.record(SimTime::at_days(2.0), true); // down for 1d
        m.advance(SimTime::at_days(2.0));
        assert!((m.unavailability() - 0.5).abs() < 1e-12);
        assert_eq!(m.total().as_days(), 2.0);
        assert_eq!(m.downtime().as_days(), 1.0);
    }

    #[test]
    fn integrator_idempotent_records() {
        // Recording the same state repeatedly must not distort totals.
        let mut m = UpDownIntegrator::new(SimTime::ZERO, true);
        m.record(SimTime::at_days(0.5), true);
        m.record(SimTime::at_days(1.0), false);
        m.record(SimTime::at_days(1.5), false);
        m.advance(SimTime::at_days(2.0));
        assert!((m.unavailability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn integrator_reset_starts_new_window() {
        let mut m = UpDownIntegrator::new(SimTime::ZERO, false);
        m.advance(SimTime::at_days(1.0));
        assert_eq!(m.unavailability(), 1.0);
        m.reset(SimTime::at_days(1.0));
        m.advance(SimTime::at_days(2.0));
        // Still down, new window is 100% down but fresh.
        assert_eq!(m.total().as_days(), 1.0);
        assert!(!m.is_available());
    }

    #[test]
    fn integrator_empty_window_is_zero() {
        let m = UpDownIntegrator::new(SimTime::ZERO, false);
        assert_eq!(m.unavailability(), 0.0);
    }

    #[test]
    fn outage_log_counts_and_means() {
        let mut log = OutageLog::new(SimTime::ZERO, true);
        log.record(SimTime::at_days(1.0), false);
        log.record(SimTime::at_days(2.0), true); // 1d outage
        log.record(SimTime::at_days(5.0), false);
        log.record(SimTime::at_days(8.0), true); // 3d outage
        assert_eq!(log.count(), 2);
        assert_eq!(log.total().as_days(), 4.0);
        assert_eq!(log.mean().as_days(), 2.0);
        assert_eq!(log.longest().as_days(), 3.0);
    }

    #[test]
    fn outage_log_finish_closes_open_outage() {
        let mut log = OutageLog::new(SimTime::ZERO, false);
        log.finish(SimTime::at_days(2.0));
        assert_eq!(log.count(), 1);
        assert_eq!(log.total().as_days(), 2.0);
    }

    #[test]
    fn outage_quantiles_nearest_rank() {
        let mut log = OutageLog::new(SimTime::ZERO, true);
        // Outages of 1, 2, 3, 4 days.
        let mut t = 0.0;
        for len in [1.0, 2.0, 3.0, 4.0] {
            log.record(SimTime::at_days(t), false);
            t += len;
            log.record(SimTime::at_days(t), true);
            t += 1.0;
        }
        assert_eq!(log.quantile(0.5).unwrap().as_days(), 2.0);
        assert_eq!(log.quantile(0.75).unwrap().as_days(), 3.0);
        assert_eq!(log.quantile(1.0).unwrap().as_days(), 4.0);
        assert_eq!(log.quantile(0.0).unwrap().as_days(), 1.0);
    }

    #[test]
    fn quantile_of_empty_log_is_none() {
        let log = OutageLog::new(SimTime::ZERO, true);
        assert!(log.quantile(0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn out_of_range_quantile_panics() {
        let log = OutageLog::new(SimTime::ZERO, true);
        let _ = log.quantile(1.5);
    }

    #[test]
    fn outage_log_repeated_states_ignored() {
        let mut log = OutageLog::new(SimTime::ZERO, true);
        log.record(SimTime::at_days(1.0), true);
        log.record(SimTime::at_days(2.0), false);
        log.record(SimTime::at_days(3.0), false);
        log.record(SimTime::at_days(4.0), true);
        assert_eq!(log.count(), 1);
        assert_eq!(log.mean().as_days(), 2.0);
    }

    #[test]
    fn t_table_spot_checks() {
        assert_eq!(t95(1), 12.706);
        assert_eq!(t95(10), 2.228);
        assert_eq!(t95(30), 2.042);
        assert_eq!(t95(1000), 1.960);
        assert!(t95(0).is_infinite());
    }

    #[test]
    fn batch_means_known_sample() {
        let mut b = BatchMeans::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            b.push(v);
        }
        assert_eq!(b.n(), 8);
        assert!((b.mean() - 5.0).abs() < 1e-12);
        // Sample variance (n-1 denominator) of this classic set is 32/7.
        assert!((b.variance() - 32.0 / 7.0).abs() < 1e-12);
        let (lo, hi) = b.ci95();
        assert!(lo < 5.0 && 5.0 < hi);
        // Half width = t(7) * sqrt(var/8).
        let expect = 2.365 * (32.0 / 7.0 / 8.0_f64).sqrt();
        assert!((b.half_width_95() - expect).abs() < 1e-9);
    }

    #[test]
    fn batch_means_degenerate_cases() {
        let mut b = BatchMeans::new();
        assert_eq!(b.mean(), 0.0);
        b.push(3.0);
        assert_eq!(b.mean(), 3.0);
        assert!(b.half_width_95().is_infinite(), "one batch has no CI");
        b.push(3.0);
        assert_eq!(b.half_width_95(), 0.0, "identical batches: zero width");
    }
}
