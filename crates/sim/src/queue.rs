//! The event queue: a monotone priority queue of timestamped events.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time pops
        // first, with FIFO order among equal timestamps (lower seq
        // first) for determinism. `SimTime` is totally ordered, so no
        // fallback is needed for incomparable times.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue: events are scheduled at [`SimTime`] instants
/// and popped in non-decreasing time order.
///
/// Equal-time events pop in insertion order, which keeps simulations
/// deterministic for a fixed seed. Popping also advances the queue's
/// notion of *now*; scheduling in the past is a logic error caught by a
/// debug assertion.
///
/// # Examples
///
/// ```
/// use dynvote_sim::{Duration, EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::at_days(2.0), "repair");
/// q.schedule(SimTime::at_days(1.0), "fail");
/// assert_eq!(q.pop(), Some((SimTime::at_days(1.0), "fail")));
/// assert_eq!(q.pop(), Some((SimTime::at_days(2.0), "repair")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (time zero initially).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at `time`.
    ///
    /// Scheduling before [`EventQueue::now`] is a logic error (debug
    /// assertion); at `now` exactly is fine and preserves FIFO order.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "scheduling into the past: {time} < now {}",
            self.now
        );
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Advances `now` to `time` without popping — for event streams a
    /// driver manages *outside* the heap (e.g. a plain Poisson process
    /// with no cancellation, where heap traffic would be pure overhead).
    ///
    /// Moving backwards is a logic error (debug assertion).
    pub fn advance_to(&mut self, time: SimTime) {
        debug_assert!(
            time >= self.now,
            "advancing into the past: {time} < now {}",
            self.now
        );
        self.now = time;
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events and resets the clock to zero.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &d in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule(SimTime::at_days(d), d as u32);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::at_days(1.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::at_days(2.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::at_days(2.0));
        // Scheduling at now is allowed.
        q.schedule(q.now(), ());
        assert!(q.pop().is_some());
    }

    #[test]
    fn peek_len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::at_days(1.0), 1);
        q.schedule(SimTime::at_days(0.5), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::at_days(0.5)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::at_days(1.0), ());
        q.pop();
        q.schedule(SimTime::at_days(0.5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // A self-rescheduling process: each event schedules the next.
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        while let Some((t, n)) = q.pop() {
            count += 1;
            if n < 99 {
                q.schedule(t + Duration::days(1.0), n + 1);
            }
        }
        assert_eq!(count, 100);
        assert_eq!(q.now(), SimTime::at_days(99.0));
    }
}
