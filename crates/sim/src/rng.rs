//! Seeded random streams for reproducible simulations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random-number stream.
///
/// Every simulation run is driven by one or more `SimRng` streams derived
/// from a single user-visible seed, so a run is exactly reproducible from
/// `(code, seed, parameters)`. Per-entity sub-streams
/// ([`SimRng::substream`]) keep, e.g., site 3's failure process
/// statistically independent of site 4's *and* stable when unrelated
/// parts of the simulation change their draw counts.
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// A stream seeded from a user-level seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1)),
        }
    }

    /// Derives an independent sub-stream identified by `stream_id`.
    ///
    /// Uses SplitMix64 over the pair (seed mixing), which is more than
    /// adequate for decorrelating simulation streams.
    #[must_use]
    pub fn substream(seed: u64, stream_id: u64) -> Self {
        let mut z = seed ^ stream_id.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng {
            rng: StdRng::seed_from_u64(z),
        }
    }

    /// A uniform draw in the half-open interval `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// An exponential variate with the given mean (inverse-transform
    /// sampling).
    ///
    /// # Panics
    ///
    /// Panics when `mean` is not strictly positive.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // 1 - U is in (0, 1], so ln never sees zero.
        -mean * (1.0 - self.uniform()).ln()
    }

    /// A Bernoulli draw: `true` with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn substreams_are_independent_and_stable() {
        let mut s0 = SimRng::substream(7, 0);
        let mut s1 = SimRng::substream(7, 1);
        let a: Vec<u64> = (0..10).map(|_| (s0.uniform() * 1e9) as u64).collect();
        let b: Vec<u64> = (0..10).map(|_| (s1.uniform() * 1e9) as u64).collect();
        assert_ne!(a, b);
        // Re-deriving stream 0 reproduces it exactly.
        let mut again = SimRng::substream(7, 0);
        let c: Vec<u64> = (0..10).map(|_| (again.uniform() * 1e9) as u64).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(3);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.05,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = SimRng::new(4);
        assert!((0..10_000).all(|_| rng.exponential(0.001) >= 0.0));
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::new(5);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = SimRng::new(6);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_mean_rejected() {
        SimRng::new(0).exponential(0.0);
    }
}
