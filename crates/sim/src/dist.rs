//! The failure/repair distributions of the paper's site model.

use crate::rng::SimRng;
use crate::time::Duration;

/// A distribution over durations.
///
/// Table 1 uses exactly three shapes:
///
/// * exponential times-to-fail,
/// * **constant** restart times for software failures ("software
///   failures only require a system restart, constant recovery times
///   are assumed"),
/// * **constant + exponential** hardware repair times ("a constant term
///   representing the minimum service time plus an exponentially
///   distributed term representing the actual repair process").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Dist {
    /// Always exactly this duration.
    Constant(Duration),
    /// Exponential with the given mean.
    Exponential(Duration),
    /// A constant floor plus an exponential tail with the given mean.
    ShiftedExponential {
        /// The deterministic minimum (e.g. minimum service time).
        floor: Duration,
        /// Mean of the exponential part.
        mean: Duration,
    },
}

impl Dist {
    /// Draws one duration.
    pub fn sample(&self, rng: &mut SimRng) -> Duration {
        match *self {
            Dist::Constant(d) => d,
            Dist::Exponential(mean) => Duration::days(rng.exponential(mean.as_days())),
            Dist::ShiftedExponential { floor, mean } => {
                if mean.is_zero() {
                    floor
                } else {
                    floor + Duration::days(rng.exponential(mean.as_days()))
                }
            }
        }
    }

    /// The distribution's expected value.
    #[must_use]
    pub fn mean(&self) -> Duration {
        match *self {
            Dist::Constant(d) => d,
            Dist::Exponential(mean) => mean,
            Dist::ShiftedExponential { floor, mean } => floor + mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::new(1);
        let d = Dist::Constant(Duration::minutes(15.0));
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), Duration::minutes(15.0));
        }
        assert_eq!(d.mean(), Duration::minutes(15.0));
    }

    #[test]
    fn exponential_sample_mean() {
        let mut rng = SimRng::new(2);
        let d = Dist::Exponential(Duration::days(10.0));
        let n = 100_000;
        let total: f64 = (0..n).map(|_| d.sample(&mut rng).as_days()).sum();
        assert!((total / n as f64 - 10.0).abs() < 0.15);
        assert_eq!(d.mean(), Duration::days(10.0));
    }

    #[test]
    fn shifted_exponential_respects_floor() {
        let mut rng = SimRng::new(3);
        let d = Dist::ShiftedExponential {
            floor: Duration::hours(4.0),
            mean: Duration::hours(24.0),
        };
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= Duration::hours(4.0));
        }
        assert!((d.mean().as_hours() - 28.0).abs() < 1e-9);
    }

    #[test]
    fn shifted_exponential_with_zero_mean_is_constant() {
        // Site 1 (csvax): hardware repair = 0h constant + 2h exp; site 4
        // (wizard): 168h constant + 168h exp. The degenerate case of a
        // zero *exponential* part must not panic.
        let mut rng = SimRng::new(4);
        let d = Dist::ShiftedExponential {
            floor: Duration::hours(3.0),
            mean: Duration::ZERO,
        };
        assert_eq!(d.sample(&mut rng), Duration::hours(3.0));
    }
}
