//! The virtual clock: instants and durations measured in days.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of virtual time, in days.
///
/// Days are the natural unit of the paper's Table 1 (mean times to fail
/// are given in days, repairs in hours, restarts in minutes); the
/// constructors convert so call sites read like the table.
///
/// # Examples
///
/// ```
/// use dynvote_sim::Duration;
///
/// let repair = Duration::hours(4.0) + Duration::hours(24.0);
/// assert!((repair.as_days() - 28.0 / 24.0).abs() < 1e-12);
/// assert!(Duration::minutes(20.0) < Duration::hours(1.0));
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Duration(f64);

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0.0);

    /// A duration of `d` days.
    #[inline]
    #[must_use]
    pub const fn days(d: f64) -> Self {
        Duration(d)
    }

    /// A duration of `h` hours.
    #[inline]
    #[must_use]
    pub fn hours(h: f64) -> Self {
        Duration(h / 24.0)
    }

    /// A duration of `m` minutes.
    #[inline]
    #[must_use]
    pub fn minutes(m: f64) -> Self {
        Duration(m / (24.0 * 60.0))
    }

    /// The duration in days.
    #[inline]
    #[must_use]
    pub const fn as_days(self) -> f64 {
        self.0
    }

    /// The duration in hours.
    #[inline]
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 * 24.0
    }

    /// `true` for durations of zero or less.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 <= 0.0
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: f64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Duration) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}d", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}d", self.0)
    }
}

/// An instant of virtual time (days since the start of the simulation).
///
/// `SimTime` and [`Duration`] form the usual affine pair: instants
/// subtract to durations, and durations shift instants.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0.0);

    /// The instant `d` days after the epoch.
    #[inline]
    #[must_use]
    pub const fn at_days(d: f64) -> Self {
        SimTime(d)
    }

    /// Days since the epoch.
    #[inline]
    #[must_use]
    pub const fn as_days(self) -> f64 {
        self.0
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_days())
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_days();
    }
}

impl Sub for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::days(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}d", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}d", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(Duration::days(1.0).as_hours(), 24.0);
        assert!((Duration::hours(12.0).as_days() - 0.5).abs() < 1e-12);
        assert!((Duration::minutes(90.0).as_hours() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Duration::days(3.0);
        assert_eq!((t1 - t0).as_days(), 3.0);
        let d = Duration::days(2.0) + Duration::days(1.0) - Duration::days(0.5);
        assert_eq!(d.as_days(), 2.5);
        assert_eq!((Duration::days(3.0) * 2.0).as_days(), 6.0);
        assert_eq!(Duration::days(6.0) / Duration::days(3.0), 2.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::at_days(1.0) < SimTime::at_days(2.0));
        assert!(Duration::minutes(20.0) < Duration::hours(1.0));
        assert!(Duration::ZERO.is_zero());
        assert!(!Duration::days(0.1).is_zero());
    }

    #[test]
    fn table_1_values_read_naturally() {
        // Site 2 (beowulf): hardware repair = 4h constant + 24h mean exp.
        let constant = Duration::hours(4.0);
        let restart = Duration::minutes(15.0);
        assert!(constant > restart);
        assert!((constant.as_days() - 4.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_days() {
        assert_eq!(format!("{}", Duration::days(1.5)), "1.500000d");
        assert_eq!(format!("{}", SimTime::at_days(2.0)), "t=2.000000d");
    }
}
