//! The virtual clock: instants and durations measured in days.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of virtual time, in days.
///
/// Days are the natural unit of the paper's Table 1 (mean times to fail
/// are given in days, repairs in hours, restarts in minutes); the
/// constructors convert so call sites read like the table.
///
/// # Examples
///
/// ```
/// use dynvote_sim::Duration;
///
/// let repair = Duration::hours(4.0) + Duration::hours(24.0);
/// assert!((repair.as_days() - 28.0 / 24.0).abs() < 1e-12);
/// assert!(Duration::minutes(20.0) < Duration::hours(1.0));
/// ```
///
/// # Ordering
///
/// Durations produced by the simulator are always finite (samples of
/// finite-mean distributions and sums thereof), so `Duration` commits to
/// the *total* order of [`f64::total_cmp`] and implements [`Eq`]/[`Ord`].
/// This lets the event queue order entries without a lossy
/// `partial_cmp(..).unwrap_or(Equal)` fallback that would silently
/// mis-order events if a NaN ever appeared: under `total_cmp` a NaN
/// sorts consistently (after every finite value) instead of comparing
/// equal to everything.
#[derive(Clone, Copy, Default)]
pub struct Duration(f64);

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0.0);

    /// A duration of `d` days.
    #[inline]
    #[must_use]
    pub const fn days(d: f64) -> Self {
        Duration(d)
    }

    /// A duration of `h` hours.
    #[inline]
    #[must_use]
    pub fn hours(h: f64) -> Self {
        Duration(h / 24.0)
    }

    /// A duration of `m` minutes.
    #[inline]
    #[must_use]
    pub fn minutes(m: f64) -> Self {
        Duration(m / (24.0 * 60.0))
    }

    /// The duration in days.
    #[inline]
    #[must_use]
    pub const fn as_days(self) -> f64 {
        self.0
    }

    /// The duration in hours.
    #[inline]
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 * 24.0
    }

    /// `true` for durations of zero or less.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 <= 0.0
    }
}

impl PartialEq for Duration {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for Duration {}

impl PartialOrd for Duration {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Duration {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: f64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Duration) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}d", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}d", self.0)
    }
}

/// An instant of virtual time (days since the start of the simulation).
///
/// `SimTime` and [`Duration`] form the usual affine pair: instants
/// subtract to durations, and durations shift instants.
///
/// Like [`Duration`], instants are finite by construction, so `SimTime`
/// implements the total [`Eq`]/[`Ord`] order of [`f64::total_cmp`] —
/// the event queue relies on it to order entries without a fallback.
#[derive(Clone, Copy, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0.0);

    /// The instant `d` days after the epoch.
    #[inline]
    #[must_use]
    pub const fn at_days(d: f64) -> Self {
        SimTime(d)
    }

    /// Days since the epoch.
    #[inline]
    #[must_use]
    pub const fn as_days(self) -> f64 {
        self.0
    }
}

impl PartialEq for SimTime {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_days())
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_days();
    }
}

impl Sub for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::days(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}d", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}d", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(Duration::days(1.0).as_hours(), 24.0);
        assert!((Duration::hours(12.0).as_days() - 0.5).abs() < 1e-12);
        assert!((Duration::minutes(90.0).as_hours() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Duration::days(3.0);
        assert_eq!((t1 - t0).as_days(), 3.0);
        let d = Duration::days(2.0) + Duration::days(1.0) - Duration::days(0.5);
        assert_eq!(d.as_days(), 2.5);
        assert_eq!((Duration::days(3.0) * 2.0).as_days(), 6.0);
        assert_eq!(Duration::days(6.0) / Duration::days(3.0), 2.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::at_days(1.0) < SimTime::at_days(2.0));
        assert!(Duration::minutes(20.0) < Duration::hours(1.0));
        assert!(Duration::ZERO.is_zero());
        assert!(!Duration::days(0.1).is_zero());
    }

    #[test]
    fn ordering_is_total() {
        use core::cmp::Ordering;
        // The whole point of total_cmp: comparisons never "fall back".
        let a = SimTime::at_days(1.0);
        let b = SimTime::at_days(2.0);
        assert_eq!(a.cmp(&b), Ordering::Less);
        assert_eq!(b.cmp(&a), Ordering::Greater);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        // Even a NaN (which the simulator never produces) sorts
        // consistently — after every finite instant — instead of
        // comparing Equal to everything as the old fallback did.
        let nan = SimTime::at_days(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(b.cmp(&nan), Ordering::Less);
        assert_eq!(nan.cmp(&b), Ordering::Greater);
        let d = Duration::days(f64::NAN);
        assert_eq!(d.cmp(&d), Ordering::Equal);
        assert!(Duration::days(1e300) < d);
    }

    #[test]
    fn equal_instants_sort_equal_in_collections() {
        let mut v = vec![
            SimTime::at_days(3.0),
            SimTime::at_days(1.0),
            SimTime::at_days(2.0),
            SimTime::at_days(1.0),
        ];
        v.sort(); // requires Ord
        assert_eq!(
            v,
            vec![
                SimTime::at_days(1.0),
                SimTime::at_days(1.0),
                SimTime::at_days(2.0),
                SimTime::at_days(3.0),
            ]
        );
    }

    #[test]
    fn table_1_values_read_naturally() {
        // Site 2 (beowulf): hardware repair = 4h constant + 24h mean exp.
        let constant = Duration::hours(4.0);
        let restart = Duration::minutes(15.0);
        assert!(constant > restart);
        assert!((constant.as_days() - 4.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_days() {
        assert_eq!(format!("{}", Duration::days(1.5)), "1.500000d");
        assert_eq!(format!("{}", SimTime::at_days(2.0)), "t=2.000000d");
    }
}
