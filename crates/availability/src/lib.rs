#![warn(missing_docs)]

//! The paper's availability study, reproduced end to end.
//!
//! This crate packages everything §4 of the paper describes:
//!
//! * [`sites`] — Table 1, verbatim: per-site mean times to fail,
//!   hardware-failure percentages, restart times, hardware repair
//!   distributions, and the 90-day preventive-maintenance schedule of
//!   sites 1, 3 and 5;
//! * [`network`] — the Figure 8 network: eight sites on three
//!   carrier-sense segments joined by two gateway hosts;
//! * [`config`] — the eight copy placements A–H of Table 2;
//! * [`driver`] — the discrete-event simulation: exponential failures,
//!   constant/shifted-exponential repairs, maintenance windows, Poisson
//!   file accesses, driving any [`dynvote_core::policy::AvailabilityPolicy`];
//! * [`run`] — batch-means experiment runner producing unavailability
//!   (Table 2) and mean-outage-duration (Table 3) estimates with 95%
//!   confidence intervals.
//!
//! # Quick example
//!
//! ```
//! use dynvote_availability::{config, network, run, sites};
//! use dynvote_core::policy::PolicyKind;
//!
//! let params = run::Params::quick_test();
//! let result = run::simulate(PolicyKind::Ldv, &config::CONFIG_A, &params);
//! assert!(result.unavailability < 0.05);
//! ```

pub mod config;
pub mod driver;
pub mod network;
pub mod run;
pub mod sites;
pub mod spec;

pub use config::{
    Configuration, ALL_CONFIGS, CONFIG_A, CONFIG_B, CONFIG_C, CONFIG_D, CONFIG_E, CONFIG_F,
    CONFIG_G, CONFIG_H,
};
pub use driver::{Driver, SiteEvent};
pub use run::{
    attribute_outages, measure_ttf, simulate, OutageCause, Params, RunResult, TtfResult,
};
pub use sites::{SiteModel, UCSD_SITES};
pub use spec::{parse_study, SpecError, StudySpec};
