//! The batch-means experiment runner.
//!
//! Reproduces the paper's measurement protocol: all sites start up, the
//! first 360 simulated days are discarded as warm-up, and the remainder
//! of the run is cut into batches whose per-batch unavailabilities give
//! a mean and a 95% Student-t confidence interval (batch-means
//! analysis). Outage durations (Table 3) are logged over the whole
//! post-warm-up period.
//!
//! All policies passed to [`run_trace`] are driven by **one** stochastic
//! trace (common random numbers), so differences between columns of the
//! reproduced Table 2 reflect the protocols, not sampling noise.

use dynvote_core::policy::{AvailabilityPolicy, PolicyKind};
use dynvote_sim::{BatchMeans, Duration, OutageLog, SimTime, UpDownIntegrator};
use dynvote_topology::Network;

use crate::config::Configuration;
use crate::driver::{Change, Driver};
use crate::network::ucsd_network;
use crate::sites::{SiteModel, UCSD_SITES};

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Poisson file-access rate (accesses/day). The paper uses 1.0.
    pub access_rate: f64,
    /// Warm-up period discarded before measurement (the paper: 360 d).
    pub warmup: Duration,
    /// Length of one batch.
    pub batch_len: Duration,
    /// Number of batches.
    pub batches: usize,
}

impl Params {
    /// Full-fidelity parameters for regenerating Tables 2 and 3:
    /// 360-day warm-up, 30 batches of 40,000 days (1.2M measured days),
    /// one access per day.
    #[must_use]
    pub fn paper() -> Self {
        Params {
            seed: 0x1988_1CDE,
            access_rate: 1.0,
            warmup: Duration::days(360.0),
            batch_len: Duration::days(40_000.0),
            batches: 30,
        }
    }

    /// Reduced parameters for unit/integration tests (seconds, not
    /// minutes): 6 batches of 3,000 days.
    #[must_use]
    pub fn quick_test() -> Self {
        Params {
            seed: 0x1988_1CDE,
            access_rate: 1.0,
            warmup: Duration::days(360.0),
            batch_len: Duration::days(3_000.0),
            batches: 6,
        }
    }

    /// Total simulated horizon (warm-up plus all batches).
    #[must_use]
    pub fn horizon(&self) -> Duration {
        self.warmup + self.batch_len * self.batches as f64
    }
}

/// The measured outcome of one (policy, configuration) cell.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Policy name (Table 2 column).
    pub policy: String,
    /// Configuration name (Table 2 row).
    pub config: String,
    /// Time-weighted unavailability (the Table 2 metric).
    pub unavailability: f64,
    /// Half-width of the 95% confidence interval on the unavailability.
    pub ci_half: f64,
    /// Mean duration of unavailable periods in days (the Table 3
    /// metric).
    pub mean_outage_days: f64,
    /// Median outage duration in days (0 when no outage occurred).
    pub p50_outage_days: f64,
    /// 90th-percentile outage duration in days (0 when none).
    pub p90_outage_days: f64,
    /// Longest single outage in days (0 when none).
    pub max_outage_days: f64,
    /// Number of distinct outages observed after warm-up.
    pub outage_count: u64,
    /// Rival-grant (sequential-claim hazard) events over the whole run
    /// — non-zero only for the topological protocols.
    pub hazard_events: u64,
    /// Post-warm-up measured time, in days.
    pub measured_days: f64,
}

impl RunResult {
    /// Availability (1 − unavailability).
    #[must_use]
    pub fn availability(&self) -> f64 {
        1.0 - self.unavailability
    }
}

/// Drives `policies` through one common stochastic trace over `network`
/// with per-site `models`, and returns one [`RunResult`] per policy.
///
/// # Panics
///
/// Panics when `params.batches == 0` or no site exists.
pub fn run_trace(
    network: &Network,
    models: &[SiteModel],
    mut policies: Vec<Box<dyn AvailabilityPolicy>>,
    params: &Params,
    config_label: &str,
) -> Vec<RunResult> {
    assert!(params.batches > 0, "at least one batch is required");
    let mut driver = Driver::new(network.clone(), models, params.seed, params.access_rate);
    let n = policies.len();
    for p in &mut policies {
        p.reset();
        // Seed the instantaneous policies with the initial (all-up) view.
        p.on_topology_change(driver.reachability());
    }

    // ---- warm-up ----------------------------------------------------------
    // The queue can hold *stale* (cancelled) events, so the earliest
    // queued timestamp is not necessarily the next effective event:
    // phase transitions are driven by the times `step()` actually
    // returns, carrying the first post-boundary event over into the
    // next phase.
    let warmup_end = SimTime::ZERO + params.warmup;
    let mut carried: Option<(SimTime, Change)>;
    loop {
        let (t, change) = driver.step().expect("failure processes never end");
        if t >= warmup_end {
            carried = Some((t, change));
            break;
        }
        let reach = driver.reachability();
        for p in &mut policies {
            let _ = match change {
                Change::Topology => p.on_topology_change(reach),
                Change::Access => p.on_access(reach),
            };
        }
    }

    // ---- measurement ------------------------------------------------------
    // NOTE: the carried event has already mutated the *driver* (the up
    // set changed at time t ≥ warmup_end) but not the policies; the
    // initial availability is therefore probed against the pre-event
    // policy state and the pre-event reachability is gone. The bias is
    // one event at the warm-up boundary of a multi-year run —
    // negligible — and the code below immediately processes the carried
    // event at its true timestamp.
    let mut integrators: Vec<UpDownIntegrator> = Vec::with_capacity(n);
    let mut outages: Vec<OutageLog> = Vec::with_capacity(n);
    for p in &policies {
        let avail = p.is_available(driver.reachability());
        integrators.push(UpDownIntegrator::new(warmup_end, avail));
        outages.push(OutageLog::new(warmup_end, avail));
    }
    let mut batch_stats: Vec<BatchMeans> = (0..n).map(|_| BatchMeans::new()).collect();

    let mut next_boundary = warmup_end + params.batch_len;
    let mut completed = 0usize;
    'measure: while completed < params.batches {
        let (t, change) = match carried.take() {
            Some(event) => event,
            None => driver.step().expect("failure processes never end"),
        };
        // Close every batch boundary the event jumped over.
        while t >= next_boundary {
            for i in 0..n {
                integrators[i].advance(next_boundary);
                batch_stats[i].push(integrators[i].unavailability());
                integrators[i].reset(next_boundary);
            }
            completed += 1;
            next_boundary += params.batch_len;
            if completed == params.batches {
                break 'measure;
            }
        }
        let reach = driver.reachability();
        for i in 0..n {
            // The event handlers return the post-event availability —
            // contractually equal to `is_available`, which would cost a
            // second decision pass per (event, policy).
            let avail = match change {
                Change::Topology => policies[i].on_topology_change(reach),
                Change::Access => policies[i].on_access(reach),
            };
            debug_assert_eq!(
                avail,
                policies[i].is_available(reach),
                "{}: event-handler availability out of sync",
                policies[i].name()
            );
            integrators[i].record(t, avail);
            outages[i].record(t, avail);
        }
    }

    let end = warmup_end + params.batch_len * params.batches as f64;
    let measured_days = (end - warmup_end).as_days();
    policies
        .iter()
        .zip(batch_stats)
        .zip(outages.iter_mut())
        .map(|((p, stats), log)| {
            log.finish(end);
            let quant = |q: f64| log.quantile(q).map_or(0.0, |d| d.as_days());
            RunResult {
                policy: p.name().to_string(),
                config: config_label.to_string(),
                unavailability: stats.mean(),
                ci_half: stats.half_width_95(),
                mean_outage_days: log.mean().as_days(),
                p50_outage_days: quant(0.5),
                p90_outage_days: quant(0.9),
                max_outage_days: log.longest().as_days(),
                outage_count: log.count(),
                hazard_events: p.hazard_events(),
                measured_days,
            }
        })
        .collect()
}

/// The outcome of a reliability (time-to-first-outage) measurement.
#[derive(Clone, Debug)]
pub struct TtfResult {
    /// Policy name.
    pub policy: String,
    /// Mean time to the first unavailability, in days, over the
    /// *uncensored* replications.
    pub mean_ttf_days: f64,
    /// Half-width of the 95% confidence interval (uncensored sample).
    pub ci_half: f64,
    /// Number of replications that reached an outage within the
    /// horizon.
    pub observed: usize,
    /// Number of replications censored at the horizon (the file never
    /// became unavailable); a non-zero count means the true MTTF is
    /// *underestimated* by `mean_ttf_days`.
    pub censored: usize,
}

/// Measures the file's **reliability**: the mean time from a fresh
/// all-up start until the file *first* becomes unavailable, over
/// `replications` independent runs (each capped at `horizon`).
///
/// This is the first-passage counterpart of the Table 2 metric — the
/// quantity behind the paper's "continuously available for more than
/// three hundred years" remark — and is cross-checked against the exact
/// CTMC first-passage solutions by the `reliability` experiment.
///
/// # Panics
///
/// Panics when `replications == 0`.
pub fn measure_ttf<F>(
    network: &Network,
    models: &[SiteModel],
    make_policy: F,
    access_rate: f64,
    seed: u64,
    replications: usize,
    horizon: Duration,
) -> TtfResult
where
    F: Fn() -> Box<dyn AvailabilityPolicy>,
{
    assert!(replications > 0, "at least one replication required");
    let mut stats = BatchMeans::new();
    let mut censored = 0usize;
    let mut name = String::new();
    // One memo table for the whole study: each replication forks the
    // warm cache, so the union-find runs at most once per distinct
    // up-set across *all* replications.
    let mut shared_cache = dynvote_topology::ReachabilityCache::new(network);
    for rep in 0..replications {
        let mut policy = make_policy();
        name = policy.name().to_string();
        policy.reset();
        let mut driver = Driver::with_cache(
            network.clone(),
            models,
            seed.wrapping_add(rep as u64).wrapping_mul(0x9E37_79B9),
            access_rate,
            shared_cache.clone(),
        );
        policy.on_topology_change(driver.reachability());
        let end = SimTime::ZERO + horizon;
        let mut first_outage: Option<SimTime> = None;
        while let Some((t, change)) = driver.step() {
            if t >= end {
                break;
            }
            let available = match change {
                Change::Topology => policy.on_topology_change(driver.reachability()),
                Change::Access => policy.on_access(driver.reachability()),
            };
            debug_assert_eq!(
                available,
                policy.is_available(driver.reachability()),
                "{}: event-handler availability out of sync",
                policy.name()
            );
            if !available {
                first_outage = Some(t);
                break;
            }
        }
        match first_outage {
            Some(t) => stats.push(t.as_days()),
            None => censored += 1,
        }
        // Take the cache back so up-sets first seen in this replication
        // stay warm for the next one.
        shared_cache = driver.into_cache();
    }
    TtfResult {
        policy: name,
        mean_ttf_days: stats.mean(),
        ci_half: stats.half_width_95(),
        observed: stats.n(),
        censored,
    }
}

/// One cause bucket from [`attribute_outages`]: all outage time during
/// which the *same set of sites* was down at the moment the outage
/// began.
#[derive(Clone, Debug)]
pub struct OutageCause {
    /// The down sites when the outage began (the proximate cause).
    pub down: dynvote_types::SiteSet,
    /// Number of outages beginning under this signature.
    pub count: u64,
    /// Total unavailable days attributed to this signature.
    pub total_days: f64,
}

/// Explains a (policy, configuration) cell: runs one measurement and
/// attributes every outage to the set of sites that were down when it
/// began, aggregated by signature and sorted by total attributed time.
///
/// This is diagnosis, not measurement — e.g. it shows at a glance that
/// MCV's configuration-A unavailability is dominated by
/// "{wizard, beowulf} down" episodes while LDV's is dominated by
/// "{csvax} down during a shrunken quorum".
///
/// # Panics
///
/// Panics when `params.batches == 0`.
pub fn attribute_outages(
    network: &Network,
    models: &[SiteModel],
    mut policy: Box<dyn AvailabilityPolicy>,
    params: &Params,
) -> Vec<OutageCause> {
    assert!(params.batches > 0, "at least one batch is required");
    let mut driver = Driver::new(network.clone(), models, params.seed, params.access_rate);
    policy.reset();
    policy.on_topology_change(driver.reachability());
    let warmup_end = SimTime::ZERO + params.warmup;
    let end = warmup_end + params.batch_len * params.batches as f64;
    let all = network.sites();

    let mut causes: std::collections::HashMap<u64, OutageCause> = std::collections::HashMap::new();
    let mut available = true;
    let mut outage_started: Option<(SimTime, dynvote_types::SiteSet)> = None;
    while let Some((t, change)) = driver.step() {
        if t >= end {
            break;
        }
        let now_available = match change {
            Change::Topology => policy.on_topology_change(driver.reachability()),
            Change::Access => policy.on_access(driver.reachability()),
        };
        if t < warmup_end {
            continue;
        }
        match (available, now_available) {
            (true, false) => outage_started = Some((t, all - driver.up())),
            (false, true) => {
                if let Some((started, down)) = outage_started.take() {
                    let bucket = causes.entry(down.bits()).or_insert(OutageCause {
                        down,
                        count: 0,
                        total_days: 0.0,
                    });
                    bucket.count += 1;
                    bucket.total_days += (t - started).as_days();
                }
            }
            _ => {}
        }
        available = now_available;
    }
    let mut out: Vec<OutageCause> = causes.into_values().collect();
    out.sort_by(|a, b| b.total_days.partial_cmp(&a.total_days).expect("finite"));
    out
}

/// Simulates one paper policy on one Table 2 configuration over the
/// Figure 8 network.
#[must_use]
pub fn simulate(kind: PolicyKind, config: &Configuration, params: &Params) -> RunResult {
    let network = ucsd_network();
    let policy = kind.build(config.copies, &network);
    run_trace(&network, &UCSD_SITES, vec![policy], params, config.name)
        .pop()
        .expect("one policy in, one result out")
}

/// Simulates all six paper policies on one configuration with common
/// random numbers — one Table 2 row.
#[must_use]
pub fn simulate_row(config: &Configuration, params: &Params) -> Vec<RunResult> {
    let network = ucsd_network();
    let policies: Vec<Box<dyn AvailabilityPolicy>> = PolicyKind::TABLE
        .iter()
        .map(|k| k.build(config.copies, &network))
        .collect();
    run_trace(&network, &UCSD_SITES, policies, params, config.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CONFIG_A, CONFIG_D, CONFIG_E};
    use dynvote_types::SiteSet;

    #[test]
    fn results_are_deterministic() {
        let params = Params::quick_test();
        let a = simulate(PolicyKind::Ldv, &CONFIG_A, &params);
        let b = simulate(PolicyKind::Ldv, &CONFIG_A, &params);
        assert_eq!(a.unavailability, b.unavailability);
        assert_eq!(a.outage_count, b.outage_count);
    }

    #[test]
    fn unavailability_is_a_probability() {
        let params = Params::quick_test();
        for kind in PolicyKind::TABLE {
            let r = simulate(kind, &CONFIG_D, &params);
            assert!(
                (0.0..=1.0).contains(&r.unavailability),
                "{kind}: {}",
                r.unavailability
            );
        }
    }

    #[test]
    fn config_a_is_highly_available_under_ldv() {
        let r = simulate(PolicyKind::Ldv, &CONFIG_A, &Params::quick_test());
        assert!(r.unavailability < 0.01, "got {}", r.unavailability);
    }

    #[test]
    fn config_d_is_much_worse_than_config_a_for_mcv() {
        // Table 2: MCV on D (0.069) is ~30× worse than on A (0.002).
        let params = Params::quick_test();
        let a = simulate(PolicyKind::Mcv, &CONFIG_A, &params);
        let d = simulate(PolicyKind::Mcv, &CONFIG_D, &params);
        assert!(
            d.unavailability > 5.0 * a.unavailability,
            "A: {}, D: {}",
            a.unavailability,
            d.unavailability
        );
    }

    #[test]
    fn tdv_on_config_e_is_near_perfect() {
        // Table 2 row E: TDV/OTDV measured 0.000000 — all four copies on
        // one Ethernet, so one surviving copy suffices.
        let r = simulate(PolicyKind::Tdv, &CONFIG_E, &Params::quick_test());
        assert!(r.unavailability < 1e-4, "got {}", r.unavailability);
    }

    #[test]
    fn row_runs_all_six_policies_on_one_trace() {
        let row = simulate_row(&CONFIG_A, &Params::quick_test());
        let names: Vec<&str> = row.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(names, vec!["MCV", "DV", "LDV", "ODV", "TDV", "OTDV"]);
        for r in &row {
            assert_eq!(r.config, "A");
            assert!(r.measured_days > 0.0);
        }
    }

    #[test]
    fn horizon_accounts_for_batches() {
        let p = Params::quick_test();
        assert!((p.horizon().as_days() - (360.0 + 6.0 * 3000.0)).abs() < 1e-9);
    }

    #[test]
    fn mean_outage_days_only_when_outages_happen() {
        let params = Params::quick_test();
        let r = simulate(PolicyKind::Dv, &CONFIG_D, &params);
        if r.outage_count > 0 {
            assert!(r.mean_outage_days > 0.0);
        }
    }

    #[test]
    fn availability_helper() {
        let r = RunResult {
            policy: "X".into(),
            config: "A".into(),
            unavailability: 0.25,
            ci_half: 0.0,
            mean_outage_days: 0.0,
            p50_outage_days: 0.0,
            p90_outage_days: 0.0,
            max_outage_days: 0.0,
            outage_count: 0,
            hazard_events: 0,
            measured_days: 1.0,
        };
        assert_eq!(r.availability(), 0.75);
    }

    #[test]
    fn ttf_single_site_matches_its_mttf() {
        use dynvote_core::policy::McvPolicy;
        let network = Network::single_segment(1);
        let models = crate::sites::identical_sites(1, Duration::days(10.0), Duration::hours(2.0));
        let r = measure_ttf(
            &network,
            &models,
            || Box::new(McvPolicy::new(SiteSet::first_n(1))),
            0.0,
            7,
            400,
            Duration::days(1e6),
        );
        assert_eq!(r.censored, 0);
        assert_eq!(r.observed, 400);
        assert!(
            (r.mean_ttf_days - 10.0).abs() < 1.5,
            "measured {}",
            r.mean_ttf_days
        );
    }

    #[test]
    fn ttf_censoring_reported() {
        use dynvote_core::policy::McvPolicy;
        // A near-immortal site with a tiny horizon: everything censors.
        let network = Network::single_segment(1);
        let models = crate::sites::identical_sites(1, Duration::days(1e9), Duration::hours(2.0));
        let r = measure_ttf(
            &network,
            &models,
            || Box::new(McvPolicy::new(SiteSet::first_n(1))),
            0.0,
            7,
            10,
            Duration::days(100.0),
        );
        assert_eq!(r.censored, 10);
        assert_eq!(r.observed, 0);
    }

    #[test]
    fn custom_policy_via_run_trace() {
        // Available Copy on a single-segment 3-copy system: essentially
        // never unavailable (needs all three down at once).
        use dynvote_core::policy::AvailableCopyPolicy;
        let network = Network::single_segment(3);
        let models = crate::sites::identical_sites(3, Duration::days(50.0), Duration::hours(2.0));
        let policy = Box::new(AvailableCopyPolicy::new(SiteSet::first_n(3)));
        let results = run_trace(&network, &models, vec![policy], &Params::quick_test(), "ac");
        assert!(results[0].unavailability < 1e-4);
    }
}
