//! Table 1: site characteristics of the modelled UCSD network.

use std::borrow::Cow;

use dynvote_sim::{Dist, Duration};

/// The failure/repair behaviour of one site, exactly as parameterized in
/// Table 1 of the paper.
///
/// * Times to fail are exponential with mean [`SiteModel::mttf`].
/// * A failure is a **hardware** failure with probability
///   [`SiteModel::hw_fraction`]; hardware repairs take a constant
///   minimum-service time plus an exponential actual-repair time.
/// * Otherwise it is a **software** failure, fixed by a constant-time
///   restart.
/// * Some sites additionally take 3 hours of preventive maintenance
///   every 90 days (Table 1 note: sites 1, 3 and 5).
#[derive(Clone, Debug)]
pub struct SiteModel {
    /// Hostname (for table output).
    pub name: Cow<'static, str>,
    /// Mean time to fail.
    pub mttf: Duration,
    /// Fraction of failures that are hardware failures (0..=1).
    pub hw_fraction: f64,
    /// Constant restart time after a software failure.
    pub restart: Duration,
    /// Constant part of the hardware repair time.
    pub hw_floor: Duration,
    /// Mean of the exponential part of the hardware repair time.
    pub hw_mean: Duration,
    /// Preventive maintenance: `(interval, duration)` when scheduled.
    pub maintenance: Option<(Duration, Duration)>,
}

impl SiteModel {
    /// The time-to-fail distribution.
    #[must_use]
    pub fn fail_dist(&self) -> Dist {
        Dist::Exponential(self.mttf)
    }

    /// The software-restart distribution.
    #[must_use]
    pub fn software_repair_dist(&self) -> Dist {
        Dist::Constant(self.restart)
    }

    /// The hardware-repair distribution.
    #[must_use]
    pub fn hardware_repair_dist(&self) -> Dist {
        Dist::ShiftedExponential {
            floor: self.hw_floor,
            mean: self.hw_mean,
        }
    }

    /// The long-run mean repair time across both failure kinds.
    #[must_use]
    pub fn mean_repair(&self) -> Duration {
        self.hardware_repair_dist().mean() * self.hw_fraction
            + self.software_repair_dist().mean() * (1.0 - self.hw_fraction)
    }

    /// Steady-state unavailability of the site alone (ignoring
    /// maintenance): `MTTR / (MTTF + MTTR)`.
    #[must_use]
    pub fn intrinsic_unavailability(&self) -> f64 {
        let mttr = self.mean_repair();
        mttr / (self.mttf + mttr)
    }
}

/// Table 1, row by row. Index *i* holds the paper's site *i + 1*
/// (site numbering in the paper is 1-based; `SiteId` is 0-based).
pub static UCSD_SITES: [SiteModel; 8] = [
    // 1: csvax — MTTF 36.5 d, 10% hw, 20 min restart, 0 + exp(2 h),
    //    maintenance.
    SiteModel {
        name: Cow::Borrowed("csvax"),
        mttf: Duration::days(36.5),
        hw_fraction: 0.10,
        restart: Duration::days(20.0 / (24.0 * 60.0)),
        hw_floor: Duration::days(0.0),
        hw_mean: Duration::days(2.0 / 24.0),
        maintenance: Some((Duration::days(90.0), Duration::days(3.0 / 24.0))),
    },
    // 2: beowulf — MTTF 10 d, 10% hw, 15 min restart, 4 h + exp(24 h).
    SiteModel {
        name: Cow::Borrowed("beowulf"),
        mttf: Duration::days(10.0),
        hw_fraction: 0.10,
        restart: Duration::days(15.0 / (24.0 * 60.0)),
        hw_floor: Duration::days(4.0 / 24.0),
        hw_mean: Duration::days(1.0), // 24 hours
        maintenance: None,
    },
    // 3: grendel — MTTF 365 d, 90% hw, 10 min restart, 0 + exp(2 h),
    //    maintenance.
    SiteModel {
        name: Cow::Borrowed("grendel"),
        mttf: Duration::days(365.0),
        hw_fraction: 0.90,
        restart: Duration::days(10.0 / (24.0 * 60.0)),
        hw_floor: Duration::days(0.0),
        hw_mean: Duration::days(2.0 / 24.0),
        maintenance: Some((Duration::days(90.0), Duration::days(3.0 / 24.0))),
    },
    // 4: wizard — MTTF 50 d, 50% hw, 15 min restart, 168 h + exp(168 h).
    SiteModel {
        name: Cow::Borrowed("wizard"),
        mttf: Duration::days(50.0),
        hw_fraction: 0.50,
        restart: Duration::days(15.0 / (24.0 * 60.0)),
        hw_floor: Duration::days(168.0 / 24.0),
        hw_mean: Duration::days(168.0 / 24.0),
        maintenance: None,
    },
    // 5: amos — MTTF 365 d, 90% hw, 10 min restart, 0 + exp(2 h),
    //    maintenance.
    SiteModel {
        name: Cow::Borrowed("amos"),
        mttf: Duration::days(365.0),
        hw_fraction: 0.90,
        restart: Duration::days(10.0 / (24.0 * 60.0)),
        hw_floor: Duration::days(0.0),
        hw_mean: Duration::days(2.0 / 24.0),
        maintenance: Some((Duration::days(90.0), Duration::days(3.0 / 24.0))),
    },
    // 6: gremlin — MTTF 50 d, 50% hw, 15 min restart, 168 h + exp(168 h).
    SiteModel {
        name: Cow::Borrowed("gremlin"),
        mttf: Duration::days(50.0),
        hw_fraction: 0.50,
        restart: Duration::days(15.0 / (24.0 * 60.0)),
        hw_floor: Duration::days(168.0 / 24.0),
        hw_mean: Duration::days(168.0 / 24.0),
        maintenance: None,
    },
    // 7: rip — identical to gremlin.
    SiteModel {
        name: Cow::Borrowed("rip"),
        mttf: Duration::days(50.0),
        hw_fraction: 0.50,
        restart: Duration::days(15.0 / (24.0 * 60.0)),
        hw_floor: Duration::days(168.0 / 24.0),
        hw_mean: Duration::days(168.0 / 24.0),
        maintenance: None,
    },
    // 8: mangle — identical to gremlin.
    SiteModel {
        name: Cow::Borrowed("mangle"),
        mttf: Duration::days(50.0),
        hw_fraction: 0.50,
        restart: Duration::days(15.0 / (24.0 * 60.0)),
        hw_floor: Duration::days(168.0 / 24.0),
        hw_mean: Duration::days(168.0 / 24.0),
        maintenance: None,
    },
];

/// A uniform fleet of identical sites (used by the analytic
/// cross-validation, where closed forms need identical exponential
/// failure/repair behaviour and no maintenance).
#[must_use]
pub fn identical_sites(n: usize, mttf: Duration, mttr: Duration) -> Vec<SiteModel> {
    (0..n)
        .map(|_| SiteModel {
            name: Cow::Borrowed("uniform"),
            mttf,
            hw_fraction: 1.0,
            restart: Duration::ZERO,
            hw_floor: Duration::ZERO,
            hw_mean: mttr,
            maintenance: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_spot_checks() {
        assert_eq!(UCSD_SITES[0].name, "csvax");
        assert_eq!(UCSD_SITES[0].mttf.as_days(), 36.5);
        assert_eq!(UCSD_SITES[1].hw_floor.as_hours(), 4.0);
        assert!((UCSD_SITES[1].hw_mean.as_hours() - 24.0).abs() < 1e-9);
        assert_eq!(UCSD_SITES[3].name, "wizard");
        assert_eq!(UCSD_SITES[3].hw_fraction, 0.5);
        assert!((UCSD_SITES[3].hw_floor.as_hours() - 168.0).abs() < 1e-9);
        // Sites 1, 3, 5 (indices 0, 2, 4) have maintenance; others none.
        for (i, site) in UCSD_SITES.iter().enumerate() {
            assert_eq!(
                site.maintenance.is_some(),
                matches!(i, 0 | 2 | 4),
                "site {} ({})",
                i + 1,
                site.name
            );
        }
    }

    #[test]
    fn maintenance_is_90_days_3_hours() {
        let (interval, duration) = UCSD_SITES[0].maintenance.unwrap();
        assert_eq!(interval.as_days(), 90.0);
        assert!((duration.as_hours() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mean_repair_mixes_hardware_and_software() {
        // beowulf: 10% × (4 + 24) h + 90% × 0.25 h = 3.025 h.
        let m = UCSD_SITES[1].mean_repair();
        assert!((m.as_hours() - (0.1 * 28.0 + 0.9 * 0.25)).abs() < 1e-9);
    }

    #[test]
    fn wizard_dominates_intrinsic_unavailability() {
        // wizard is down ~2 weeks per ~50-day cycle — by far the worst.
        let wizard = UCSD_SITES[3].intrinsic_unavailability();
        for (i, site) in UCSD_SITES.iter().enumerate() {
            if !matches!(i, 3 | 5 | 6 | 7) {
                assert!(
                    site.intrinsic_unavailability() < wizard,
                    "site {} should be more available than wizard",
                    site.name
                );
            }
        }
        // Mean repair = 0.5 × (168 + 168) h + 0.5 × 0.25 h ≈ 7 days, so
        // intrinsic unavailability ≈ 7 / 57 ≈ 0.12.
        assert!(
            wizard > 0.10 && wizard < 0.15,
            "wizard ≈ 7/57 ≈ 0.12, got {wizard}"
        );
    }

    #[test]
    fn identical_sites_are_identical() {
        let fleet = identical_sites(4, Duration::days(10.0), Duration::hours(12.0));
        assert_eq!(fleet.len(), 4);
        for s in &fleet {
            assert_eq!(s.mttf.as_days(), 10.0);
            assert_eq!(s.hw_fraction, 1.0);
            assert!(s.maintenance.is_none());
            assert!((s.mean_repair().as_hours() - 12.0).abs() < 1e-9);
        }
    }
}
