//! The eight copy placements (configurations A–H) of the evaluation.

use dynvote_types::SiteSet;

/// One row of Table 2 / Table 3: a named placement of physical copies
/// on the Figure 8 network.
///
/// Paper site numbers are 1-based; the stored [`SiteSet`] uses 0-based
/// [`dynvote_types::SiteId`] indices (paper site *k* ↔ index *k − 1*).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Configuration {
    /// The paper's configuration letter.
    pub name: &'static str,
    /// Paper site numbers holding copies (for display).
    pub paper_sites: &'static [usize],
    /// The copies as 0-based site indices.
    pub copies: SiteSet,
    /// The paper's description of the partition structure.
    pub note: &'static str,
}

const fn cfg(
    name: &'static str,
    paper_sites: &'static [usize],
    bits: u64,
    note: &'static str,
) -> Configuration {
    Configuration {
        name,
        paper_sites,
        copies: SiteSet::from_bits(bits),
        note,
    }
}

const fn bits_of(paper_sites: &[usize]) -> u64 {
    let mut b = 0u64;
    let mut i = 0;
    while i < paper_sites.len() {
        b |= 1 << (paper_sites[i] - 1);
        i += 1;
    }
    b
}

/// Configuration A: copies on sites 1, 2, 4 — no partitions possible.
pub static CONFIG_A: Configuration = cfg(
    "A",
    &[1, 2, 4],
    bits_of(&[1, 2, 4]),
    "three copies, all on the main segment: no partitions",
);
/// Configuration B: copies on sites 1, 2, 6 — partition point at site 4.
pub static CONFIG_B: Configuration = cfg(
    "B",
    &[1, 2, 6],
    bits_of(&[1, 2, 6]),
    "three copies, one partition point (site 4)",
);
/// Configuration C: copies on sites 1, 6, 8 — partition points at 4 and 5.
pub static CONFIG_C: Configuration = cfg(
    "C",
    &[1, 6, 8],
    bits_of(&[1, 6, 8]),
    "three copies, each on its own segment; partition points at sites 4 and 5",
);
/// Configuration D: copies on sites 6, 7, 8 — either gateway partitions.
pub static CONFIG_D: Configuration = cfg(
    "D",
    &[6, 7, 8],
    bits_of(&[6, 7, 8]),
    "three copies on the subordinate segments; site 4 or 5 can partition",
);
/// Configuration E: copies on sites 1, 2, 3, 4 — no partitions possible.
pub static CONFIG_E: Configuration = cfg(
    "E",
    &[1, 2, 3, 4],
    bits_of(&[1, 2, 3, 4]),
    "four copies, all on the main segment (same Ethernet): no partitions",
);
/// Configuration F: copies on sites 1, 2, 4, 6 — partition point at site 4.
pub static CONFIG_F: Configuration = cfg(
    "F",
    &[1, 2, 4, 6],
    bits_of(&[1, 2, 4, 6]),
    "four copies, one partition point (site 4); single failure can tie",
);
/// Configuration G: copies on sites 1, 2, 6, 8 — partition points at 4 and 5.
pub static CONFIG_G: Configuration = cfg(
    "G",
    &[1, 2, 6, 8],
    bits_of(&[1, 2, 6, 8]),
    "four copies, partition points at sites 4 and 5",
);
/// Configuration H: copies on sites 1, 2, 7, 8 — partition point at site 5.
pub static CONFIG_H: Configuration = cfg(
    "H",
    &[1, 2, 7, 8],
    bits_of(&[1, 2, 7, 8]),
    "two pairs of copies separated by a single partition point (site 5)",
);

/// All eight configurations in Table 2 row order.
pub static ALL_CONFIGS: [&Configuration; 8] = [
    &CONFIG_A, &CONFIG_B, &CONFIG_C, &CONFIG_D, &CONFIG_E, &CONFIG_F, &CONFIG_G, &CONFIG_H,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ucsd_network;
    use dynvote_types::SiteId;

    #[test]
    fn copy_counts() {
        for c in &ALL_CONFIGS[..4] {
            assert_eq!(c.copies.len(), 3, "configuration {}", c.name);
        }
        for c in &ALL_CONFIGS[4..] {
            assert_eq!(c.copies.len(), 4, "configuration {}", c.name);
        }
    }

    #[test]
    fn paper_site_numbers_round_trip() {
        for c in ALL_CONFIGS {
            let from_paper: SiteSet = c.paper_sites.iter().map(|&k| SiteId::new(k - 1)).collect();
            assert_eq!(from_paper, c.copies, "configuration {}", c.name);
        }
    }

    /// Audits every configuration's stated partition structure against
    /// the Figure 8 topology.
    #[test]
    fn partition_points_match_paper_claims() {
        let net = ucsd_network();
        let gw4 = SiteId::new(3);
        let gw5 = SiteId::new(4);
        let splits = |c: &Configuration, without: SiteId| -> usize {
            let up = net.sites().without(without);
            let r = net.reachability(up);
            r.groups()
                .iter()
                .filter(|g| !(**g & c.copies).is_empty())
                .count()
        };
        // A and E: no partitions — neither gateway failure splits copies
        // into more than one populated group (the gateway itself may be a
        // copy, but the *remaining* copies stay together).
        for c in [&CONFIG_A, &CONFIG_E] {
            assert_eq!(splits(c, gw4), 1, "configuration {}", c.name);
            assert_eq!(splits(c, gw5), 1, "configuration {}", c.name);
        }
        // B and F: site 4 splits copies; site 5 does not.
        for c in [&CONFIG_B, &CONFIG_F] {
            assert_eq!(splits(c, gw4), 2, "configuration {}", c.name);
            assert_eq!(splits(c, gw5), 1, "configuration {}", c.name);
        }
        // C and G: both gateways split copies.
        for c in [&CONFIG_C, &CONFIG_G] {
            assert_eq!(splits(c, gw4), 2, "configuration {}", c.name);
            assert_eq!(splits(c, gw5), 2, "configuration {}", c.name);
        }
        // D: either gateway separates site 6 from {7, 8} or vice versa.
        assert_eq!(splits(&CONFIG_D, gw4), 2);
        assert_eq!(splits(&CONFIG_D, gw5), 2);
        // H: only site 5 splits copies.
        assert_eq!(splits(&CONFIG_H, gw4), 1);
        assert_eq!(splits(&CONFIG_H, gw5), 2);
    }

    #[test]
    fn table_order() {
        let names: Vec<&str> = ALL_CONFIGS.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["A", "B", "C", "D", "E", "F", "G", "H"]);
    }
}
