//! A plain-text study specification: define a network, site models and
//! copy placements without writing code.
//!
//! The `study` binary runs a Table 2-style comparison over any spec; the
//! Figure 8 study itself round-trips through this format
//! ([`ucsd_spec_text`]). One directive per line, `#` starts a comment:
//!
//! ```text
//! # segments and gateways (Figure 8 shape)
//! segment main 0 1 2 3 4
//! segment second 5
//! segment third 6 7
//! bridge 3 second
//! bridge 4 third
//!
//! # one site directive per site:
//! #   site INDEX NAME mttf_days=D hw=FRAC restart_min=M hw_floor_h=H hw_exp_h=H
//! #       [maint_every_days=D maint_hours=H]
//! site 0 csvax mttf_days=36.5 hw=0.10 restart_min=20 hw_floor_h=0 hw_exp_h=2 maint_every_days=90 maint_hours=3
//! site 1 beowulf mttf_days=10 hw=0.10 restart_min=15 hw_floor_h=4 hw_exp_h=24
//!
//! # copy placements to evaluate
//! config A 0 1 3
//! config B 0 1 5
//!
//! # optional: Poisson file-access rate per day (default 1.0)
//! access_rate 1.0
//! ```

use std::borrow::Cow;
use std::collections::BTreeMap;

use dynvote_sim::Duration;
use dynvote_topology::{Network, NetworkBuilder};
use dynvote_types::SiteSet;

use crate::sites::SiteModel;

/// A parsed study: everything [`crate::run::run_trace`] needs.
#[derive(Debug)]
pub struct StudySpec {
    /// The network topology.
    pub network: Network,
    /// Per-site failure models, indexed by site.
    pub models: Vec<SiteModel>,
    /// Named copy placements to evaluate.
    pub configs: Vec<(String, SiteSet)>,
    /// Poisson file-access rate (accesses/day).
    pub access_rate: f64,
}

/// A specification error with its 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

fn parse_num(line: usize, token: &str, what: &str) -> Result<f64, SpecError> {
    token
        .parse::<f64>()
        .map_err(|e| err(line, format!("bad {what} {token:?}: {e}")))
}

fn parse_index(line: usize, token: Option<&str>, what: &str) -> Result<usize, SpecError> {
    let index = token
        .ok_or_else(|| err(line, format!("missing {what}")))?
        .parse::<usize>()
        .map_err(|e| err(line, format!("bad {what}: {e}")))?;
    check_index(line, index, what)
}

fn check_index(line: usize, index: usize, what: &str) -> Result<usize, SpecError> {
    if index >= dynvote_types::MAX_SITES {
        return Err(err(
            line,
            format!(
                "{what} {index} out of range (at most {} sites)",
                dynvote_types::MAX_SITES
            ),
        ));
    }
    Ok(index)
}

/// Parses a study specification.
///
/// # Errors
///
/// Returns the first error with its line number: unknown directives,
/// malformed numbers, missing site models, bridges to undeclared
/// segments, or configs naming unmodelled sites.
pub fn parse_study(text: &str) -> Result<StudySpec, SpecError> {
    let mut builder = NetworkBuilder::new();
    let mut declared_segments = 0usize;
    let mut site_models: BTreeMap<usize, SiteModel> = BTreeMap::new();
    let mut configs: Vec<(String, SiteSet)> = Vec::new();
    let mut access_rate = 1.0f64;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut words = text.split_whitespace();
        match words.next().expect("non-empty line") {
            "segment" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(line, "missing segment name"))?;
                let mut members = Vec::new();
                for tok in words {
                    let index = tok
                        .parse::<usize>()
                        .map_err(|e| err(line, format!("bad site index: {e}")))?;
                    members.push(check_index(line, index, "site index")?);
                }
                builder = builder.segment(name, members);
                declared_segments += 1;
            }
            "bridge" => {
                let gateway = parse_index(line, words.next(), "gateway site")?;
                let to = words
                    .next()
                    .ok_or_else(|| err(line, "missing target segment"))?;
                builder = builder.bridge(gateway, to);
            }
            "site" => {
                let index = parse_index(line, words.next(), "site index")?;
                let name = words
                    .next()
                    .ok_or_else(|| err(line, "missing site name"))?
                    .to_string();
                let mut fields: BTreeMap<&str, f64> = BTreeMap::new();
                for tok in words {
                    let (key, value) = tok
                        .split_once('=')
                        .ok_or_else(|| err(line, format!("expected key=value, got {tok:?}")))?;
                    fields.insert(key, parse_num(line, value, key)?);
                }
                let take = |fields: &BTreeMap<&str, f64>, key: &str| -> Result<f64, SpecError> {
                    fields
                        .get(key)
                        .copied()
                        .ok_or_else(|| err(line, format!("site needs {key}=")))
                };
                let maintenance = match (fields.get("maint_every_days"), fields.get("maint_hours"))
                {
                    (Some(&every), Some(&hours)) => {
                        Some((Duration::days(every), Duration::hours(hours)))
                    }
                    (None, None) => None,
                    _ => {
                        return Err(err(
                            line,
                            "maintenance needs both maint_every_days= and maint_hours=",
                        ))
                    }
                };
                let model = SiteModel {
                    name: Cow::Owned(name),
                    mttf: Duration::days(take(&fields, "mttf_days")?),
                    hw_fraction: take(&fields, "hw")?,
                    restart: Duration::minutes(take(&fields, "restart_min")?),
                    hw_floor: Duration::hours(take(&fields, "hw_floor_h")?),
                    hw_mean: Duration::hours(take(&fields, "hw_exp_h")?),
                    maintenance,
                };
                if !(0.0..=1.0).contains(&model.hw_fraction) {
                    return Err(err(line, "hw= must be a fraction in [0, 1]"));
                }
                if model.mttf.is_zero() {
                    return Err(err(line, "mttf_days= must be positive"));
                }
                if site_models.insert(index, model).is_some() {
                    return Err(err(line, format!("site {index} declared twice")));
                }
            }
            "config" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(line, "missing config name"))?;
                let mut copies = SiteSet::EMPTY;
                for tok in words {
                    let site = tok
                        .parse::<usize>()
                        .map_err(|e| err(line, format!("bad site index: {e}")))?;
                    let site = check_index(line, site, "site index")?;
                    copies.insert(dynvote_types::SiteId::new(site));
                }
                if copies.is_empty() {
                    return Err(err(line, "config needs at least one copy site"));
                }
                configs.push((name.to_string(), copies));
            }
            "access_rate" => {
                let value = words.next().ok_or_else(|| err(line, "missing rate"))?;
                access_rate = parse_num(line, value, "access rate")?;
                if access_rate < 0.0 {
                    return Err(err(line, "access_rate must be non-negative"));
                }
            }
            other => return Err(err(line, format!("unknown directive {other:?}"))),
        }
    }

    if declared_segments == 0 {
        return Err(err(0, "at least one segment is required"));
    }
    let network = builder
        .build()
        .map_err(|e| err(0, format!("invalid topology: {e}")))?;

    // Every network site needs a model; models form a dense vector.
    let max_site = network
        .sites()
        .max()
        .ok_or_else(|| err(0, "the network has no sites"))?
        .index();
    let mut models = Vec::with_capacity(max_site + 1);
    for i in 0..=max_site {
        match site_models.remove(&i) {
            Some(model) => models.push(model),
            None => {
                if network.sites().contains(dynvote_types::SiteId::new(i)) {
                    return Err(err(
                        0,
                        format!("site {i} is on a segment but has no site directive"),
                    ));
                }
                // A hole in the index space: fill with an inert model.
                models.push(SiteModel {
                    name: Cow::Borrowed("unused"),
                    mttf: Duration::days(1e12),
                    hw_fraction: 0.0,
                    restart: Duration::minutes(1.0),
                    hw_floor: Duration::ZERO,
                    hw_mean: Duration::ZERO,
                    maintenance: None,
                });
            }
        }
    }
    if let Some((&extra, _)) = site_models.iter().next() {
        return Err(err(
            0,
            format!("site {extra} has a model but is on no segment"),
        ));
    }
    for (name, copies) in &configs {
        if !copies.is_subset_of(network.sites()) {
            return Err(err(
                0,
                format!("config {name} places copies on sites outside the network"),
            ));
        }
    }
    if configs.is_empty() {
        return Err(err(0, "at least one config is required"));
    }

    Ok(StudySpec {
        network,
        models,
        configs,
        access_rate,
    })
}

/// The Figure 8 / Table 1 study, expressed in the spec format — both
/// documentation-by-example and a round-trip test anchor.
#[must_use]
pub fn ucsd_spec_text() -> &'static str {
    "\
# Figure 8: three carrier-sense segments joined by two gateway hosts.
segment main 0 1 2 3 4
segment second 5
segment third 6 7
bridge 3 second
bridge 4 third

# Table 1 (paper site k = index k-1).
site 0 csvax   mttf_days=36.5 hw=0.10 restart_min=20 hw_floor_h=0   hw_exp_h=2   maint_every_days=90 maint_hours=3
site 1 beowulf mttf_days=10   hw=0.10 restart_min=15 hw_floor_h=4   hw_exp_h=24
site 2 grendel mttf_days=365  hw=0.90 restart_min=10 hw_floor_h=0   hw_exp_h=2   maint_every_days=90 maint_hours=3
site 3 wizard  mttf_days=50   hw=0.50 restart_min=15 hw_floor_h=168 hw_exp_h=168
site 4 amos    mttf_days=365  hw=0.90 restart_min=10 hw_floor_h=0   hw_exp_h=2   maint_every_days=90 maint_hours=3
site 5 gremlin mttf_days=50   hw=0.50 restart_min=15 hw_floor_h=168 hw_exp_h=168
site 6 rip     mttf_days=50   hw=0.50 restart_min=15 hw_floor_h=168 hw_exp_h=168
site 7 mangle  mttf_days=50   hw=0.50 restart_min=15 hw_floor_h=168 hw_exp_h=168

# Table 2's eight placements.
config A 0 1 3
config B 0 1 5
config C 0 5 7
config D 5 6 7
config E 0 1 2 3
config F 0 1 3 5
config G 0 1 5 7
config H 0 1 6 7

access_rate 1.0
"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ucsd_network;
    use crate::sites::UCSD_SITES;

    #[test]
    fn ucsd_spec_round_trips() {
        let spec = parse_study(ucsd_spec_text()).unwrap();
        let reference = ucsd_network();
        assert_eq!(spec.network.sites(), reference.sites());
        assert_eq!(spec.network.segment_count(), reference.segment_count());
        assert_eq!(spec.network.gateways(), reference.gateways());
        assert_eq!(spec.models.len(), 8);
        for (parsed, reference) in spec.models.iter().zip(UCSD_SITES.iter()) {
            assert_eq!(parsed.name, reference.name);
            assert_eq!(parsed.mttf, reference.mttf);
            assert_eq!(parsed.hw_fraction, reference.hw_fraction);
            assert_eq!(parsed.restart, reference.restart);
            assert_eq!(parsed.hw_floor, reference.hw_floor);
            assert_eq!(parsed.hw_mean, reference.hw_mean);
            assert_eq!(parsed.maintenance, reference.maintenance);
        }
        assert_eq!(spec.configs.len(), 8);
        assert_eq!(spec.configs[0].0, "A");
        assert_eq!(
            spec.configs[7].1,
            crate::config::CONFIG_H.copies,
            "config H matches the built-in"
        );
        assert_eq!(spec.access_rate, 1.0);
    }

    #[test]
    fn minimal_spec() {
        let spec = parse_study(
            "segment all 0 1 2\n\
             site 0 a mttf_days=10 hw=0 restart_min=15 hw_floor_h=0 hw_exp_h=0\n\
             site 1 b mttf_days=10 hw=0 restart_min=15 hw_floor_h=0 hw_exp_h=0\n\
             site 2 c mttf_days=10 hw=0 restart_min=15 hw_floor_h=0 hw_exp_h=0\n\
             config X 0 1 2\n",
        )
        .unwrap();
        assert_eq!(spec.network.segment_count(), 1);
        assert_eq!(spec.access_rate, 1.0, "default rate");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, &str)] = &[
            ("frobnicate 1", "unknown directive"),
            ("segment a x", "bad site index"),
            ("site 0", "missing site name"),
            ("site 0 a mttf_days=ten", "bad mttf_days"),
            ("site 0 a hw=0.1", "site needs mttf_days="),
            (
                "site 0 a mttf_days=1 hw=2 restart_min=1 hw_floor_h=0 hw_exp_h=0",
                "fraction",
            ),
            (
                "site 0 a mttf_days=1 hw=0 restart_min=1 hw_floor_h=0 hw_exp_h=0 maint_hours=3",
                "both",
            ),
            ("config X", "at least one copy"),
            ("access_rate -1", "non-negative"),
        ];
        for (text, expect) in cases {
            let e = parse_study(text).unwrap_err();
            assert!(
                e.message.contains(expect),
                "{text:?} gave {:?}, wanted {expect:?}",
                e.message
            );
            assert_eq!(e.line, 1, "{text:?}");
        }
    }

    #[test]
    fn whole_file_validation() {
        // Missing model for a declared site.
        let e = parse_study("segment a 0 1\nsite 0 x mttf_days=1 hw=0 restart_min=1 hw_floor_h=0 hw_exp_h=0\nconfig X 0\n").unwrap_err();
        assert!(e.message.contains("site 1"), "{e}");
        // Model for an undeclared site.
        let e = parse_study(
            "segment a 0\n\
             site 0 x mttf_days=1 hw=0 restart_min=1 hw_floor_h=0 hw_exp_h=0\n\
             site 3 y mttf_days=1 hw=0 restart_min=1 hw_floor_h=0 hw_exp_h=0\n\
             config X 0\n",
        )
        .unwrap_err();
        assert!(e.message.contains("site 3"), "{e}");
        // Config outside the network.
        let e = parse_study(
            "segment a 0\n\
             site 0 x mttf_days=1 hw=0 restart_min=1 hw_floor_h=0 hw_exp_h=0\n\
             config X 0 5\n",
        )
        .unwrap_err();
        assert!(e.message.contains("outside the network"), "{e}");
        // No configs at all.
        let e = parse_study(
            "segment a 0\nsite 0 x mttf_days=1 hw=0 restart_min=1 hw_floor_h=0 hw_exp_h=0\n",
        )
        .unwrap_err();
        assert!(e.message.contains("config"), "{e}");
        // Duplicate site directive.
        let e = parse_study(
            "segment a 0\n\
             site 0 x mttf_days=1 hw=0 restart_min=1 hw_floor_h=0 hw_exp_h=0\n\
             site 0 y mttf_days=1 hw=0 restart_min=1 hw_floor_h=0 hw_exp_h=0\n\
             config X 0\n",
        )
        .unwrap_err();
        assert!(e.message.contains("twice"), "{e}");
    }

    #[test]
    fn parsed_spec_actually_simulates() {
        use crate::run::{run_trace, Params};
        use dynvote_core::policy::PolicyKind;
        let spec = parse_study(
            "segment a 0 1 2\n\
             site 0 x mttf_days=20 hw=1 restart_min=15 hw_floor_h=0 hw_exp_h=12\n\
             site 1 y mttf_days=20 hw=1 restart_min=15 hw_floor_h=0 hw_exp_h=12\n\
             site 2 z mttf_days=20 hw=1 restart_min=15 hw_floor_h=0 hw_exp_h=12\n\
             config X 0 1 2\n",
        )
        .unwrap();
        let params = Params {
            batch_len: dynvote_sim::Duration::days(1_000.0),
            batches: 3,
            ..Params::quick_test()
        };
        let (name, copies) = &spec.configs[0];
        let policy = PolicyKind::Ldv.build(*copies, &spec.network);
        let results = run_trace(&spec.network, &spec.models, vec![policy], &params, name);
        assert!(results[0].unavailability < 0.05);
    }
}
