//! Figure 8: the modelled eight-site, three-segment network.

use dynvote_topology::{Network, NetworkBuilder};

/// Builds the Figure 8 network.
///
/// *"Five of the eight sites are connected on the main carrier-sense
/// segment. One of these sites is the gateway to the second segment, to
/// which the sixth site is also connected; another of the five sites is
/// the gateway to the third segment, to which the seventh and eighth
/// sites are also connected."*
///
/// Cross-checking with the stated partition points of configurations
/// A–H pins down which main-segment sites are the gateways:
///
/// * configuration B ({1, 2, 6}) has "a single partition point at
///   **site 4**" → site 4 gateways to the segment holding site 6;
/// * configurations C/H place sites 7, 8 behind a partition point at
///   **site 5** → site 5 gateways to the segment holding sites 7, 8.
///
/// Site numbering is 1-based in the paper; [`dynvote_types::SiteId`] is
/// 0-based, so paper site *k* is `SiteId::new(k - 1)` throughout.
/// Gateways belong to the *main* segment (the paper's rule: a gateway
/// host is a member of exactly one segment).
#[must_use]
pub fn ucsd_network() -> Network {
    NetworkBuilder::new()
        .segment("main", [0, 1, 2, 3, 4]) // paper sites 1-5
        .segment("second", [5]) // paper site 6
        .segment("third", [6, 7]) // paper sites 7, 8
        .bridge(3, "second") // paper site 4 is the gateway to segment 2
        .bridge(4, "third") // paper site 5 is the gateway to segment 3
        .build()
        .expect("the Figure 8 network is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynvote_types::{SiteId, SiteSet};

    #[test]
    fn shape_matches_figure_8() {
        let net = ucsd_network();
        assert_eq!(net.segment_count(), 3);
        assert_eq!(net.sites(), SiteSet::first_n(8));
        assert_eq!(net.gateways(), SiteSet::from_indices([3, 4]));
        // Main segment: paper sites 1-5.
        assert_eq!(
            net.co_segment(SiteId::new(0)),
            SiteSet::from_indices([0, 1, 2, 3, 4])
        );
        // Site 6 alone on the second segment.
        assert_eq!(net.co_segment(SiteId::new(5)), SiteSet::from_indices([5]));
        // Sites 7, 8 together on the third segment.
        assert_eq!(
            net.co_segment(SiteId::new(6)),
            SiteSet::from_indices([6, 7])
        );
    }

    #[test]
    fn all_up_fully_connected() {
        let net = ucsd_network();
        let r = net.reachability(SiteSet::first_n(8));
        assert_eq!(r.groups(), &[SiteSet::first_n(8)]);
    }

    #[test]
    fn gateway_4_failure_detaches_site_6() {
        // Configuration B's partition point.
        let net = ucsd_network();
        let up = SiteSet::first_n(8).without(SiteId::new(3));
        let r = net.reachability(up);
        let mut groups = r.groups().to_vec();
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[1], SiteSet::from_indices([5]), "site 6 isolated");
    }

    #[test]
    fn gateway_5_failure_detaches_sites_7_and_8() {
        // Configuration H's partition point: sites 7, 8 split off
        // *together* (they share the third segment).
        let net = ucsd_network();
        let up = SiteSet::first_n(8).without(SiteId::new(4));
        let r = net.reachability(up);
        let mut groups = r.groups().to_vec();
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[1], SiteSet::from_indices([6, 7]));
    }

    #[test]
    fn both_gateways_down_three_way_partition() {
        let net = ucsd_network();
        let up = SiteSet::first_n(8)
            .without(SiteId::new(3))
            .without(SiteId::new(4));
        let r = net.reachability(up);
        assert_eq!(r.groups().len(), 3);
    }

    #[test]
    fn non_gateway_failures_never_partition() {
        let net = ucsd_network();
        // Any combination of non-gateway failures leaves one group.
        for mask in 0u64..64 {
            // Map 6 mask bits onto the 6 non-gateway sites {0,1,2,5,6,7}.
            let nongw = [0usize, 1, 2, 5, 6, 7];
            let mut up = SiteSet::first_n(8);
            for (bit, &site) in nongw.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    up.remove(SiteId::new(site));
                }
            }
            let r = net.reachability(up);
            assert!(
                r.groups().len() <= 1,
                "non-gateway mask {mask:#b} partitioned the network"
            );
        }
    }

    /// The paper's §3 four-copy example: the only possible partitions of
    /// a file on {A, B, C, D} = {1, 2, 6, 8} are {{A,B,C},{D}},
    /// {{A,B,D},{C}} and {{A,B},{C},{D}} — plus, of course, no partition.
    #[test]
    fn possible_partitions_of_config_g_sites() {
        let net = ucsd_network();
        let copies = SiteSet::from_indices([0, 1, 5, 7]); // paper 1, 2, 6, 8
        let parts = net.possible_partitions(copies);
        // Partitions induced by gateway failures: whole; {1,2,8}|{6};
        // {1,2,6}|{8}... note: gateway failures isolate 6 or {7,8}.
        assert!(parts.contains(&vec![copies]));
        assert!(parts.iter().any(|p| p.len() == 2));
        assert!(parts.iter().any(|p| p.len() == 3));
        // No partition ever splits sites 1 and 2 (both on main).
        for p in &parts {
            let ones: Vec<_> = p
                .iter()
                .filter(|g| g.contains(SiteId::new(0)) || g.contains(SiteId::new(1)))
                .collect();
            assert!(ones.len() <= 1, "sites 1 and 2 were separated: {p:?}");
        }
    }
}
