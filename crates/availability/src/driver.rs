//! The discrete-event failure/repair/access process generator.
//!
//! The driver owns the stochastic part of the study — *when* sites fail,
//! how long repairs take, when maintenance windows open, when the single
//! user accesses the file — and exposes a simple pull API: every call to
//! [`Driver::step`] advances virtual time to the next *effective* event
//! and reports whether the topology changed or an access occurred. The
//! experiment runner layers policies and metrics on top, so the same
//! stochastic trace can drive all six protocols simultaneously (common
//! random numbers, which makes the Table 2 columns directly comparable).

use std::sync::Arc;

use dynvote_sim::{Dist, Duration, EventQueue, SimRng, SimTime};
use dynvote_topology::{Network, Reachability, ReachabilityCache};
use dynvote_types::{SiteId, SiteSet};

use crate::sites::SiteModel;

/// An event in the site failure/repair process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteEvent {
    /// The site fails (hardware or software decided at fire time).
    Fail {
        /// The failing site.
        site: SiteId,
        /// Generation stamp; stale stamps mark cancelled events.
        gen: u64,
    },
    /// The site's repair completes.
    Repair {
        /// The repaired site.
        site: SiteId,
        /// Generation stamp; stale stamps mark cancelled events.
        gen: u64,
    },
    /// A preventive-maintenance window opens (skipped if the site is
    /// already down).
    MaintStart {
        /// The maintained site.
        site: SiteId,
    },
    /// The maintenance window closes.
    MaintEnd {
        /// The maintained site.
        site: SiteId,
        /// Generation stamp; stale stamps mark cancelled events.
        gen: u64,
    },
}

/// What a [`Driver::step`] reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Change {
    /// The set of up sites changed (failure, repair, maintenance).
    Topology,
    /// A file access occurred (the up set is unchanged).
    Access,
}

/// The stochastic site/access process over a fixed [`Network`].
///
/// Per-site random sub-streams keep each site's failure process
/// independent of the others and stable across runs with the same seed.
///
/// Reachability is *memoized*: the network is fixed, so the partition
/// structure is a pure function of the up-set, interned once per
/// distinct up-set in a [`ReachabilityCache`] (≤ 2⁸ entries for the
/// paper's 8-site network). After warm-up a step performs no
/// reachability allocation at all — topology changes are a table
/// lookup. See DESIGN.md, "Reachability memoization".
pub struct Driver {
    network: Network,
    models: Vec<SiteModel>,
    queue: EventQueue<SiteEvent>,
    /// Per-site generation counters; events stamped with an old
    /// generation are stale and ignored (classic DES cancellation).
    gens: Vec<u64>,
    up: SiteSet,
    site_rngs: Vec<SimRng>,
    access_rng: SimRng,
    access_rate: f64,
    /// The next file access. Accesses are the most frequent event and
    /// never cancel or interact with site state, so the stream lives
    /// outside the heap — each access is a compare against the heap
    /// head instead of a push + sift + pop.
    next_access: Option<SimTime>,
    cache: ReachabilityCache,
    reach: Arc<Reachability>,
    /// `false` only in benchmark baselines: recompute reachability per
    /// event, as the engine did before memoization existed.
    memoize: bool,
}

impl Driver {
    /// A new driver with all sites up at time zero (the paper starts
    /// simulations with every site operating).
    ///
    /// `access_rate` is the Poisson file-access rate in accesses/day
    /// (the paper uses 1.0); a rate of zero disables access events.
    ///
    /// # Panics
    ///
    /// Panics when `models` does not cover every network site.
    #[must_use]
    pub fn new(network: Network, models: &[SiteModel], seed: u64, access_rate: f64) -> Self {
        let cache = ReachabilityCache::new(&network);
        Driver::with_cache(network, models, seed, access_rate, cache)
    }

    /// Like [`Driver::new`], but starting from an existing (typically
    /// warm) [`ReachabilityCache`] for the same network. Replicated
    /// studies fork one warm cache across drivers so only the first
    /// replication pays for the union-find computations.
    ///
    /// # Panics
    ///
    /// Panics when `models` does not cover every network site.
    #[must_use]
    pub fn with_cache(
        network: Network,
        models: &[SiteModel],
        seed: u64,
        access_rate: f64,
        mut cache: ReachabilityCache,
    ) -> Self {
        let n = models.len();
        assert!(
            network.sites().iter().all(|s| s.index() < n),
            "every network site needs a model"
        );
        let up: SiteSet = network.sites();
        let mut driver = Driver {
            reach: cache.get(&network, up),
            cache,
            network,
            models: models.to_vec(),
            queue: EventQueue::new(),
            gens: vec![0; n],
            up,
            site_rngs: (0..n as u64).map(|i| SimRng::substream(seed, i)).collect(),
            access_rng: SimRng::substream(seed, 0xACCE55),
            access_rate,
            next_access: None,
            memoize: true,
        };
        for site in driver.up.iter() {
            driver.schedule_failure(site, SimTime::ZERO);
            if let Some((interval, _)) = driver.models[site.index()].maintenance {
                // Stagger the periodic schedules with a random phase:
                // real machines are not all maintained at the same
                // instant, and synchronizing them would make multi-site
                // drops look far more common than they are.
                let phase = interval * driver.site_rngs[site.index()].uniform();
                driver
                    .queue
                    .schedule(SimTime::ZERO + phase, SiteEvent::MaintStart { site });
            }
        }
        if access_rate > 0.0 {
            driver.schedule_access(SimTime::ZERO);
        }
        driver
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The currently up sites.
    #[must_use]
    pub fn up(&self) -> SiteSet {
        self.up
    }

    /// The current reachability (refreshed on every topology change —
    /// normally a memo-table lookup, not a recomputation).
    #[must_use]
    pub fn reachability(&self) -> &Reachability {
        &self.reach
    }

    /// The current reachability as its interned, shareable handle.
    #[must_use]
    pub fn reachability_shared(&self) -> Arc<Reachability> {
        Arc::clone(&self.reach)
    }

    /// The driver's memo table (to fork into sibling drivers, or to
    /// read hit/miss telemetry).
    #[must_use]
    pub fn reachability_cache(&self) -> &ReachabilityCache {
        &self.cache
    }

    /// Consumes the driver, handing its memo table back — replicated
    /// studies thread one cache through a sequence of drivers so later
    /// replications inherit every partition computed so far.
    #[must_use]
    pub fn into_cache(self) -> ReachabilityCache {
        self.cache
    }

    /// Disables (or re-enables) reachability memoization.
    ///
    /// Only benchmark baselines use this: with memoization off the
    /// driver recomputes the partition structure on every topology
    /// event, exactly as the engine did before the cache existed, so
    /// the memoization win can be measured on the same binary. Results
    /// are identical either way — the cache is a pure memo table.
    pub fn set_memoize(&mut self, memoize: bool) {
        self.memoize = memoize;
    }

    /// Refreshes `self.reach` after a change to the up-set.
    #[inline]
    fn refresh_reachability(&mut self) {
        self.reach = if self.memoize {
            self.cache.get(&self.network, self.up)
        } else {
            Arc::new(self.network.reachability(self.up))
        };
    }

    /// The time of the next pending event (site event or file access).
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.queue.peek_time(), self.next_access) {
            (Some(h), Some(a)) => Some(h.min(a)),
            (h, a) => h.or(a),
        }
    }

    fn schedule_failure(&mut self, site: SiteId, now: SimTime) {
        let ttf = self.models[site.index()]
            .fail_dist()
            .sample(&mut self.site_rngs[site.index()]);
        let gen = self.gens[site.index()];
        self.queue
            .schedule(now + ttf, SiteEvent::Fail { site, gen });
    }

    fn schedule_access(&mut self, now: SimTime) {
        let gap = Duration::days(self.access_rng.exponential(1.0 / self.access_rate));
        self.next_access = Some(now + gap);
    }

    fn repair_duration(&mut self, site: SiteId) -> Duration {
        let model = &self.models[site.index()];
        let rng = &mut self.site_rngs[site.index()];
        let dist: Dist = if rng.bernoulli(model.hw_fraction) {
            model.hardware_repair_dist()
        } else {
            model.software_repair_dist()
        };
        dist.sample(rng)
    }

    /// Advances to the next effective event. Returns `None` only when no
    /// events remain (possible only with a zero access rate and no
    /// sites).
    pub fn step(&mut self) -> Option<(SimTime, Change)> {
        loop {
            // Access fast path: the access stream never cancels and
            // never touches site state, so it bypasses the heap
            // entirely. Checked against the heap head on every
            // iteration — a stale (cancelled) site event may sit in
            // front of the access and must still be drained first, in
            // time order. Ties against a site event go to the access
            // (site events at the exact same f64 instant as an access
            // have probability zero).
            if let Some(t) = self.next_access {
                if self.queue.peek_time().is_none_or(|h| t <= h) {
                    self.queue.advance_to(t);
                    self.schedule_access(t);
                    return Some((t, Change::Access));
                }
            }
            let (now, event) = self.queue.pop()?;
            match event {
                SiteEvent::Fail { site, gen } => {
                    if self.gens[site.index()] != gen || !self.up.contains(site) {
                        continue; // cancelled by a repair or maintenance
                    }
                    self.gens[site.index()] += 1;
                    self.up.remove(site);
                    let repair = self.repair_duration(site);
                    let gen = self.gens[site.index()];
                    self.queue
                        .schedule(now + repair, SiteEvent::Repair { site, gen });
                    self.refresh_reachability();
                    return Some((now, Change::Topology));
                }
                SiteEvent::Repair { site, gen } => {
                    if self.gens[site.index()] != gen {
                        continue;
                    }
                    self.gens[site.index()] += 1;
                    self.up.insert(site);
                    self.schedule_failure(site, now);
                    self.refresh_reachability();
                    return Some((now, Change::Topology));
                }
                SiteEvent::MaintStart { site } => {
                    // Always rearm the periodic schedule.
                    let (interval, duration) = self.models[site.index()]
                        .maintenance
                        .expect("MaintStart only scheduled for maintained sites");
                    self.queue
                        .schedule(now + interval, SiteEvent::MaintStart { site });
                    if !self.up.contains(site) {
                        continue; // already down: the window is absorbed
                    }
                    self.gens[site.index()] += 1; // cancels the pending Fail
                    self.up.remove(site);
                    let gen = self.gens[site.index()];
                    self.queue
                        .schedule(now + duration, SiteEvent::MaintEnd { site, gen });
                    self.refresh_reachability();
                    return Some((now, Change::Topology));
                }
                SiteEvent::MaintEnd { site, gen } => {
                    if self.gens[site.index()] != gen {
                        continue;
                    }
                    self.gens[site.index()] += 1;
                    self.up.insert(site);
                    self.schedule_failure(site, now);
                    self.refresh_reachability();
                    return Some((now, Change::Topology));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ucsd_network;
    use crate::sites::{identical_sites, UCSD_SITES};

    fn small_driver(seed: u64, rate: f64) -> Driver {
        let net = Network::single_segment(3);
        let models = identical_sites(3, Duration::days(10.0), Duration::hours(12.0));
        Driver::new(net, &models, seed, rate)
    }

    #[test]
    fn starts_all_up() {
        let d = small_driver(1, 1.0);
        assert_eq!(d.up(), SiteSet::first_n(3));
        assert_eq!(d.reachability().groups().len(), 1);
        assert_eq!(d.now(), SimTime::ZERO);
    }

    #[test]
    fn steps_advance_time_monotonically() {
        let mut d = small_driver(2, 1.0);
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            let (t, _) = d.step().unwrap();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn topology_changes_flip_up_sets() {
        let mut d = small_driver(3, 0.0);
        let mut prev = d.up();
        for _ in 0..500 {
            let (_, change) = d.step().unwrap();
            assert_eq!(change, Change::Topology);
            assert_ne!(d.up(), prev, "a topology event must change the up set");
            prev = d.up();
        }
    }

    #[test]
    fn long_run_site_unavailability_matches_model() {
        // One site, MTTF 10 d, deterministic-free exponential repair
        // 0.5 d: theoretical unavailability = 0.5 / 10.5.
        let net = Network::single_segment(1);
        let models = identical_sites(1, Duration::days(10.0), Duration::hours(12.0));
        let mut d = Driver::new(net, &models, 7, 0.0);
        let mut down = Duration::ZERO;
        let mut last = SimTime::ZERO;
        let mut was_up = true;
        let horizon = SimTime::at_days(200_000.0);
        while let Some((t, _)) = d.step() {
            if t > horizon {
                break;
            }
            if !was_up {
                down += t - last;
            }
            was_up = d.up().contains(SiteId::new(0));
            last = t;
        }
        let frac = down.as_days() / last.as_days();
        let expect = 0.5 / 10.5;
        assert!(
            (frac - expect).abs() < 0.005,
            "measured {frac}, expected {expect}"
        );
    }

    #[test]
    fn access_rate_respected() {
        let mut d = small_driver(11, 2.0);
        let mut accesses = 0u64;
        let horizon = SimTime::at_days(50_000.0);
        let mut last = SimTime::ZERO;
        while let Some((t, change)) = d.step() {
            if t > horizon {
                break;
            }
            last = t;
            if change == Change::Access {
                accesses += 1;
            }
        }
        let rate = accesses as f64 / last.as_days();
        assert!((rate - 2.0).abs() < 0.1, "measured access rate {rate}");
    }

    #[test]
    fn zero_access_rate_yields_no_access_events() {
        let mut d = small_driver(13, 0.0);
        for _ in 0..200 {
            let (_, change) = d.step().unwrap();
            assert_ne!(change, Change::Access);
        }
    }

    #[test]
    fn maintenance_windows_fire_on_schedule() {
        // A site that never fails (huge MTTF) but has maintenance: the
        // first window opens at a random phase within the first 90
        // days, lasts 3 hours, and then recurs every 90 days.
        let net = Network::single_segment(1);
        let mut model = identical_sites(1, Duration::days(1e9), Duration::hours(1.0))
            .pop()
            .unwrap();
        model.maintenance = Some((Duration::days(90.0), Duration::hours(3.0)));
        let mut d = Driver::new(net, &[model], 17, 0.0);
        let (t1, _) = d.step().unwrap();
        assert!(t1.as_days() < 90.0, "phase within the first interval");
        assert!(d.up().is_empty());
        let (t2, _) = d.step().unwrap();
        assert!(((t2 - t1).as_hours() - 3.0).abs() < 1e-9);
        assert_eq!(d.up(), SiteSet::first_n(1));
        // And again one interval after the first window opened.
        let (t3, _) = d.step().unwrap();
        assert!(((t3 - t1).as_days() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn maintenance_phases_are_staggered_across_sites() {
        // Three maintained sites must not all drop at the same instant.
        let net = Network::single_segment(3);
        let models: Vec<_> = identical_sites(3, Duration::days(1e9), Duration::hours(1.0))
            .into_iter()
            .map(|mut m| {
                m.maintenance = Some((Duration::days(90.0), Duration::hours(3.0)));
                m
            })
            .collect();
        let mut d = Driver::new(net, &models, 23, 0.0);
        let mut first_starts = Vec::new();
        while first_starts.len() < 3 {
            let (t, _) = d.step().unwrap();
            if d.up().len() < 3 - first_starts.len() + 2 {
                // a new site went down
            }
            first_starts.push(t.as_days());
            // Skip the matching end event.
            let _ = d.step();
        }
        first_starts.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert!(
            first_starts.len() >= 2,
            "phases should differ: {first_starts:?}"
        );
    }

    #[test]
    fn same_seed_reproduces_trace() {
        let trace = |seed| {
            let mut d = small_driver(seed, 1.0);
            (0..200)
                .map(|_| {
                    let (t, c) = d.step().unwrap();
                    (t.as_days().to_bits(), c == Change::Access, d.up().bits())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(trace(99), trace(99));
        assert_ne!(trace(99), trace(100));
    }

    #[test]
    fn reachability_is_memoized_across_steps() {
        let mut d = Driver::new(ucsd_network(), &UCSD_SITES, 5, 1.0);
        for _ in 0..20_000 {
            d.step().unwrap();
        }
        let cache = d.reachability_cache();
        assert!(
            cache.misses() <= 256,
            "8-site network has at most 256 up-sets, computed {}",
            cache.misses()
        );
        assert!(
            cache.hits() > 10 * cache.misses(),
            "long runs must be dominated by hits ({} hits, {} misses)",
            cache.hits(),
            cache.misses()
        );
    }

    #[test]
    fn memoization_does_not_change_the_trace() {
        let trace = |memoize: bool| {
            let mut d = Driver::new(ucsd_network(), &UCSD_SITES, 42, 1.0);
            d.set_memoize(memoize);
            (0..5_000)
                .map(|_| {
                    let (t, c) = d.step().unwrap();
                    let r = d.reachability();
                    (
                        t.as_days().to_bits(),
                        c == Change::Access,
                        d.up().bits(),
                        r.groups().to_vec(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(trace(true), trace(false));
    }

    #[test]
    fn warm_cache_handoff_reproduces_fresh_runs() {
        let fresh = |seed| {
            let mut d = Driver::new(ucsd_network(), &UCSD_SITES, seed, 1.0);
            (0..2_000)
                .map(|_| d.step().unwrap().0.as_days().to_bits())
                .collect::<Vec<_>>()
        };
        // Run once to warm a cache, then replay through the handoff.
        let mut first = Driver::new(ucsd_network(), &UCSD_SITES, 9, 1.0);
        for _ in 0..2_000 {
            first.step().unwrap();
        }
        let warm = first.into_cache();
        let warm_misses = warm.misses();
        let mut replay = Driver::with_cache(ucsd_network(), &UCSD_SITES, 9, 1.0, warm);
        let replayed: Vec<u64> = (0..2_000)
            .map(|_| replay.step().unwrap().0.as_days().to_bits())
            .collect();
        assert_eq!(replayed, fresh(9));
        assert_eq!(
            replay.reachability_cache().misses(),
            warm_misses,
            "replaying the same trace through a warm cache must not recompute"
        );
    }

    #[test]
    fn ucsd_network_runs() {
        let net = ucsd_network();
        let mut d = Driver::new(net, &UCSD_SITES, 5, 1.0);
        let mut topo = 0;
        let mut partitions_seen = false;
        for _ in 0..20_000 {
            let (_, change) = d.step().unwrap();
            if change == Change::Topology {
                topo += 1;
            }
            if d.reachability().groups().len() > 1 {
                partitions_seen = true;
            }
        }
        assert!(topo > 1000, "the UCSD fleet fails often");
        assert!(partitions_seen, "gateway failures must partition");
    }
}
