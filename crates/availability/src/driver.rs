//! The discrete-event failure/repair/access process generator.
//!
//! The driver owns the stochastic part of the study — *when* sites fail,
//! how long repairs take, when maintenance windows open, when the single
//! user accesses the file — and exposes a simple pull API: every call to
//! [`Driver::step`] advances virtual time to the next *effective* event
//! and reports whether the topology changed or an access occurred. The
//! experiment runner layers policies and metrics on top, so the same
//! stochastic trace can drive all six protocols simultaneously (common
//! random numbers, which makes the Table 2 columns directly comparable).

use dynvote_sim::{Dist, Duration, EventQueue, SimRng, SimTime};
use dynvote_topology::{Network, Reachability};
use dynvote_types::{SiteId, SiteSet};

use crate::sites::SiteModel;

/// An event in the site failure/repair process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteEvent {
    /// The site fails (hardware or software decided at fire time).
    Fail {
        /// The failing site.
        site: SiteId,
        /// Generation stamp; stale stamps mark cancelled events.
        gen: u64,
    },
    /// The site's repair completes.
    Repair {
        /// The repaired site.
        site: SiteId,
        /// Generation stamp; stale stamps mark cancelled events.
        gen: u64,
    },
    /// A preventive-maintenance window opens (skipped if the site is
    /// already down).
    MaintStart {
        /// The maintained site.
        site: SiteId,
    },
    /// The maintenance window closes.
    MaintEnd {
        /// The maintained site.
        site: SiteId,
        /// Generation stamp; stale stamps mark cancelled events.
        gen: u64,
    },
    /// The user accesses the replicated file.
    Access,
}

/// What a [`Driver::step`] reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Change {
    /// The set of up sites changed (failure, repair, maintenance).
    Topology,
    /// A file access occurred (the up set is unchanged).
    Access,
}

/// The stochastic site/access process over a fixed [`Network`].
///
/// Per-site random sub-streams keep each site's failure process
/// independent of the others and stable across runs with the same seed.
pub struct Driver {
    network: Network,
    models: Vec<SiteModel>,
    queue: EventQueue<SiteEvent>,
    /// Per-site generation counters; events stamped with an old
    /// generation are stale and ignored (classic DES cancellation).
    gens: Vec<u64>,
    up: SiteSet,
    site_rngs: Vec<SimRng>,
    access_rng: SimRng,
    access_rate: f64,
    reach: Reachability,
}

impl Driver {
    /// A new driver with all sites up at time zero (the paper starts
    /// simulations with every site operating).
    ///
    /// `access_rate` is the Poisson file-access rate in accesses/day
    /// (the paper uses 1.0); a rate of zero disables access events.
    ///
    /// # Panics
    ///
    /// Panics when `models` does not cover every network site.
    #[must_use]
    pub fn new(network: Network, models: &[SiteModel], seed: u64, access_rate: f64) -> Self {
        let n = models.len();
        assert!(
            network.sites().iter().all(|s| s.index() < n),
            "every network site needs a model"
        );
        let up: SiteSet = network.sites();
        let mut driver = Driver {
            reach: network.reachability(up),
            network,
            models: models.to_vec(),
            queue: EventQueue::new(),
            gens: vec![0; n],
            up,
            site_rngs: (0..n as u64).map(|i| SimRng::substream(seed, i)).collect(),
            access_rng: SimRng::substream(seed, 0xACCE55),
            access_rate,
        };
        for site in driver.up.iter() {
            driver.schedule_failure(site, SimTime::ZERO);
            if let Some((interval, _)) = driver.models[site.index()].maintenance {
                // Stagger the periodic schedules with a random phase:
                // real machines are not all maintained at the same
                // instant, and synchronizing them would make multi-site
                // drops look far more common than they are.
                let phase = interval * driver.site_rngs[site.index()].uniform();
                driver
                    .queue
                    .schedule(SimTime::ZERO + phase, SiteEvent::MaintStart { site });
            }
        }
        if access_rate > 0.0 {
            driver.schedule_access(SimTime::ZERO);
        }
        driver
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The currently up sites.
    #[must_use]
    pub fn up(&self) -> SiteSet {
        self.up
    }

    /// The current reachability (recomputed on every topology change).
    #[must_use]
    pub fn reachability(&self) -> &Reachability {
        &self.reach
    }

    /// The time of the next pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    fn schedule_failure(&mut self, site: SiteId, now: SimTime) {
        let ttf = self.models[site.index()]
            .fail_dist()
            .sample(&mut self.site_rngs[site.index()]);
        let gen = self.gens[site.index()];
        self.queue
            .schedule(now + ttf, SiteEvent::Fail { site, gen });
    }

    fn schedule_access(&mut self, now: SimTime) {
        let gap = Duration::days(self.access_rng.exponential(1.0 / self.access_rate));
        self.queue.schedule(now + gap, SiteEvent::Access);
    }

    fn repair_duration(&mut self, site: SiteId) -> Duration {
        let model = &self.models[site.index()];
        let rng = &mut self.site_rngs[site.index()];
        let dist: Dist = if rng.bernoulli(model.hw_fraction) {
            model.hardware_repair_dist()
        } else {
            model.software_repair_dist()
        };
        dist.sample(rng)
    }

    /// Advances to the next effective event. Returns `None` only when no
    /// events remain (possible only with a zero access rate and no
    /// sites).
    pub fn step(&mut self) -> Option<(SimTime, Change)> {
        loop {
            let (now, event) = self.queue.pop()?;
            match event {
                SiteEvent::Fail { site, gen } => {
                    if self.gens[site.index()] != gen || !self.up.contains(site) {
                        continue; // cancelled by a repair or maintenance
                    }
                    self.gens[site.index()] += 1;
                    self.up.remove(site);
                    let repair = self.repair_duration(site);
                    let gen = self.gens[site.index()];
                    self.queue
                        .schedule(now + repair, SiteEvent::Repair { site, gen });
                    self.reach = self.network.reachability(self.up);
                    return Some((now, Change::Topology));
                }
                SiteEvent::Repair { site, gen } => {
                    if self.gens[site.index()] != gen {
                        continue;
                    }
                    self.gens[site.index()] += 1;
                    self.up.insert(site);
                    self.schedule_failure(site, now);
                    self.reach = self.network.reachability(self.up);
                    return Some((now, Change::Topology));
                }
                SiteEvent::MaintStart { site } => {
                    // Always rearm the periodic schedule.
                    let (interval, duration) = self.models[site.index()]
                        .maintenance
                        .expect("MaintStart only scheduled for maintained sites");
                    self.queue
                        .schedule(now + interval, SiteEvent::MaintStart { site });
                    if !self.up.contains(site) {
                        continue; // already down: the window is absorbed
                    }
                    self.gens[site.index()] += 1; // cancels the pending Fail
                    self.up.remove(site);
                    let gen = self.gens[site.index()];
                    self.queue
                        .schedule(now + duration, SiteEvent::MaintEnd { site, gen });
                    self.reach = self.network.reachability(self.up);
                    return Some((now, Change::Topology));
                }
                SiteEvent::MaintEnd { site, gen } => {
                    if self.gens[site.index()] != gen {
                        continue;
                    }
                    self.gens[site.index()] += 1;
                    self.up.insert(site);
                    self.schedule_failure(site, now);
                    self.reach = self.network.reachability(self.up);
                    return Some((now, Change::Topology));
                }
                SiteEvent::Access => {
                    self.schedule_access(now);
                    return Some((now, Change::Access));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ucsd_network;
    use crate::sites::{identical_sites, UCSD_SITES};

    fn small_driver(seed: u64, rate: f64) -> Driver {
        let net = Network::single_segment(3);
        let models = identical_sites(3, Duration::days(10.0), Duration::hours(12.0));
        Driver::new(net, &models, seed, rate)
    }

    #[test]
    fn starts_all_up() {
        let d = small_driver(1, 1.0);
        assert_eq!(d.up(), SiteSet::first_n(3));
        assert_eq!(d.reachability().groups().len(), 1);
        assert_eq!(d.now(), SimTime::ZERO);
    }

    #[test]
    fn steps_advance_time_monotonically() {
        let mut d = small_driver(2, 1.0);
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            let (t, _) = d.step().unwrap();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn topology_changes_flip_up_sets() {
        let mut d = small_driver(3, 0.0);
        let mut prev = d.up();
        for _ in 0..500 {
            let (_, change) = d.step().unwrap();
            assert_eq!(change, Change::Topology);
            assert_ne!(d.up(), prev, "a topology event must change the up set");
            prev = d.up();
        }
    }

    #[test]
    fn long_run_site_unavailability_matches_model() {
        // One site, MTTF 10 d, deterministic-free exponential repair
        // 0.5 d: theoretical unavailability = 0.5 / 10.5.
        let net = Network::single_segment(1);
        let models = identical_sites(1, Duration::days(10.0), Duration::hours(12.0));
        let mut d = Driver::new(net, &models, 7, 0.0);
        let mut down = Duration::ZERO;
        let mut last = SimTime::ZERO;
        let mut was_up = true;
        let horizon = SimTime::at_days(200_000.0);
        while let Some((t, _)) = d.step() {
            if t > horizon {
                break;
            }
            if !was_up {
                down += t - last;
            }
            was_up = d.up().contains(SiteId::new(0));
            last = t;
        }
        let frac = down.as_days() / last.as_days();
        let expect = 0.5 / 10.5;
        assert!(
            (frac - expect).abs() < 0.005,
            "measured {frac}, expected {expect}"
        );
    }

    #[test]
    fn access_rate_respected() {
        let mut d = small_driver(11, 2.0);
        let mut accesses = 0u64;
        let horizon = SimTime::at_days(50_000.0);
        let mut last = SimTime::ZERO;
        while let Some((t, change)) = d.step() {
            if t > horizon {
                break;
            }
            last = t;
            if change == Change::Access {
                accesses += 1;
            }
        }
        let rate = accesses as f64 / last.as_days();
        assert!((rate - 2.0).abs() < 0.1, "measured access rate {rate}");
    }

    #[test]
    fn zero_access_rate_yields_no_access_events() {
        let mut d = small_driver(13, 0.0);
        for _ in 0..200 {
            let (_, change) = d.step().unwrap();
            assert_ne!(change, Change::Access);
        }
    }

    #[test]
    fn maintenance_windows_fire_on_schedule() {
        // A site that never fails (huge MTTF) but has maintenance: the
        // first window opens at a random phase within the first 90
        // days, lasts 3 hours, and then recurs every 90 days.
        let net = Network::single_segment(1);
        let mut model = identical_sites(1, Duration::days(1e9), Duration::hours(1.0))
            .pop()
            .unwrap();
        model.maintenance = Some((Duration::days(90.0), Duration::hours(3.0)));
        let mut d = Driver::new(net, &[model], 17, 0.0);
        let (t1, _) = d.step().unwrap();
        assert!(t1.as_days() < 90.0, "phase within the first interval");
        assert!(d.up().is_empty());
        let (t2, _) = d.step().unwrap();
        assert!(((t2 - t1).as_hours() - 3.0).abs() < 1e-9);
        assert_eq!(d.up(), SiteSet::first_n(1));
        // And again one interval after the first window opened.
        let (t3, _) = d.step().unwrap();
        assert!(((t3 - t1).as_days() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn maintenance_phases_are_staggered_across_sites() {
        // Three maintained sites must not all drop at the same instant.
        let net = Network::single_segment(3);
        let models: Vec<_> = identical_sites(3, Duration::days(1e9), Duration::hours(1.0))
            .into_iter()
            .map(|mut m| {
                m.maintenance = Some((Duration::days(90.0), Duration::hours(3.0)));
                m
            })
            .collect();
        let mut d = Driver::new(net, &models, 23, 0.0);
        let mut first_starts = Vec::new();
        while first_starts.len() < 3 {
            let (t, _) = d.step().unwrap();
            if d.up().len() < 3 - first_starts.len() + 2 {
                // a new site went down
            }
            first_starts.push(t.as_days());
            // Skip the matching end event.
            let _ = d.step();
        }
        first_starts.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert!(
            first_starts.len() >= 2,
            "phases should differ: {first_starts:?}"
        );
    }

    #[test]
    fn same_seed_reproduces_trace() {
        let trace = |seed| {
            let mut d = small_driver(seed, 1.0);
            (0..200)
                .map(|_| {
                    let (t, c) = d.step().unwrap();
                    (t.as_days().to_bits(), c == Change::Access, d.up().bits())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(trace(99), trace(99));
        assert_ne!(trace(99), trace(100));
    }

    #[test]
    fn ucsd_network_runs() {
        let net = ucsd_network();
        let mut d = Driver::new(net, &UCSD_SITES, 5, 1.0);
        let mut topo = 0;
        let mut partitions_seen = false;
        for _ in 0..20_000 {
            let (_, change) = d.step().unwrap();
            if change == Change::Topology {
                topo += 1;
            }
            if d.reachability().groups().len() > 1 {
                partitions_seen = true;
            }
        }
        assert!(topo > 1000, "the UCSD fleet fails often");
        assert!(partitions_seen, "gateway failures must partition");
    }
}
