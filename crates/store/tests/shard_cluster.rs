//! Sharded-store integration tests: real daemons on loopback sockets,
//! each hosting several independent dynamic-voting shard groups.
//!
//! Three contracts from the ISSUE:
//!
//! * **Routing + independence** — keyed operations land on the owning
//!   shard's coordinator; each shard group runs its own `⟨o, v, P⟩`
//!   protocol, so one cut can refuse one shard's quorum while another
//!   shard keeps committing;
//! * **Rebalance liveness** — a client routing at epoch `e` works
//!   straight through an `e → e+1` placement change with zero *failed*
//!   requests (stale-map retries allowed) and no lost committed write;
//! * **Typed unavailability** — a dead control plane produces a typed
//!   error within the deadline, never a hang.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use dynvote_store::client::{request, Deadline, Outcome};
use dynvote_store::config::Config;
use dynvote_store::conn::ConnOptions;
use dynvote_store::router::{fetch_map, rebalance, ShardRouter};
use dynvote_store::server::{start_on, ServiceHandle};
use dynvote_store::wire::Frame;
use dynvote_types::SiteId;

const TIMEOUT: Duration = Duration::from_secs(10);

struct Fleet {
    daemons: Vec<ServiceHandle>,
    addrs: Vec<String>,
}

impl Fleet {
    /// Boots `sites` sharded daemons on ephemeral loopback ports.
    fn boot(sites: usize, shards: usize, placement: &str) -> Fleet {
        let listeners: Vec<TcpListener> = (0..sites)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
            .collect();
        let addrs: Vec<String> = listeners
            .iter()
            .map(|l| l.local_addr().expect("bound").to_string())
            .collect();
        let peers: Vec<String> = addrs
            .iter()
            .enumerate()
            .map(|(site, addr)| format!("{site}={addr}"))
            .collect();
        let peers = peers.join(",");
        let daemons = listeners
            .into_iter()
            .enumerate()
            .map(|(site, listener)| {
                let line = format!(
                    "--site {site} --policy odv --peers {peers} \
                     --shards {shards} --shard-placement {placement} \
                     --connect-timeout-ms 250 --read-timeout-ms 2000 \
                     --backoff-ms 10 --backoff-cap-ms 100"
                );
                let config = Config::parse_args(line.split_whitespace().map(str::to_string))
                    .expect("test config parses");
                start_on(config, listener).expect("daemon starts")
            })
            .collect();
        Fleet { daemons, addrs }
    }

    fn req(&self, site: usize, frame: &Frame) -> Outcome {
        request(&self.addrs[site], frame, TIMEOUT).expect("daemon reachable")
    }

    /// A plain operation addressed to one shard group at one site,
    /// bypassing the router (admin-style shard envelope).
    fn shard_req(&self, site: usize, shard: u16, inner: Frame) -> Outcome {
        self.req(
            site,
            &Frame::Shard {
                shard,
                inner: Box::new(inner),
            },
        )
    }

    fn status(&self, site: usize) -> BTreeMap<String, String> {
        match self.req(site, &Frame::Status) {
            Outcome::Report(text) => text
                .lines()
                .filter_map(|line| {
                    line.split_once('=')
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                })
                .collect(),
            other => panic!("expected a status report from S{site}, got {other:?}"),
        }
    }

    /// Cuts the fleet into groups at the link level (peer traffic only
    /// — clients still reach every daemon, as in a real asymmetric
    /// partition between datacenters).
    fn partition(&self, groups: &[&[usize]]) {
        let group_of = |site: usize| {
            groups
                .iter()
                .position(|g| g.contains(&site))
                .unwrap_or(usize::MAX)
        };
        for site in 0..self.addrs.len() {
            assert!(matches!(
                self.req(site, &Frame::HealLinks),
                Outcome::Done(_)
            ));
            for peer in 0..self.addrs.len() {
                if peer == site || group_of(peer) == group_of(site) {
                    continue;
                }
                let done = self.req(
                    site,
                    &Frame::Deny {
                        site: SiteId::new(peer),
                    },
                );
                assert!(matches!(done, Outcome::Done(_)), "deny S{peer} at S{site}");
            }
        }
    }

    fn heal(&self) {
        for site in 0..self.addrs.len() {
            assert!(matches!(
                self.req(site, &Frame::HealLinks),
                Outcome::Done(_)
            ));
        }
    }

    fn stop(self) {
        for daemon in self.daemons {
            daemon.stop();
        }
    }
}

/// Finds a key that hashes to `shard` under `map` — the test's keys
/// must provably exercise both shard groups.
fn key_for(map: &dynvote_control::ShardMap, shard: u16, tag: &str) -> String {
    for i in 0..10_000 {
        let key = format!("{tag}-{i}");
        if map.shard_of(key.as_bytes()) == shard {
            return key;
        }
    }
    panic!("no key hashed to shard {shard} in 10k tries — the hash is broken");
}

/// Routing correctness plus per-shard protocol independence: with
/// shard 0 on sites {0,1,2} and shard 1 on sites {1,2,3}, the cut
/// {0,1} | {2,3} leaves shard 0's quorum on the left and shard 1's on
/// the right. Each group decides from its *own* `⟨o, v, P⟩`; neither
/// outcome leaks into the other.
#[test]
fn shards_route_by_key_and_partition_independently() {
    let fleet = Fleet::boot(4, 2, "ring:3");
    let router = ShardRouter::new(vec![fleet.addrs[0].clone()], ConnOptions::default());
    let deadline = Deadline::within(TIMEOUT);
    let map = router.map(&deadline).expect("map from the fleet");
    assert_eq!(map.epoch, 1);
    assert_eq!(map.shards.len(), 2);
    assert_eq!(map.shards[0].placement, vec![0, 1, 2]);
    assert_eq!(map.shards[1].placement, vec![1, 2, 3]);

    // Routed writes and reads across both shards.
    let k0 = key_for(&map, 0, "left");
    let k1 = key_for(&map, 1, "right");
    assert!(router
        .put(&k0, b"a0", &deadline)
        .expect("putk k0")
        .granted());
    assert!(router
        .put(&k1, b"a1", &deadline)
        .expect("putk k1")
        .granted());
    match router.get(&k0, &deadline).expect("getk k0") {
        Outcome::Value { value, .. } => assert_eq!(value, b"a0"),
        other => panic!("getk {k0}: {other:?}"),
    }
    match router.get(&k1, &deadline).expect("getk k1") {
        Outcome::Value { value, .. } => assert_eq!(value, b"a1"),
        other => panic!("getk {k1}: {other:?}"),
    }

    // The sharded status surface (satellite): map epoch, count, roles.
    let status = fleet.status(1);
    assert_eq!(status["shard.map_epoch"], "1");
    assert_eq!(status["shard.count"], "2");
    assert_eq!(status["shard.hosted"], "0,1");
    assert_eq!(status["shard.0.role"], "replica");
    assert_eq!(status["shard.1.role"], "coordinator");
    let unhosted = fleet.status(3);
    assert_eq!(unhosted["shard.hosted"], "1");

    // Cut {0,1} | {2,3}. Shard 0 (placement [0,1,2]) keeps 2-of-3 on
    // the left; shard 1 (placement [1,2,3]) keeps 2-of-3 on the right.
    fleet.partition(&[&[0, 1], &[2, 3]]);

    // Shard 0's quorum lives on the left: a (shard-addressed, raw
    // protocol) read is granted at S0 and refused at S2. A granted
    // dynamic-voting read is itself an op — it shrinks shard 0's P to
    // {0,1}. Raw `Put` is deliberately not used here: it would replace
    // the shard's replicated KV image with a bare value.
    assert!(
        fleet.shard_req(0, 0, Frame::Get).granted(),
        "shard 0 has quorum at S0"
    );
    assert!(
        !fleet.shard_req(2, 0, Frame::Get).granted(),
        "S2 is a 1-of-3 minority of shard 0"
    );
    // Shard 1 is the mirror image: its quorum lives on the right.
    assert!(
        fleet.shard_req(2, 1, Frame::Get).granted(),
        "shard 1 has quorum at S2"
    );
    assert!(
        !fleet.shard_req(1, 1, Frame::Get).granted(),
        "S1 is a 1-of-3 minority of shard 1"
    );

    // The keyed (routed) paths agree: shard 0's coordinator S0 serves;
    // shard 1's coordinator S1 is quorumless, so the routed op comes
    // back typed (refused/unavailable after bounded retries) — never a
    // granted write into a minority.
    assert!(router
        .put(&k0, b"c0", &deadline)
        .expect("putk k0 under cut")
        .granted());
    let cut_deadline = Deadline::within(Duration::from_secs(5));
    // A typed client error after retries is equally sound here.
    if let Ok(outcome) = router.put(&k1, b"c1", &cut_deadline) {
        assert!(!outcome.granted(), "minority write granted: {outcome:?}");
    }

    // Heal, reintegrate each shard's straggler, and check both
    // histories survived independently.
    fleet.heal();
    assert!(fleet.shard_req(2, 0, Frame::Recover).granted());
    assert!(fleet.shard_req(1, 1, Frame::Recover).granted());
    match router.get(&k0, &deadline).expect("getk k0 after heal") {
        Outcome::Value { value, .. } => assert_eq!(value, b"c0"),
        other => panic!("getk {k0}: {other:?}"),
    }
    match router.get(&k1, &deadline).expect("getk k1 after heal") {
        Outcome::Value { value, .. } => assert_eq!(value, b"a1"),
        other => panic!("getk {k1}: {other:?}"),
    }

    // Independence in the protocol state: the two groups' per-shard
    // `⟨o, v, P⟩` lines at S1 (hosting both) are distinct streams.
    let status = fleet.status(1);
    assert!(status.contains_key("shard.0.version"));
    assert!(status.contains_key("shard.1.version"));
    fleet.stop();
}

/// A client routing at epoch 1 keeps working straight through the
/// scripted 1 → 2 rebalance (S3 joins shard 0 via protocol-level
/// RECOVER): zero failed requests — only typed stale-map retries —
/// and every committed write survives the epoch bump.
#[test]
fn clients_ride_through_a_rebalance_with_zero_failures() {
    let fleet = Fleet::boot(4, 1, "ring:3");
    let bootstrap = fleet.addrs[0].clone();
    let map = fetch_map(&bootstrap, TIMEOUT).expect("initial map");
    assert_eq!(map.shards[0].placement, vec![0, 1, 2]);

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let bootstrap = bootstrap.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let router = ShardRouter::new(vec![bootstrap], ConnOptions::default());
            let mut committed: Vec<(String, String)> = Vec::new();
            let mut failures: Vec<String> = Vec::new();
            let mut round = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) || round < 8 {
                round += 1;
                let key = format!("k{}", round % 4);
                let value = format!("v{round}");
                let deadline = Deadline::within(TIMEOUT);
                match router.put(&key, value.as_bytes(), &deadline) {
                    Ok(outcome) if outcome.granted() => committed.push((key, value)),
                    Ok(other) => failures.push(format!("put {key}: {other:?}")),
                    Err(error) => failures.push(format!("put {key}: {error}")),
                }
            }
            (committed, failures, router.stale_retries())
        })
    };

    // Let the writer commit at epoch 1, then rebalance under it.
    std::thread::sleep(Duration::from_millis(300));
    let steps = rebalance(&bootstrap, 0, Some(3), None, TIMEOUT).expect("rebalance add S3");
    assert!(
        steps.iter().any(|s| s.contains("recovered into shard 0")),
        "rebalance ran RECOVER at the joiner: {steps:?}"
    );
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let (committed, failures, stale_retries) = writer.join().expect("writer thread");

    assert!(
        failures.is_empty(),
        "failed requests across the rebalance: {failures:?}"
    );
    assert!(
        !committed.is_empty(),
        "the writer never committed anything — the test exercised nothing"
    );
    let _ = stale_retries; // zero is fine if the writer raced past the bump

    // The map moved: epoch 2, S3 in the placement, and S3 actually
    // hosts the shard now.
    let map = fetch_map(&bootstrap, TIMEOUT).expect("post-rebalance map");
    assert_eq!(map.epoch, 2);
    assert_eq!(map.shards[0].placement, vec![0, 1, 2, 3]);
    let status = fleet.status(3);
    assert_eq!(status["shard.hosted"], "0");

    // No committed write was lost: the last committed value per key is
    // exactly what the post-rebalance store serves.
    let router = ShardRouter::new(vec![bootstrap], ConnOptions::default());
    let mut last: BTreeMap<String, String> = BTreeMap::new();
    for (key, value) in committed {
        last.insert(key, value);
    }
    for (key, expected) in last {
        let deadline = Deadline::within(TIMEOUT);
        match router.get(&key, &deadline).expect("getk after rebalance") {
            Outcome::Value { value, .. } => {
                assert_eq!(
                    String::from_utf8_lossy(&value),
                    expected,
                    "key {key} lost or forked across the epoch bump"
                );
            }
            other => panic!("getk {key}: {other:?}"),
        }
    }
    fleet.stop();
}

/// A dead control plane is a *typed*, bounded failure: routing against
/// an address nobody listens on errors out inside the deadline instead
/// of hanging, and the error is a client-typed one.
#[test]
fn dead_control_plane_fails_typed_within_the_deadline() {
    // Bind-then-drop: a loopback port that is guaranteed dead.
    let dead = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        listener.local_addr().expect("bound").to_string()
    };
    let router = ShardRouter::new(vec![dead], ConnOptions::default());
    let started = Instant::now();
    let result = router.put("k", b"v", &Deadline::within(Duration::from_secs(2)));
    let elapsed = started.elapsed();
    assert!(result.is_err(), "a dead fleet granted a write: {result:?}");
    assert!(
        elapsed < Duration::from_secs(8),
        "the router hung for {elapsed:?} on a dead control plane"
    );
}
