//! Loopback integration tests: real daemons, real sockets, real
//! partitions.
//!
//! The centrepiece is the paper's Figure 8 network — eight sites over
//! three segments — booted as eight in-process daemons on ephemeral
//! loopback ports, partitioned along its segment boundaries with the
//! runtime link rules, and driven through the ISSUE's scripted
//! partition/heal sequence for both ODV and OTDV. The assertions are
//! the protocols' contract:
//!
//! * the majority partition keeps granting reads and writes;
//! * every minority fragment refuses them (mutual exclusion — no
//!   fragment ever serves or commits a divergent value);
//! * after healing, recovery reintegrates every site onto the single
//!   surviving history.
//!
//! A separate test replays the same operation script against the
//! in-memory bus cluster and the TCP cluster and requires identical
//! grant/refuse decisions and identical final `⟨o, v, P⟩` state —
//! the transport-seam equivalence the refactor promises.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::time::Duration;

use dynvote_replica::{ClusterBuilder, Protocol};
use dynvote_store::client::{request, Deadline, Outcome};
use dynvote_store::config::Config;
use dynvote_store::conn::{ConnOptions, Connection};
use dynvote_store::server::{start_on, ServiceHandle};
use dynvote_store::wire::Frame;
use dynvote_types::{SiteId, SiteSet};

const TIMEOUT: Duration = Duration::from_secs(10);

struct Live {
    daemons: Vec<ServiceHandle>,
    addrs: Vec<String>,
}

impl Live {
    /// Boots one daemon per site on ephemeral loopback ports: bind
    /// everything first, learn the real addresses, then start each
    /// daemon on its pre-bound listener.
    fn boot(policy: &str, sites: usize, topology: &str) -> Live {
        let listeners: Vec<TcpListener> = (0..sites)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
            .collect();
        let addrs: Vec<String> = listeners
            .iter()
            .map(|l| l.local_addr().expect("bound").to_string())
            .collect();
        let peers: Vec<String> = addrs
            .iter()
            .enumerate()
            .map(|(site, addr)| format!("{site}={addr}"))
            .collect();
        let peers = peers.join(",");
        let daemons = listeners
            .into_iter()
            .enumerate()
            .map(|(site, listener)| {
                let line = format!(
                    "--site {site} --policy {policy} --peers {peers} {topology} \
                     --value v0 --connect-timeout-ms 250 --read-timeout-ms 2000 \
                     --backoff-ms 10 --backoff-cap-ms 100"
                );
                let config = Config::parse_args(line.split_whitespace().map(str::to_string))
                    .expect("test config parses");
                start_on(config, listener).expect("daemon starts")
            })
            .collect();
        Live { daemons, addrs }
    }

    fn req(&self, site: usize, frame: &Frame) -> Outcome {
        request(&self.addrs[site], frame, TIMEOUT).expect("daemon reachable")
    }

    fn put(&self, site: usize, value: &str) -> Outcome {
        self.req(
            site,
            &Frame::Put {
                value: value.as_bytes().to_vec(),
            },
        )
    }

    fn get(&self, site: usize) -> Outcome {
        self.req(site, &Frame::Get)
    }

    fn get_value(&self, site: usize) -> String {
        match self.get(site) {
            Outcome::Value { value, .. } => String::from_utf8_lossy(&value).into_owned(),
            other => panic!("expected a value at S{site}, got {other:?}"),
        }
    }

    fn status(&self, site: usize) -> BTreeMap<String, String> {
        match self.req(site, &Frame::Status) {
            Outcome::Report(text) => text
                .lines()
                .filter_map(|line| {
                    line.split_once('=')
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                })
                .collect(),
            other => panic!("expected a status report from S{site}, got {other:?}"),
        }
    }

    /// Cuts the cluster into the given groups: every daemon denies
    /// every site outside its own group. Re-applies from scratch, so
    /// successive partitions compose like the checker's.
    fn partition(&self, groups: &[&[usize]]) {
        let group_of = |site: usize| {
            groups
                .iter()
                .position(|g| g.contains(&site))
                .unwrap_or(usize::MAX)
        };
        for site in 0..self.addrs.len() {
            assert!(
                matches!(self.req(site, &Frame::HealLinks), Outcome::Done(_)),
                "heal-links at S{site}"
            );
            for peer in 0..self.addrs.len() {
                if peer == site || group_of(peer) == group_of(site) {
                    continue;
                }
                let done = self.req(
                    site,
                    &Frame::Deny {
                        site: SiteId::new(peer),
                    },
                );
                assert!(matches!(done, Outcome::Done(_)), "deny S{peer} at S{site}");
            }
        }
    }

    fn heal(&self) {
        for site in 0..self.addrs.len() {
            assert!(matches!(
                self.req(site, &Frame::HealLinks),
                Outcome::Done(_)
            ));
        }
    }

    fn stop(self) {
        for daemon in self.daemons {
            daemon.stop();
        }
    }
}

const FIGURE_8: &str = "--segments main=0,1,2,3,4;second=5;third=6,7 --bridges 3=second;4=third";

/// The tentpole scenario: Figure 8 over real sockets, partitioned
/// along its segment boundaries, for one policy.
///
/// `deep_cut` additionally splits the *main* segment itself. That is
/// only sound for the non-topological policies: TDV/OTDV assume a
/// segment never partitions internally (the checker enumerates only
/// segment-boundary cuts for them), so the intra-segment split is
/// outside their fault model.
fn figure_8_partition_heal(policy: &str, deep_cut: bool) {
    let live = Live::boot(policy, 8, FIGURE_8);

    // Whole cluster up: writes and remote reads are granted.
    assert!(live.put(0, "v1").granted(), "initial write at S0");
    assert_eq!(live.get_value(5), "v1", "read across the bridge at S5");

    // Cut along both bridges: {main} | {second} | {third}.
    live.partition(&[&[0, 1, 2, 3, 4], &[5], &[6, 7]]);

    // The majority partition (5 of 8) keeps working.
    assert!(live.put(0, "v2").granted(), "majority write after the cut");
    assert!(
        live.put(2, "v3").granted(),
        "majority write at a non-gateway"
    );

    // Mutual exclusion: every minority fragment refuses everything.
    for (site, label) in [(5, "second"), (6, "third"), (7, "third")] {
        assert!(
            !live.put(site, "poison").granted(),
            "write in minority segment {label} must be refused"
        );
        assert!(
            !live.get(site).granted(),
            "read in minority segment {label} must be refused"
        );
    }

    // Deeper cut inside the shrunk partition: P_m is now {0..4}, so
    // {0,1,2} is a strict majority of it while {3,4} is not.
    let last = if deep_cut {
        live.partition(&[&[0, 1, 2], &[3, 4], &[5], &[6, 7]]);
        assert!(
            live.put(1, "v4").granted(),
            "3 of the 5-site partition set is a strict majority"
        );
        assert!(
            !live.put(3, "poison").granted(),
            "2 of 5 must be refused (mutual exclusion inside the old majority)"
        );
        assert!(!live.put(5, "poison").granted());
        "v4"
    } else {
        "v3"
    };

    // Heal everything and reintegrate the stragglers. Absorption on
    // read only re-admits *current* copies, so every site that was cut
    // off must run the recovery protocol itself.
    live.heal();
    for site in [3, 4, 5, 6, 7] {
        let outcome = live.req(site, &Frame::Recover);
        assert!(
            outcome.granted(),
            "recover at S{site} after heal: {outcome:?}"
        );
    }

    // Granted reads absorb every recovered site back into the
    // partition set; after them, the whole cluster agrees.
    for site in 0..8 {
        assert_eq!(
            live.get_value(site),
            last,
            "S{site} must serve the single surviving history"
        );
    }
    let reference = live.status(0);
    let all = SiteSet::first_n(8);
    for site in 0..8 {
        let status = live.status(site);
        assert_eq!(status["version"], reference["version"], "S{site} version");
        assert_eq!(status["op"], reference["op"], "S{site} op");
        let members: Vec<usize> = status["partition"]
            .split(',')
            .map(|s| s.parse().expect("site index"))
            .collect();
        assert_eq!(
            SiteSet::from_indices(members.iter().copied()),
            all,
            "S{site} partition set reabsorbed everyone"
        );
        // No minority fragment ever slipped a write through: only
        // the majority-side coordinators count any granted writes.
        if site > 2 {
            assert_eq!(
                status["writes_ok"], "0",
                "S{site} never coordinated a grant"
            );
        }
    }
    live.stop();
}

#[test]
fn figure_8_odv_survives_partition_and_heal() {
    figure_8_partition_heal("odv", true);
}

#[test]
fn figure_8_otdv_survives_partition_and_heal() {
    figure_8_partition_heal("otdv", false);
}

/// The transport-seam equivalence: the same operation script, run
/// through the in-memory bus cluster and through a live TCP cluster,
/// must produce the same grant/refuse decisions and the same final
/// per-site `⟨o, v, P⟩`.
#[test]
fn tcp_cluster_matches_in_memory_cluster() {
    // In-memory reference.
    let mut reference = ClusterBuilder::new()
        .copies([0, 1, 2])
        .protocol(Protocol::Odv)
        .build_with_value(b"v0".to_vec());
    let mut expected = Vec::new();
    expected.push(reference.write(SiteId::new(0), b"a".to_vec()).is_ok());
    reference.force_partition(vec![
        SiteSet::from_indices([0, 1]),
        SiteSet::from_indices([2]),
    ]);
    expected.push(reference.write(SiteId::new(0), b"b".to_vec()).is_ok());
    expected.push(reference.write(SiteId::new(2), b"x".to_vec()).is_ok());
    expected.push(reference.read(SiteId::new(2)).is_ok());
    reference.heal_partition();
    expected.push(reference.recover(SiteId::new(2)).is_ok());
    expected.push(reference.read(SiteId::new(2)).is_ok());
    assert_eq!(
        expected,
        vec![true, true, false, false, true, true],
        "the reference script itself"
    );

    // The same script over sockets.
    let live = Live::boot("odv", 3, "");
    let mut actual = Vec::new();
    actual.push(live.put(0, "a").granted());
    live.partition(&[&[0, 1], &[2]]);
    actual.push(live.put(0, "b").granted());
    actual.push(live.put(2, "x").granted());
    actual.push(live.get(2).granted());
    live.heal();
    actual.push(live.req(2, &Frame::Recover).granted());
    actual.push(live.get(2).granted());
    assert_eq!(actual, expected, "grant/refuse decisions diverged");

    // Identical final state at every site. Statuses first — a `get`
    // is itself an op and would advance the live counters mid-check.
    let statuses: Vec<_> = (0..3).map(|site| live.status(site)).collect();
    for (site, status) in statuses.iter().enumerate() {
        let state = reference.state_at(SiteId::new(site));
        assert_eq!(status["op"], state.op.to_string(), "S{site} op");
        assert_eq!(
            status["version"],
            state.version.to_string(),
            "S{site} version"
        );
        let members: Vec<usize> = status["partition"]
            .split(',')
            .map(|s| s.parse().expect("site index"))
            .collect();
        assert_eq!(
            SiteSet::from_indices(members.iter().copied()),
            state.partition,
            "S{site} partition set"
        );
    }
    for site in 0..3 {
        assert_eq!(live.get_value(site), "b", "S{site} value");
    }
    live.stop();
}

/// Pipelining under a stalled link: two requests go down ONE
/// connection, the first (a write) wedges in a quorum round whose peer
/// exchanges silently time out, and the second (a status probe) is
/// answered while the first is still in flight. The replies come back
/// out of order, and each is matched to *its* correlation id — the
/// status never receives the write's answer or vice versa.
#[test]
fn pipelined_responses_overtake_a_stalled_quorum_round() {
    let live = Live::boot("odv", 3, "");

    // Cut the link *at the peers only*: S1 and S2 silently ignore
    // frames from S0, so S0's poll waits out its read timeout instead
    // of refusing fast (S0's own outbound links stay open). That is
    // the stall — the cluster lock is held for seconds.
    for peer in [1, 2] {
        let done = live.req(
            peer,
            &Frame::Deny {
                site: SiteId::new(0),
            },
        );
        assert!(matches!(done, Outcome::Done(_)), "deny S0 at S{peer}");
    }

    let conn = Connection::new(&live.addrs[0], ConnOptions::default());
    let deadline = Deadline::within(TIMEOUT);
    let started = std::time::Instant::now();
    let stalled = conn
        .submit(
            &Frame::Put {
                value: b"stalled".to_vec(),
            },
            &deadline,
        )
        .expect("submit the write");
    let probe = conn
        .submit(&Frame::Status, &deadline)
        .expect("submit status");
    assert_ne!(stalled.id(), probe.id(), "distinct correlation ids");

    // The status answer overtakes the write on the same socket. It is
    // bounded by the probe's 1.5s lock spin, not the multi-second
    // peer timeouts the write is sitting through.
    let report = conn.wait(&probe, &deadline).expect("status reply");
    let status_latency = started.elapsed();
    assert!(
        matches!(report, Outcome::Report(_)),
        "the status id must get the status answer, got {report:?}"
    );
    assert!(
        status_latency < Duration::from_millis(1900),
        "status took {status_latency:?} — it queued behind the stalled write"
    );

    // The write is still in flight; when it finally resolves it is a
    // (refused/unavailable) answer matched to the write's id, and it
    // genuinely sat through at least one peer read timeout. The poll's
    // bounded retry can take 3 attempts × 2 peers × ~2.75s, so this
    // wait gets a far larger budget than the probe needed.
    let outcome = conn
        .wait(&stalled, &Deadline::within(Duration::from_secs(30)))
        .expect("write reply");
    let write_latency = started.elapsed();
    assert!(
        !outcome.granted(),
        "a 1-of-3 coordinator cannot have quorum, got {outcome:?}"
    );
    assert!(
        matches!(outcome, Outcome::Refused(_) | Outcome::Unavailable { .. }),
        "the write id must get the write answer, got {outcome:?}"
    );
    assert!(
        write_latency > status_latency,
        "the write resolved before the probe it was supposed to stall past"
    );
    assert!(
        write_latency >= Duration::from_millis(1900),
        "write resolved in {write_latency:?} — the link never stalled, \
         so this test proved nothing about overtaking"
    );
    live.stop();
}

/// `dynvote-ctl status` speaks parseable key=value, including the
/// paper's `⟨o_i, v_i, P_i⟩` and per-link transport health.
#[test]
fn status_reports_policy_state_and_link_health() {
    let live = Live::boot("ldv", 3, "");
    assert!(live.put(0, "hello").granted());
    let status = live.status(0);
    assert_eq!(status["site"], "0");
    assert_eq!(status["policy"], "LDV");
    assert_eq!(status["version"], "2");
    assert_eq!(status["partition"], "0,1,2");
    assert_eq!(status["writes_ok"], "1");
    assert_eq!(status["pending"], "false");
    assert_eq!(status["links_blocked"], "-");
    assert_eq!(status["peer.1.connected"], "true");
    assert_eq!(status["peer.2.connected"], "true");
    assert!(status.contains_key("peer.1.backoff_ms"));
    assert!(status.contains_key("peer.2.reconnects"));
    live.stop();
}

/// The replay driver runs a real minimized checker trace from the
/// corpus against live daemons: the stale-read kernel stays clean.
#[test]
fn replay_drives_the_stale_read_kernel_live() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/traces/odv-stale-kernel-clean.trace"
    );
    let text = std::fs::read_to_string(path).expect("corpus trace readable");
    let trace = dynvote_check::TraceFile::parse(&text).expect("corpus trace parses");
    assert_eq!(trace.scenario.sites, 3);

    let live = Live::boot("odv", 3, "");
    let nodes: Vec<(usize, String)> = live
        .addrs
        .iter()
        .enumerate()
        .map(|(site, addr)| (site, addr.clone()))
        .collect();
    let steps = dynvote_store::replay::run(&trace, &nodes, TIMEOUT).expect("replay runs");
    assert_eq!(steps.len(), 4);
    // crash 0 / write 1 / repair 0 / read 0: the write lands past the
    // isolated copy, and the read after reintegration serves the
    // *current* value — the exact behavior the injected stale-read
    // fault breaks.
    assert!(steps[1].outcome.starts_with("granted"), "{:?}", steps[1]);
    assert!(steps[3].outcome.contains("w1"), "{:?}", steps[3]);
    live.stop();
}
