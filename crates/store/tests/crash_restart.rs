//! Crash-restart integration: real `dynvote-stored` subprocesses on
//! loopback, killed with SIGKILL and restarted from their `--data-dir`.
//!
//! Two live assertions of the durability contract:
//!
//! * a node killed `-9` mid-workload restarts from snapshot + WAL,
//!   runs the paper's RECOVER in the background, and converges on the
//!   value the surviving majority committed while it was dead;
//! * fsync happens *before* the acknowledgement: with
//!   `--crash-after-wal-append` the daemon aborts between the WAL
//!   fsync and the client ack, the client sees a failure — and the
//!   restarted daemon still serves the write, proving the ack point
//!   sits strictly after stable storage.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dynvote_store::client::{request, Outcome};
use dynvote_store::wire::Frame;

const STORED: &str = env!("CARGO_BIN_EXE_dynvote-stored");
const TIMEOUT: Duration = Duration::from_secs(10);

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dynvote-crash-restart-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reserves `n` distinct loopback ports by binding them all at once,
/// then releasing them for the daemons (who retry with
/// `--bind-retry-ms` if the kernel is slow to hand a port back).
fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("bound").port())
        .collect()
}

/// The subprocess fleet; SIGKILLs every still-running child on drop so
/// a failing assertion never leaks daemons.
struct Fleet {
    children: Vec<Option<Child>>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_daemon(site: usize, ports: &[u16], data_dir: &Path, extra: &[&str]) -> Child {
    let peers: Vec<String> = ports
        .iter()
        .enumerate()
        .map(|(index, port)| format!("{index}=127.0.0.1:{port}"))
        .collect();
    Command::new(STORED)
        .args([
            "--site",
            &site.to_string(),
            "--policy",
            "odv",
            "--peers",
            &peers.join(","),
            "--value",
            "v0",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--snapshot-every",
            "4",
            "--bind-retry-ms",
            "15000",
            "--boot-recover-ms",
            "20000",
            "--connect-timeout-ms",
            "500",
            "--read-timeout-ms",
            "2000",
            "--log",
            data_dir.join("daemon.log").to_str().unwrap(),
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dynvote-stored")
}

fn addr(ports: &[u16], site: usize) -> String {
    format!("127.0.0.1:{}", ports[site])
}

fn wait_status(target: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if request(target, &Frame::Status, TIMEOUT).is_ok() {
            return;
        }
        assert!(Instant::now() < deadline, "{target} never answered status");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Retries a put until the cluster grants it (a freshly shrunk or
/// freshly restarted cluster may refuse one round while views settle).
fn put_granted(target: &str, value: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(Outcome::Done(_)) = request(
            target,
            &Frame::Put {
                value: value.as_bytes().to_vec(),
            },
            TIMEOUT,
        ) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{target}: put {value:?} never granted"
        );
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// Polls a get until it is granted with `expected` (a restarted node
/// needs its background RECOVER to land first).
fn wait_for_value(target: &str, expected: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(Outcome::Value { value, .. }) = request(target, &Frame::Get, TIMEOUT) {
            if value == expected.as_bytes() {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "{target} never served {expected:?} after restart"
        );
        std::thread::sleep(Duration::from_millis(200));
    }
}

#[test]
fn kill_nine_mid_workload_restarts_from_disk_and_recovers() {
    let ports = free_ports(3);
    let dirs: Vec<PathBuf> = (0..3).map(|s| scratch_dir(&format!("k9-s{s}"))).collect();
    let mut fleet = Fleet {
        children: (0..3)
            .map(|site| Some(spawn_daemon(site, &ports, &dirs[site], &[])))
            .collect(),
    };
    for site in 0..3 {
        wait_status(&addr(&ports, site));
    }

    put_granted(&addr(&ports, 0), "alpha");

    // SIGKILL site 2 — no shutdown path runs; disk is all it keeps.
    let mut victim = fleet.children[2].take().expect("site 2 running");
    victim.kill().expect("SIGKILL site 2");
    victim.wait().expect("reap site 2");

    // The surviving majority keeps committing while site 2 is down.
    put_granted(&addr(&ports, 0), "beta");
    put_granted(&addr(&ports, 1), "gamma");

    // Restart from the same data directory: local replay, then the
    // background RECOVER rejoins the majority and catches up.
    fleet.children[2] = Some(spawn_daemon(2, &ports, &dirs[2], &[]));
    wait_status(&addr(&ports, 2));
    wait_for_value(&addr(&ports, 2), "gamma");

    // The restarted node reports its durability counters.
    let Ok(Outcome::Report(report)) = request(&addr(&ports, 2), &Frame::Status, TIMEOUT) else {
        panic!("site 2 status unavailable after restart");
    };
    assert!(
        report.contains("durability.enabled=true"),
        "status must report durability on: {report}"
    );
    assert!(
        report.contains("durability.last_fsync=ok"),
        "restarted node must have fsync'd since boot: {report}"
    );

    drop(fleet);
    for dir in dirs {
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn crash_between_wal_append_and_ack_still_durably_commits() {
    let ports = free_ports(1);
    let dir = scratch_dir("fsync-before-ack");
    let mut fleet = Fleet {
        children: vec![Some(spawn_daemon(
            0,
            &ports,
            &dir,
            &["--crash-after-wal-append"],
        ))],
    };
    wait_status(&addr(&ports, 0));

    // The daemon fsyncs the commit, then aborts before acknowledging:
    // the client must NOT see a grant.
    let outcome = request(
        &addr(&ports, 0),
        &Frame::Put {
            value: b"precious".to_vec(),
        },
        TIMEOUT,
    );
    assert!(
        !matches!(outcome, Ok(Outcome::Done(_))),
        "crash hook fired before the ack, yet the put was acked: {outcome:?}"
    );
    let mut victim = fleet.children[0].take().expect("daemon running");
    victim.wait().expect("reap aborted daemon");

    // Restart without the hook: the unacknowledged write was already
    // on stable storage, so the restarted daemon serves it.
    fleet.children[0] = Some(spawn_daemon(0, &ports, &dir, &[]));
    wait_status(&addr(&ports, 0));
    wait_for_value(&addr(&ports, 0), "precious");

    drop(fleet);
    std::fs::remove_dir_all(dir).ok();
}
