//! A short end-to-end fault campaign against real daemons: the
//! tier-two live assertion that the nemesis harness itself works —
//! kills land, restarts recover, the workload never hangs, the monitor
//! stays quiet, and the schedule is reproducible from its seed.

use std::path::PathBuf;
use std::time::Duration;

use dynvote_store::campaign::{self, CampaignConfig, Topology};

#[test]
fn short_seeded_campaign_passes_with_zero_violations() {
    let data_root =
        std::env::temp_dir().join(format!("dynvote-campaign-smoke-{}", std::process::id()));
    let config = CampaignConfig {
        seed: 7,
        duration: Duration::from_secs(8),
        sites: 3,
        topology: Topology::Flat,
        policy: "odv".to_string(),
        clients: 2,
        op_deadline: Duration::from_secs(3),
        data_root: Some(data_root.clone()),
        out: None,
        keep_data: false,
        stored_bin: Some(PathBuf::from(env!("CARGO_BIN_EXE_dynvote-stored"))),
        quiet: true,
    };
    let outcome = campaign::run(&config).expect("campaign harness failed");
    assert!(
        outcome.violations.is_empty(),
        "campaign found violations:\n{}",
        outcome.violations.join("\n")
    );
    assert!(outcome.ops > 0, "workload issued no operations");
    assert!(
        outcome.report_json.contains("\"result\": \"pass\""),
        "report disagrees with outcome:\n{}",
        outcome.report_json
    );
    std::fs::remove_dir_all(&data_root).ok();
}

#[test]
fn schedule_is_a_pure_function_of_its_seed() {
    let a = campaign::schedule::generate(42, 8, 5, Duration::from_secs(60));
    let b = campaign::schedule::generate(42, 8, 5, Duration::from_secs(60));
    assert_eq!(a.render(), b.render());
}
