//! Property tests for the framed wire protocol.
//!
//! Two directions:
//!
//! * **round-trip** — every frame type, with generated field values,
//!   survives `encode → read_frame` bit-exactly;
//! * **totality over hostile bytes** — truncations, oversized length
//!   prefixes, and arbitrary garbage must *error*, never panic, and
//!   never allocate from a length field the body cannot back.
//!
//! The codec is also *canonical*: any body that decodes at all
//! re-encodes to the identical bytes, which the garbage test checks
//! for free whenever random bytes happen to form a valid frame.

use dynvote_core::state::ReplicaState;
use dynvote_store::wire::{read_frame, Frame, FrameError, MAX_FRAME};
use dynvote_types::{SiteId, SiteSet};
use proptest::collection::vec;
use proptest::prelude::*;

/// Every frame type, fields filled from the drawn values — the
/// exhaustive per-variant list the round-trip property walks.
#[allow(clippy::too_many_arguments)]
fn all_frames(
    ticket: u64,
    from: usize,
    to: usize,
    version: u64,
    mask: u64,
    flag: bool,
    blob: Vec<u8>,
    text: String,
) -> Vec<Frame> {
    let from = SiteId::new(from);
    let to = SiteId::new(to);
    let state = ReplicaState {
        op: ticket ^ 0x5a5a,
        version,
        partition: SiteSet::from_bits(mask),
    };
    vec![
        Frame::StartReq {
            ticket,
            from,
            to,
            mark_pending: flag,
        },
        Frame::StateRep {
            ticket,
            from,
            to,
            state,
        },
        Frame::Commit {
            ticket,
            from,
            to,
            state,
            value: if flag { Some(blob.clone()) } else { None },
        },
        Frame::CommitAck { ticket, from, to },
        Frame::CopyReq { ticket, from, to },
        Frame::CopyRep {
            ticket,
            from,
            to,
            version,
            value: blob.clone(),
        },
        Frame::Release {
            ticket,
            from,
            keep: SiteSet::from_bits(mask),
        },
        Frame::Abstain { ticket, from, to },
        Frame::Put { value: blob },
        Frame::Get,
        Frame::Recover,
        Frame::Status,
        Frame::Deny { site: from },
        Frame::Allow { site: to },
        Frame::HealLinks,
        Frame::Done {
            detail: text.clone(),
        },
        Frame::Value {
            version,
            value: text.clone().into_bytes(),
        },
        Frame::Refused {
            message: text.clone(),
        },
        // Correlation-id envelopes: one request and one response flavour,
        // since the pipelined transport tags both directions.
        Frame::Tagged {
            id: ticket,
            inner: Box::new(Frame::Put {
                value: text.clone().into_bytes(),
            }),
        },
        Frame::Tagged {
            id: ticket ^ u64::from(u32::MAX),
            inner: Box::new(Frame::Value {
                version,
                value: text.clone().into_bytes(),
            }),
        },
        // The sharded-store surface: keyed client operations, the
        // control plane's map exchange, and the shard envelope —
        // including the canonical Tagged{Shard{plain}} nesting.
        Frame::PutKey {
            epoch: version,
            shard: (mask & 0xFFFF) as u16,
            key: text.clone(),
            value: text.clone().into_bytes(),
        },
        Frame::GetKey {
            epoch: version ^ 1,
            shard: (mask >> 16 & 0xFFFF) as u16,
            key: text.clone(),
        },
        Frame::GetShardMap,
        Frame::InstallShardMap {
            map: text.clone().into_bytes(),
        },
        Frame::ShardMapRep {
            map: text.clone().into_bytes(),
        },
        Frame::StaleShardMap { epoch: ticket },
        Frame::Shard {
            shard: (mask & 0xFFFF) as u16,
            inner: Box::new(Frame::Recover),
        },
        Frame::Tagged {
            id: ticket.rotate_left(17),
            inner: Box::new(Frame::Shard {
                shard: (mask >> 32 & 0xFFFF) as u16,
                inner: Box::new(Frame::Status),
            }),
        },
        Frame::Report { text },
    ]
}

proptest! {
    /// encode → read_frame is the identity for every frame type.
    #[test]
    fn every_frame_type_round_trips(
        ticket in any::<u64>(),
        from in 0usize..64,
        to in 0usize..64,
        version in any::<u64>(),
        mask in any::<u64>(),
        flag in any::<bool>(),
        blob in vec(any::<u8>(), 0..128),
        text in vec(any::<u8>(), 0..64),
    ) {
        let text = String::from_utf8_lossy(&text).into_owned();
        for frame in all_frames(ticket, from, to, version, mask, flag, blob, text) {
            let bytes = frame.encode();
            let mut cursor = &bytes[..];
            let decoded = read_frame(&mut cursor);
            prop_assert_eq!(decoded.ok().as_ref(), Some(&frame), "frame: {:?}", frame);
            prop_assert!(cursor.is_empty(), "decoder consumed the exact frame");
        }
    }

    /// Every strict prefix of a valid encoding errors out cleanly —
    /// the decoder neither panics nor accepts a truncated frame.
    #[test]
    fn truncations_error_without_panicking(
        ticket in any::<u64>(),
        from in 0usize..64,
        to in 0usize..64,
        version in any::<u64>(),
        mask in any::<u64>(),
        flag in any::<bool>(),
        blob in vec(any::<u8>(), 0..32),
    ) {
        let frames = all_frames(ticket, from, to, version, mask, flag, blob, "x".into());
        for frame in frames {
            let bytes = frame.encode();
            for cut in 0..bytes.len() {
                let mut cursor = &bytes[..cut];
                prop_assert!(
                    read_frame(&mut cursor).is_err(),
                    "prefix of {} bytes of {:?} decoded",
                    cut,
                    frame
                );
            }
        }
    }

    /// A hostile length prefix above the cap is rejected before any
    /// body allocation — even when the claimed length is gigabytes.
    #[test]
    fn oversized_lengths_are_rejected(excess in 1u32..1025) {
        let len = MAX_FRAME + excess;
        let mut bytes = len.to_be_bytes().to_vec();
        // A few body bytes; the decoder must refuse before wanting them.
        bytes.extend_from_slice(&[0u8; 8]);
        let err = read_frame(&mut &bytes[..]).expect_err("oversized accepted");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    /// Arbitrary garbage bodies never panic the decoder, and anything
    /// that *does* decode re-encodes to the identical body (the
    /// encoding is canonical).
    #[test]
    fn garbage_bodies_decode_totally(body in vec(any::<u8>(), 0..256)) {
        match Frame::decode(&body) {
            Ok(frame) => {
                let reencoded = frame.encode();
                prop_assert_eq!(&reencoded[4..], &body[..], "non-canonical decode of {:?}", frame);
            }
            Err(
                FrameError::Truncated
                | FrameError::TrailingBytes { .. }
                | FrameError::UnknownType(_)
                | FrameError::BadSite(_)
                | FrameError::BadBool(_)
                | FrameError::BadReason(_)
                | FrameError::BadUtf8
                | FrameError::NestedTag
                | FrameError::NestedShard,
            ) => {}
            Err(FrameError::Oversized { .. }) => {
                prop_assert!(false, "Oversized is a prefix-layer error");
            }
        }
    }

    /// A correlation-id envelope wrapping another envelope is rejected
    /// as [`FrameError::NestedTag`] no matter what ids or inner frame
    /// the attacker picks — the decoder recurses exactly one level.
    #[test]
    fn nested_tag_envelopes_are_rejected(outer in any::<u64>(), inner in any::<u64>()) {
        let innermost = Frame::Get;
        let tagged_once = Frame::Tagged { id: inner, inner: Box::new(innermost) };
        // Hand-build the double envelope: the encoder refuses to nest,
        // so splice the once-tagged body behind a second tag header.
        let once = tagged_once.encode();
        let mut body = vec![0x30];
        body.extend_from_slice(&outer.to_be_bytes());
        body.extend_from_slice(&once[4..]); // skip the length prefix
        prop_assert_eq!(Frame::decode(&body), Err(FrameError::NestedTag));
    }

    /// A shard envelope wrapping another shard envelope is rejected as
    /// [`FrameError::NestedShard`] — the canonical nesting is at most
    /// `Tagged{Shard{plain}}`, and the decoder enforces it even against
    /// hand-built bytes the encoder would refuse to produce.
    #[test]
    fn nested_shard_envelopes_are_rejected(outer in any::<u16>(), inner in any::<u16>()) {
        let sharded_once = Frame::Shard { shard: inner, inner: Box::new(Frame::Get) };
        let once = sharded_once.encode();
        let mut body = vec![0x31];
        body.extend_from_slice(&outer.to_be_bytes());
        body.extend_from_slice(&once[4..]); // skip the length prefix
        prop_assert_eq!(Frame::decode(&body), Err(FrameError::NestedShard));
    }

    /// `encode_tagged(id)` — the hot-path encoder the pipelined client
    /// and server use — produces byte-identical output to wrapping in
    /// a [`Frame::Tagged`] and calling `encode`.
    #[test]
    fn encode_tagged_matches_the_envelope_encoding(
        id in any::<u64>(),
        blob in vec(any::<u8>(), 0..128),
    ) {
        for plain in [Frame::Put { value: blob.clone() }, Frame::Get, Frame::Status] {
            let fast = plain.encode_tagged(id);
            let slow = Frame::Tagged { id, inner: Box::new(plain) }.encode();
            prop_assert_eq!(fast, slow);
        }
    }
}
