//! `dynvote-ctl replay`: drive a *live* cluster through a minimized
//! checker counterexample.
//!
//! The model checker (`dynvote-check`) emits its shrunk traces in the
//! text format of [`TraceFile`] — the corpus lives in `tests/traces/`.
//! This module maps each [`CheckEvent`] onto the real cluster's only
//! fault surface, the link rules:
//!
//! * `crash s` — by default, isolate `s`: every other daemon denies
//!   `s`, and `s` denies everyone. The daemon stays up (a live process
//!   cannot be "crashed" politely) but is unreachable — the
//!   network-level shadow of the checker's fail-stop, and its state
//!   survives to the repair exactly as the checker's does. With
//!   [`ReplayOptions::crash_cmd`] set, the event instead runs a real
//!   process fault: `sh -c "CMD crash s"` (expected to `kill -9` the
//!   site's daemon) and, on `repair s`, `sh -c "CMD restart s"` —
//!   which only round-trips when the daemons persist with `--data-dir`,
//!   making the checker's stable-storage assumption a live assertion.
//! * `partition i` — install the `i`-th canonical segment partition of
//!   the scenario's network (the same enumeration order the checker
//!   uses), by denying every cross-group pair.
//! * `repair s` / `heal` — recomputed connectivity, below.
//! * `recover s` — `RECOVER` at `s` (Figure 3/7).
//! * `read s` / `write s` — `GET`/`PUT` at `s`; writes carry a
//!   monotone token so divergent histories are visible in the values.
//!
//! After every topology event the driver *reconciles*: it derives the
//! full desired connectivity (crashed set × active partition) and
//! issues `heal-links` + `deny` to every daemon, so events compose
//! idempotently instead of accumulating.

use std::collections::BTreeSet;
use std::time::Duration;

use dynvote_check::{CheckEvent, TraceFile};
use dynvote_types::{SiteId, SiteSet};

use crate::client::{request, Outcome};
use crate::wire::Frame;

/// One replayed step: the event and what the live cluster said.
#[derive(Clone, Debug)]
pub struct ReplayStep {
    /// The event, rendered as in the trace file.
    pub event: String,
    /// The live outcome ("granted …", "refused …", or a topology note).
    pub outcome: String,
}

/// How `crash`/`repair` events map onto the live cluster.
#[derive(Clone, Debug, Default)]
pub struct ReplayOptions {
    /// Shell hook for real process faults: invoked as
    /// `sh -c "CMD crash S"` when site `S` crashes and
    /// `sh -c "CMD restart S"` when it is repaired. `None` falls back
    /// to link-level isolation (the daemons stay up).
    pub crash_cmd: Option<String>,
}

struct Driver<'a> {
    nodes: &'a [(usize, String)],
    timeout: Duration,
    crashed: BTreeSet<usize>,
    /// The active canonical partition (groups of sites), if any.
    groups: Option<Vec<SiteSet>>,
    /// When crashes are real `kill -9`s, dead daemons cannot be sent
    /// link rules — reconcile skips them.
    kill_mode: bool,
}

impl Driver<'_> {
    fn addr_of(&self, site: usize) -> Result<&str, String> {
        self.nodes
            .iter()
            .find(|(index, _)| *index == site)
            .map(|(_, addr)| addr.as_str())
            .ok_or_else(|| format!("no --nodes entry for site {site}"))
    }

    fn send(&self, site: usize, frame: &Frame) -> Result<Outcome, String> {
        let addr = self.addr_of(site)?;
        request(addr, frame, self.timeout).map_err(|e| format!("S{site} ({addr}): {e}"))
    }

    fn group_index(&self, site: usize) -> usize {
        match &self.groups {
            Some(groups) => groups
                .iter()
                .position(|g| g.contains(SiteId::new(site)))
                .unwrap_or(usize::MAX),
            None => 0,
        }
    }

    /// Whether `a` and `b` should currently be able to talk.
    fn connected(&self, a: usize, b: usize) -> bool {
        !self.crashed.contains(&a)
            && !self.crashed.contains(&b)
            && self.group_index(a) == self.group_index(b)
    }

    /// Polls a restarted daemon until it answers `status` again (it may
    /// still be retrying its listen bind or replaying its WAL).
    fn wait_up(&self, site: usize) -> Result<(), String> {
        let addr = self.addr_of(site)?;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            if request(addr, &Frame::Status, self.timeout).is_ok() {
                return Ok(());
            }
            if std::time::Instant::now() >= deadline {
                return Err(format!(
                    "S{site} ({addr}) never answered status after restart"
                ));
            }
            std::thread::sleep(std::time::Duration::from_millis(200));
        }
    }

    /// Pushes the full desired connectivity to every daemon.
    fn reconcile(&self) -> Result<(), String> {
        let skip: Vec<usize> = if self.kill_mode {
            self.crashed.iter().copied().collect()
        } else {
            Vec::new()
        };
        push_link_rules(self.nodes, &skip, self.timeout, &|a, b| {
            self.connected(a, b)
        })
    }
}

/// Pushes a full desired connectivity onto every live daemon: each site
/// gets `heal-links` followed by one `deny` per pair the `connected`
/// predicate rules out, so topology events compose idempotently instead
/// of accumulating. Sites in `skip` (dead processes) receive nothing.
///
/// Shared between counterexample replay and the live fault campaign —
/// both drive the same fabric, they just compute connectivity
/// differently (replay: crash set × canonical partition; campaign:
/// additionally, stalled sites).
///
/// # Errors
///
/// A daemon that should be alive did not accept the rules.
pub(crate) fn push_link_rules(
    nodes: &[(usize, String)],
    skip: &[usize],
    timeout: Duration,
    connected: &dyn Fn(usize, usize) -> bool,
) -> Result<(), String> {
    let addr_of = |site: usize| -> Result<&str, String> {
        nodes
            .iter()
            .find(|(index, _)| *index == site)
            .map(|(_, addr)| addr.as_str())
            .ok_or_else(|| format!("no node entry for site {site}"))
    };
    for (site, _) in nodes {
        if skip.contains(site) {
            continue; // the process is dead — nothing to configure
        }
        let addr = addr_of(*site)?;
        let send = |frame: &Frame| -> Result<Outcome, String> {
            request(addr, frame, timeout).map_err(|e| format!("S{site} ({addr}): {e}"))
        };
        send(&Frame::HealLinks)?;
        for (peer, _) in nodes {
            if peer == site || connected(*site, *peer) {
                continue;
            }
            send(&Frame::Deny {
                site: SiteId::new(*peer),
            })?;
        }
    }
    Ok(())
}

fn describe(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Done(detail) => format!("granted: {detail}"),
        Outcome::Value { version, value } => format!(
            "granted: v={version} value={:?}",
            String::from_utf8_lossy(value)
        ),
        Outcome::Refused(message) => format!("refused: {message}"),
        Outcome::Unavailable { reason, message } => {
            format!("unavailable ({reason}): {message}")
        }
        Outcome::Report(_) => "report".to_string(),
        Outcome::ShardMap(_) => "shard map".to_string(),
        Outcome::Stale { epoch } => format!("stale shard map (daemon epoch {epoch})"),
    }
}

/// Replays a parsed trace against live daemons.
///
/// `nodes` maps each scenario site index to a daemon address and must
/// cover `0..scenario.sites`. The daemons are expected to already run
/// the trace's policy on the scenario's canonical topology (the
/// `dynvote-ctl replay` command prints the matching `--segments`
/// description before driving).
///
/// # Errors
///
/// A missing node mapping, an unreachable daemon, or a partition index
/// outside the scenario's canonical enumeration.
pub fn run(
    trace: &TraceFile,
    nodes: &[(usize, String)],
    timeout: Duration,
) -> Result<Vec<ReplayStep>, String> {
    run_with(trace, nodes, timeout, &ReplayOptions::default())
}

/// Runs the fault-mapping shell hook for one site.
fn run_fault_cmd(cmd: &str, action: &str, site: usize) -> Result<(), String> {
    let full = format!("{cmd} {action} {site}");
    let status = std::process::Command::new("sh")
        .arg("-c")
        .arg(&full)
        .status()
        .map_err(|e| format!("--crash-cmd: cannot spawn sh for {full:?}: {e}"))?;
    if !status.success() {
        return Err(format!("--crash-cmd: {full:?} exited with {status}"));
    }
    Ok(())
}

/// [`run`], with [`ReplayOptions`] selecting how crash events land on
/// the cluster (link isolation vs. real `kill -9` + restart-from-disk).
///
/// # Errors
///
/// Everything [`run`] reports, plus a failing `crash_cmd` invocation or
/// a restarted daemon that never answers `status` again.
pub fn run_with(
    trace: &TraceFile,
    nodes: &[(usize, String)],
    timeout: Duration,
    options: &ReplayOptions,
) -> Result<Vec<ReplayStep>, String> {
    for site in 0..trace.scenario.sites {
        if !nodes.iter().any(|(index, _)| *index == site) {
            return Err(format!(
                "trace needs sites 0..{} but --nodes has no entry for {site}",
                trace.scenario.sites
            ));
        }
    }
    let crash_cmd = options.crash_cmd.as_deref();
    let partitions = trace.scenario.network().segment_partitions();
    let mut driver = Driver {
        nodes,
        timeout,
        crashed: BTreeSet::new(),
        groups: None,
        kill_mode: crash_cmd.is_some(),
    };
    // Start from a known-clean fabric.
    driver.reconcile()?;
    let mut steps = Vec::new();
    let mut write_token = 0u64;
    for event in &trace.events {
        let outcome = match event {
            CheckEvent::Crash(site) => {
                driver.crashed.insert(site.index());
                if let Some(cmd) = crash_cmd {
                    run_fault_cmd(cmd, "crash", site.index())?;
                    driver.reconcile()?;
                    "killed (real process fault via --crash-cmd)".to_string()
                } else {
                    driver.reconcile()?;
                    "isolated (live shadow of fail-stop)".to_string()
                }
            }
            CheckEvent::Repair(site) => {
                driver.crashed.remove(&site.index());
                if let Some(cmd) = crash_cmd {
                    run_fault_cmd(cmd, "restart", site.index())?;
                    driver.wait_up(site.index())?;
                    driver.reconcile()?;
                    "restarted from disk".to_string()
                } else {
                    driver.reconcile()?;
                    "reconnected".to_string()
                }
            }
            CheckEvent::Partition(index) => {
                let groups = partitions.get(*index).ok_or_else(|| {
                    format!(
                        "partition {index} out of range ({} canonical partitions)",
                        partitions.len()
                    )
                })?;
                driver.groups = Some(groups.clone());
                driver.reconcile()?;
                let rendered: Vec<String> = groups
                    .iter()
                    .map(|g| {
                        let sites: Vec<String> = g.iter().map(|s| s.index().to_string()).collect();
                        format!("{{{}}}", sites.join(","))
                    })
                    .collect();
                format!("cut into {}", rendered.join(" | "))
            }
            CheckEvent::Heal => {
                driver.groups = None;
                driver.reconcile()?;
                "healed".to_string()
            }
            CheckEvent::Recover(site) => describe(&driver.send(site.index(), &Frame::Recover)?),
            CheckEvent::Read(site) => describe(&driver.send(site.index(), &Frame::Get)?),
            CheckEvent::Write(site) => {
                write_token += 1;
                let value = format!("w{write_token}").into_bytes();
                describe(&driver.send(site.index(), &Frame::Put { value })?)
            }
        };
        steps.push(ReplayStep {
            event: event.to_string(),
            outcome,
        });
    }
    Ok(steps)
}
