//! `BENCH_faults.json`: what the campaign measured, hand-rolled JSON
//! (the workspace takes no serialization dependency).
//!
//! The headline numbers are *availability under faults* — how often the
//! cluster answered (grant or typed refusal both count: a prompt "no"
//! is the protocol degrading gracefully; only a timeout is silence) —
//! and client-observed latency quantiles.

use std::collections::BTreeMap;
use std::time::Duration;

use super::monitor::MonitorReport;
use super::schedule::Schedule;
use super::workload::{OpRecord, OpResult};

/// Escapes a string for a JSON literal.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `p`-th percentile (0–100) of an unsorted latency set, in
/// fractional milliseconds; 0 when empty.
fn percentile_ms(latencies: &mut [Duration], p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_unstable();
    let rank = ((p / 100.0) * (latencies.len() - 1) as f64).round() as usize;
    latencies[rank.min(latencies.len() - 1)].as_secs_f64() * 1000.0
}

fn ms(value: f64) -> String {
    format!("{value:.3}")
}

/// Renders the full campaign report.
#[must_use]
pub fn render(
    schedule: &Schedule,
    topology: &str,
    policy: &str,
    records: &[OpRecord],
    monitor: &MonitorReport,
    extra_violations: &[String],
) -> String {
    let tally = schedule.tally();
    let total = records.len();
    let mut granted = 0usize;
    let mut refused = 0usize;
    let mut unavailable = 0usize;
    let mut timed_out = 0usize;
    let mut protocol = 0usize;
    let mut reasons: BTreeMap<String, usize> = BTreeMap::new();
    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    for record in records {
        latencies.push(record.latency);
        match &record.result {
            OpResult::Granted => granted += 1,
            OpResult::Refused => refused += 1,
            OpResult::Unavailable(reason) => {
                unavailable += 1;
                *reasons.entry(reason.token().to_string()).or_default() += 1;
            }
            OpResult::TimedOut => timed_out += 1,
            OpResult::Protocol(_) => protocol += 1,
        }
    }
    // Answered = the cluster spoke before the deadline, even to say no.
    let answered = total - timed_out;
    let ratio = |n: usize| {
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        }
    };
    let p50 = percentile_ms(&mut latencies, 50.0);
    let p90 = percentile_ms(&mut latencies, 90.0);
    let p99 = percentile_ms(&mut latencies, 99.0);
    let max = latencies.last().map_or(0.0, |d| d.as_secs_f64() * 1000.0);
    let violations: Vec<String> = monitor
        .violations
        .iter()
        .chain(extra_violations)
        .cloned()
        .collect();
    let reason_fields: Vec<String> = reasons
        .iter()
        .map(|(token, count)| format!("    {}: {count}", json_string(token)))
        .collect();
    let violation_items: Vec<String> = violations
        .iter()
        .map(|v| format!("    {}", json_string(v)))
        .collect();
    format!(
        "{{\n  \"campaign\": {{\n    \"seed\": {seed},\n    \"sites\": {sites},\n    \
         \"topology\": {topology},\n    \"policy\": {policy},\n    \
         \"duration_s\": {duration:.3}\n  }},\n  \"schedule\": {{\n    \
         \"faults\": {faults},\n    \"kills\": {kills},\n    \"restarts\": {restarts},\n    \
         \"disk_faults\": {disk},\n    \"partitions\": {parts},\n    \"heals\": {heals},\n    \
         \"stalls\": {stalls}\n  }},\n  \"workload\": {{\n    \"ops\": {total},\n    \
         \"granted\": {granted},\n    \"refused\": {refused},\n    \
         \"unavailable\": {unavailable},\n    \"timed_out\": {timed_out},\n    \
         \"protocol_errors\": {protocol},\n    \"granted_ratio\": {granted_ratio:.4},\n    \
         \"answered_ratio\": {answered_ratio:.4},\n    \"latency_ms\": {{\n      \
         \"p50\": {p50},\n      \"p90\": {p90},\n      \"p99\": {p99},\n      \
         \"max\": {max}\n    }}\n  }},\n  \"unavailable_reasons\": {{\n{reasons}\n  }},\n  \
         \"monitor\": {{\n    \"polls\": {polls},\n    \"violations\": {nviol}\n  }},\n  \
         \"violations\": [\n{viol}\n  ],\n  \"result\": {result}\n}}\n",
        seed = schedule.seed,
        sites = schedule.sites,
        topology = json_string(topology),
        policy = json_string(policy),
        duration = schedule.duration.as_secs_f64(),
        faults = schedule.faults.len(),
        kills = tally.kills,
        restarts = tally.restarts,
        disk = tally.disk_faults,
        parts = tally.partitions,
        heals = tally.heals,
        stalls = tally.stalls,
        granted_ratio = ratio(granted),
        answered_ratio = ratio(answered),
        p50 = ms(p50),
        p90 = ms(p90),
        p99 = ms(p99),
        max = ms(max),
        reasons = reason_fields.join(",\n"),
        polls = monitor.polls,
        nviol = violations.len(),
        viol = violation_items.join(",\n"),
        result = json_string(if violations.is_empty() {
            "pass"
        } else {
            "fail"
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::schedule::generate;
    use crate::wire::UnavailableReason;

    #[test]
    fn report_counts_and_escapes() {
        let schedule = generate(42, 3, 1, Duration::from_secs(10));
        let records = vec![
            OpRecord {
                at: Duration::from_millis(1),
                site: 0,
                is_write: true,
                token: Some(1),
                commit: Some((1, 1)),
                read_value: None,
                result: OpResult::Granted,
                latency: Duration::from_millis(3),
            },
            OpRecord {
                at: Duration::from_millis(2),
                site: 1,
                is_write: false,
                token: None,
                commit: None,
                read_value: None,
                result: OpResult::Unavailable(UnavailableReason::NoQuorum),
                latency: Duration::from_millis(2),
            },
            OpRecord {
                at: Duration::from_millis(3),
                site: 2,
                is_write: false,
                token: None,
                commit: None,
                read_value: None,
                result: OpResult::TimedOut,
                latency: Duration::from_millis(200),
            },
        ];
        let monitor = MonitorReport::default();
        let text = render(&schedule, "flat", "odv", &records, &monitor, &[]);
        assert!(text.contains("\"ops\": 3"), "{text}");
        assert!(text.contains("\"granted\": 1"), "{text}");
        assert!(text.contains("\"timed_out\": 1"), "{text}");
        assert!(text.contains("\"no-quorum\": 1"), "{text}");
        assert!(text.contains("\"result\": \"pass\""), "{text}");
        let quoted = render(
            &schedule,
            "flat",
            "odv",
            &[],
            &monitor,
            &["bad \"quote\"\nline".to_string()],
        );
        assert!(quoted.contains("bad \\\"quote\\\"\\nline"), "{quoted}");
        assert!(quoted.contains("\"result\": \"fail\""), "{quoted}");
    }
}
