//! The subprocess fleet: real `dynvote-stored` daemons on loopback,
//! SIGKILLed and restarted from their `--data-dir` by the nemesis.
//!
//! Disk faults are applied *between* kill and restart, directly to the
//! victim's data directory — the only window in which a real crash can
//! corrupt anything. The two shapes mirror what hardware actually does:
//! garbage appended past the WAL's last fsync'd record (torn tail), and
//! a flipped byte inside the snapshot (latent media error). Neither may
//! lose an acknowledged write — that is the recovery chain's contract,
//! and the campaign's monitor holds it to it.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dynvote_replica::wal::{SNAPSHOT_FILE, WAL_FILE};

use super::schedule::DiskFault;
use crate::client::request_deadline;
use crate::wire::Frame;

/// Everything needed to (re)spawn one site's daemon.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Path to the `dynvote-stored` binary.
    pub stored_bin: PathBuf,
    /// Loopback port per site (index = site).
    pub ports: Vec<u16>,
    /// Parent directory; site `s` persists under `site<s>/`.
    pub data_root: PathBuf,
    /// Protocol policy name (`odv`, `tdv`, …).
    pub policy: String,
    /// `--segments` description, if the topology is not flat.
    pub segments: Option<String>,
    /// `--bridges` description, if the topology is not flat.
    pub bridges: Option<String>,
    /// `--snapshot-every` record count.
    pub snapshot_every: u64,
}

impl FleetConfig {
    /// The client address of site `site`.
    #[must_use]
    pub fn addr(&self, site: usize) -> String {
        format!("127.0.0.1:{}", self.ports[site])
    }

    /// Site `site`'s data directory.
    #[must_use]
    pub fn data_dir(&self, site: usize) -> PathBuf {
        self.data_root.join(format!("site{site}"))
    }
}

/// Resolves the daemon binary when none was given explicitly: the
/// `DYNVOTE_STORED` environment variable, else a `dynvote-stored`
/// sibling of the current executable (the cargo target dir layout).
pub fn default_stored_bin() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var("DYNVOTE_STORED") {
        return Ok(PathBuf::from(path));
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = me.with_file_name("dynvote-stored");
    if sibling.exists() {
        return Ok(sibling);
    }
    Err(format!(
        "cannot find dynvote-stored next to {} — pass --stored or set DYNVOTE_STORED",
        me.display()
    ))
}

/// Reserves `n` distinct loopback ports by binding them all at once,
/// then releasing them for the daemons (who retry the bind with
/// `--bind-retry-ms` if the kernel is slow to hand a port back).
#[must_use]
pub fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("bound").port())
        .collect()
}

/// The running fleet. SIGKILLs every still-running child on drop so a
/// failed campaign never leaks daemons.
pub struct Fleet {
    config: FleetConfig,
    children: Vec<Option<Child>>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Fleet {
    /// Creates the data directories and spawns every daemon.
    ///
    /// # Errors
    ///
    /// Directory creation or process spawn failures.
    pub fn start(config: FleetConfig) -> Result<Fleet, String> {
        let mut fleet = Fleet {
            children: (0..config.ports.len()).map(|_| None).collect(),
            config,
        };
        for site in 0..fleet.config.ports.len() {
            std::fs::create_dir_all(fleet.config.data_dir(site))
                .map_err(|e| format!("create data dir for site {site}: {e}"))?;
            fleet.spawn(site)?;
        }
        Ok(fleet)
    }

    /// How many sites the fleet runs.
    #[must_use]
    pub fn sites(&self) -> usize {
        self.config.ports.len()
    }

    /// The client address of site `site`.
    #[must_use]
    pub fn addr(&self, site: usize) -> String {
        self.config.addr(site)
    }

    /// The `(site, addr)` list the link-rule reconciler wants.
    #[must_use]
    pub fn nodes(&self) -> Vec<(usize, String)> {
        (0..self.sites()).map(|s| (s, self.addr(s))).collect()
    }

    /// (Re)spawns site `site`'s daemon from its data directory.
    ///
    /// # Errors
    ///
    /// The process could not be spawned (binary missing, fork failure).
    pub fn spawn(&mut self, site: usize) -> Result<(), String> {
        let config = &self.config;
        let peers: Vec<String> = (0..config.ports.len())
            .map(|s| format!("{s}={}", config.addr(s)))
            .collect();
        let data_dir = config.data_dir(site);
        let mut command = Command::new(&config.stored_bin);
        command.args([
            "--site",
            &site.to_string(),
            "--policy",
            &config.policy,
            "--peers",
            &peers.join(","),
            "--value",
            "v0",
            "--data-dir",
            data_dir.to_str().expect("utf-8 data dir"),
            "--snapshot-every",
            &config.snapshot_every.to_string(),
            "--bind-retry-ms",
            "15000",
            "--boot-recover-ms",
            "30000",
            // Short peer timeouts: a coordinator polling silent peers
            // holds the cluster lock for attempts × read-timeout, and
            // during a campaign peers are silent *often* — long peer
            // timeouts would turn every fault into a multi-second
            // freeze of the victim's client port too.
            "--connect-timeout-ms",
            "250",
            "--read-timeout-ms",
            "800",
            "--log",
            data_dir.join("daemon.log").to_str().expect("utf-8 log"),
        ]);
        if let Some(segments) = &config.segments {
            command.args(["--segments", segments]);
        }
        if let Some(bridges) = &config.bridges {
            command.args(["--bridges", bridges]);
        }
        // Panics and abort messages land on stderr; keep them (append
        // across restarts) — a poisoned daemon is undiagnosable
        // without them.
        let stderr = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(data_dir.join("stderr.log"))
            .map_err(|e| format!("open stderr log for site {site}: {e}"))?;
        let child = command
            .stdout(Stdio::null())
            .stderr(Stdio::from(stderr))
            .spawn()
            .map_err(|e| format!("spawn {} for site {site}: {e}", config.stored_bin.display()))?;
        self.children[site] = Some(child);
        Ok(())
    }

    /// SIGKILLs site `site` and reaps it — no shutdown path runs.
    ///
    /// # Errors
    ///
    /// The site was not running, or the kill/wait syscalls failed.
    pub fn kill(&mut self, site: usize) -> Result<(), String> {
        let mut child = self.children[site]
            .take()
            .ok_or_else(|| format!("site {site} is not running"))?;
        child.kill().map_err(|e| format!("kill site {site}: {e}"))?;
        child.wait().map_err(|e| format!("reap site {site}: {e}"))?;
        Ok(())
    }

    /// Whether site `site`'s process is currently spawned.
    #[must_use]
    pub fn is_up(&self, site: usize) -> bool {
        self.children[site].is_some()
    }

    /// Corrupts a *dead* site's data directory — the pre-restart
    /// injection point. Returns a short description of what was done.
    ///
    /// # Errors
    ///
    /// The site is still running, or the file operations failed.
    pub fn apply_disk_fault(&self, site: usize, fault: &DiskFault) -> Result<String, String> {
        if self.is_up(site) {
            return Err(format!("refusing to corrupt live site {site}"));
        }
        let dir = self.config.data_dir(site);
        match fault {
            DiskFault::WalGarbageTail { bytes } => {
                let path = dir.join(WAL_FILE);
                let mut file = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(|e| format!("open {}: {e}", path.display()))?;
                let garbage: Vec<u8> = (0..*bytes).map(|i| (i as u8) ^ 0xA5).collect();
                file.write_all(&garbage)
                    .map_err(|e| format!("append garbage to {}: {e}", path.display()))?;
                Ok(format!("appended {bytes}B of garbage to wal.log"))
            }
            DiskFault::SnapshotFlip { offset_hint } => {
                let path = dir.join(SNAPSHOT_FILE);
                let mut file = match std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                {
                    Ok(file) => file,
                    // No snapshot taken yet — nothing to corrupt; the
                    // restart exercises plain WAL replay instead.
                    Err(_) => return Ok("no snapshot yet; flip skipped".to_string()),
                };
                let len = file
                    .metadata()
                    .map_err(|e| format!("stat {}: {e}", path.display()))?
                    .len();
                if len == 0 {
                    return Ok("empty snapshot; flip skipped".to_string());
                }
                let offset = offset_hint % len;
                let mut byte = [0u8; 1];
                file.seek(SeekFrom::Start(offset))
                    .and_then(|_| file.read_exact(&mut byte))
                    .map_err(|e| format!("read {}@{offset}: {e}", path.display()))?;
                byte[0] ^= 0x40;
                file.seek(SeekFrom::Start(offset))
                    .and_then(|_| file.write_all(&byte))
                    .map_err(|e| format!("write {}@{offset}: {e}", path.display()))?;
                Ok(format!("flipped snapshot.bin byte at offset {offset}"))
            }
        }
    }

    /// Polls the site until it answers `status` (it may still be
    /// retrying its bind or replaying its WAL).
    ///
    /// # Errors
    ///
    /// The daemon never answered within `within`.
    pub fn wait_status(&self, site: usize, within: Duration) -> Result<(), String> {
        let addr = self.addr(site);
        let deadline = Instant::now() + within;
        loop {
            // A generous per-request deadline: the daemon may be alive
            // but holding its cluster lock through a peer-poll round.
            if request_deadline(&addr, &Frame::Status, Duration::from_secs(8)).is_ok() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "site {site} ({addr}) never answered status within {within:?}"
                ));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// Kills every still-running daemon (end of campaign).
    pub fn shutdown(&mut self) {
        for child in self.children.iter_mut() {
            if let Some(mut running) = child.take() {
                let _ = running.kill();
                let _ = running.wait();
            }
        }
    }

    /// The data root (for artifact dumps).
    #[must_use]
    pub fn data_root(&self) -> &Path {
        &self.config.data_root
    }
}
