//! The online invariant monitor: live analogues of the model checker's
//! invariants, held against a real cluster while the nemesis swings.
//!
//! * **Monotone `⟨o, v⟩` per site** — polled from `status`. The state
//!   is durable and fsync'd before every acknowledgement, so a site's
//!   `(op, version)` pair must never move backward, *including across a
//!   `kill -9` and restart-from-disk* (the poll thread keeps one
//!   high-water mark per site across process generations).
//! * **At most one majority** — detected through write-token lineage:
//!   write values are globally unique tokens, and every grant reports
//!   the committed `⟨o, v⟩`. Two concurrent majorities both extend the
//!   same prefix, so they mint the *same* `⟨o, v⟩` for *different*
//!   tokens — exactly the collision [`lineage_violations`] looks for.
//! * **Reads serve real data** — a granted read's value must be a
//!   token some client actually wrote (or the initial value).
//! * **Committed-write durability** — after the cooldown (heal,
//!   restart, RECOVER everywhere), every site must serve one agreed
//!   value whose version dominates every granted write
//!   ([`convergence_violations`]).
//! * **No client hangs** — every operation record must have resolved
//!   within its deadline plus scheduling grace.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use super::workload::{OpRecord, OpResult};
use crate::client::{request_deadline, Outcome};
use crate::wire::Frame;

/// The initial file contents every fleet daemon boots with.
pub const INITIAL_VALUE: &str = "v0";

/// Parses a `status` report body (`key=value` lines) into a map.
#[must_use]
pub fn parse_status(text: &str) -> BTreeMap<String, String> {
    text.lines()
        .filter_map(|line| {
            line.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

/// What the poll thread found.
#[derive(Clone, Debug, Default)]
pub struct MonitorReport {
    /// Successful status polls, across all sites.
    pub polls: u64,
    /// Invariant violations, rendered for humans.
    pub violations: Vec<String>,
}

/// The running poll thread.
pub struct Monitor {
    handle: std::thread::JoinHandle<MonitorReport>,
    stop: Arc<AtomicBool>,
}

impl Monitor {
    /// Starts polling every address (index = site) at `interval`.
    #[must_use]
    pub fn start(addrs: Vec<String>, interval: Duration) -> Monitor {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || poll_loop(&addrs, interval, &flag));
        Monitor { handle, stop }
    }

    /// Stops polling and returns the findings.
    #[must_use]
    pub fn finish(self) -> MonitorReport {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join().expect("monitor thread panicked")
    }
}

fn poll_loop(addrs: &[String], interval: Duration, stop: &AtomicBool) -> MonitorReport {
    let mut report = MonitorReport::default();
    // Highest (op, version) ever observed per site — survives the
    // site's own restarts, which is the point.
    let mut high_water: Vec<Option<(u64, u64)>> = vec![None; addrs.len()];
    while !stop.load(Ordering::SeqCst) {
        for (site, addr) in addrs.iter().enumerate() {
            let Ok(Outcome::Report(text)) =
                request_deadline(addr, &Frame::Status, Duration::from_millis(800))
            else {
                continue; // dead or stalled right now — not a violation
            };
            let status = parse_status(&text);
            if status.contains_key("busy") {
                // Alive, but a quorum round holds the cluster lock —
                // no state to sample this tick. Not a violation.
                continue;
            }
            report.polls += 1;
            let parse = |key: &str| status.get(key).and_then(|v| v.parse::<u64>().ok());
            let (Some(op), Some(version)) = (parse("op"), parse("version")) else {
                report.violations.push(format!(
                    "site {site}: status report lacks op/version:\n{text}"
                ));
                continue;
            };
            let seen = (op, version);
            if let Some(mark) = high_water[site] {
                if seen < mark {
                    report.violations.push(format!(
                        "site {site}: ⟨o,v⟩ moved backward: had {mark:?}, now {seen:?} — \
                         durable state regressed across a restart"
                    ));
                }
            }
            if high_water[site].is_none_or(|mark| seen > mark) {
                high_water[site] = Some(seen);
            }
        }
        std::thread::sleep(interval);
    }
    report
}

/// Offline lineage checks over the finished workload's records.
///
/// `op_deadline` is the per-operation deadline the workload ran with;
/// an op that took longer than `op_deadline + grace` counts as a client
/// hang (the hardened client's central promise broken).
#[must_use]
pub fn lineage_violations(records: &[OpRecord], op_deadline: Duration) -> Vec<String> {
    let mut violations = Vec::new();
    let grace = Duration::from_secs(2);
    // ⟨o,v⟩ -> token, from granted writes.
    let mut committed: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let issued: std::collections::BTreeSet<String> = records
        .iter()
        .filter_map(|r| r.token.map(|n| format!("w{n}")))
        .collect();
    for record in records {
        if record.latency > op_deadline + grace {
            violations.push(format!(
                "client hang: op at {:?} on site {} took {:?} (deadline {:?})",
                record.at, record.site, record.latency, op_deadline
            ));
        }
        if let OpResult::Protocol(detail) = &record.result {
            violations.push(format!(
                "protocol error at {:?} on site {}: {detail}",
                record.at, record.site
            ));
        }
        if record.result != OpResult::Granted {
            continue;
        }
        if record.is_write {
            let (Some(token), Some(commit)) = (record.token, record.commit) else {
                violations.push(format!(
                    "granted write at {:?} on site {} reported no ⟨o,v⟩",
                    record.at, record.site
                ));
                continue;
            };
            if let Some(previous) = committed.insert(commit, token) {
                if previous != token {
                    violations.push(format!(
                        "at-most-one-majority violated: ⟨o,v⟩={commit:?} granted to both \
                         w{previous} and w{token} — two partitions committed concurrently"
                    ));
                }
            }
        } else if let Some(value) = &record.read_value {
            if value != INITIAL_VALUE && !issued.contains(value) {
                violations.push(format!(
                    "read at {:?} on site {} served {value:?}, which no client ever wrote",
                    record.at, record.site
                ));
            }
        }
    }
    violations
}

/// Checks the post-cooldown convergence: every site's final granted
/// read, as `(site, version, value)` triples.
#[must_use]
pub fn convergence_violations(
    final_reads: &[(usize, u64, String)],
    records: &[OpRecord],
) -> Vec<String> {
    let mut violations = Vec::new();
    let Some((_, first_version, first_value)) = final_reads.first() else {
        violations.push("convergence: no site answered the final read".to_string());
        return violations;
    };
    for (site, version, value) in final_reads {
        if version != first_version || value != first_value {
            violations.push(format!(
                "convergence: site {site} serves v={version} {value:?} but site {} \
                 serves v={first_version} {first_value:?}",
                final_reads[0].0
            ));
        }
    }
    let max_granted = records
        .iter()
        .filter(|r| r.is_write && r.result == OpResult::Granted)
        .filter_map(|r| r.commit.map(|(_, v)| v))
        .max();
    if let Some(max_granted) = max_granted {
        if *first_version < max_granted {
            violations.push(format!(
                "durability: final version {first_version} is below granted write \
                 version {max_granted} — an acknowledged write was lost"
            ));
        }
    }
    let issued: std::collections::BTreeSet<String> = records
        .iter()
        .filter_map(|r| r.token.map(|n| format!("w{n}")))
        .collect();
    if first_value != INITIAL_VALUE && !issued.contains(first_value) {
        violations.push(format!(
            "convergence: final value {first_value:?} was never written by any client"
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(at_ms: u64, token: u64, commit: (u64, u64)) -> OpRecord {
        OpRecord {
            at: Duration::from_millis(at_ms),
            site: 0,
            is_write: true,
            token: Some(token),
            commit: Some(commit),
            read_value: None,
            result: OpResult::Granted,
            latency: Duration::from_millis(5),
        }
    }

    #[test]
    fn split_brain_shows_up_as_an_ov_collision() {
        let records = vec![write(10, 1, (2, 5)), write(20, 2, (2, 5))];
        let violations = lineage_violations(&records, Duration::from_secs(3));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("at-most-one-majority"));
    }

    #[test]
    fn same_token_recommitting_is_not_a_collision() {
        // A retried write may commit twice under different versions —
        // and the same ⟨o,v⟩ reported twice for the SAME token is not
        // a split brain either.
        let records = vec![write(10, 1, (2, 5)), write(20, 1, (2, 5))];
        assert!(lineage_violations(&records, Duration::from_secs(3)).is_empty());
    }

    #[test]
    fn phantom_reads_and_hangs_are_flagged() {
        let mut read = write(30, 3, (2, 6));
        read.is_write = false;
        read.token = None;
        read.read_value = Some("never-written".to_string());
        let mut slow = write(40, 4, (2, 7));
        slow.latency = Duration::from_secs(30);
        let violations = lineage_violations(&[read, slow], Duration::from_secs(3));
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("never-written")));
        assert!(violations.iter().any(|v| v.contains("client hang")));
    }

    #[test]
    fn lost_write_fails_convergence() {
        let records = vec![write(10, 1, (1, 4))];
        let finals = vec![(0, 3, "w9".to_string()), (1, 3, "w9".to_string())];
        let violations = convergence_violations(&finals, &records);
        assert!(
            violations.iter().any(|v| v.contains("durability")),
            "{violations:?}"
        );
    }

    #[test]
    fn agreeing_sites_pass_convergence() {
        let records = vec![write(10, 1, (1, 4))];
        let finals = vec![(0, 4, "w1".to_string()), (1, 4, "w1".to_string())];
        assert!(convergence_violations(&finals, &records).is_empty());
    }

    #[test]
    fn status_parser_reads_key_values() {
        let map = parse_status("site=3\nop=2\nversion=17\n");
        assert_eq!(map.get("op").map(String::as_str), Some("2"));
        assert_eq!(map.get("version").map(String::as_str), Some("17"));
    }
}
