//! The live nemesis: seeded, time-bounded randomized fault campaigns
//! against a fleet of *real* `dynvote-stored` processes.
//!
//! Where the model checker (`dynvote-check`) exhausts small scopes of
//! an in-process model, the campaign points the same event vocabulary
//! at the real thing: SIGKILL and restart-from-disk, canonical
//! partition cuts over the live link rules, disk corruption injected
//! between kill and restart, stalled peers — all interleaved with a
//! concurrent client workload, under an online invariant monitor.
//!
//! The pieces:
//!
//! * [`schedule`] — the deterministic seeded fault schedule (same
//!   seed, same campaign), rendered in the checker's event grammar;
//! * [`fleet`] — subprocess management and the disk-fault injectors;
//! * [`workload`] — client threads on the hardened retry/deadline
//!   client, minting globally unique write tokens;
//! * [`monitor`] — live analogues of the checker's invariants;
//! * [`report`] — `BENCH_faults.json`: availability and latency
//!   quantiles under faults.
//!
//! Orchestration lives in [`run`]; the `dynvote-nemesis` binary is a
//! thin argument parser over it.

pub mod fleet;
pub mod monitor;
pub mod report;
pub mod schedule;
pub mod workload;

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dynvote_topology::{Network, NetworkBuilder};
use dynvote_types::{SiteId, SiteSet};

use crate::client::{request_deadline, Outcome};
use crate::replay::push_link_rules;
use crate::wire::Frame;
use fleet::{Fleet, FleetConfig};
use monitor::Monitor;
use workload::{Workload, WorkloadConfig};

/// Which topology the fleet runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// One segment, fully connected: partitions are process faults only.
    Flat,
    /// The paper's Figure 8 network: segments `main={0..4}`,
    /// `second={5}`, `third={6,7}`, bridged through gateways 3 and 4 —
    /// the topology whose link cuts the topological protocols (TDV,
    /// OTDV) were designed for. Fixes the site count at 8.
    Figure8,
}

impl Topology {
    /// The canonical network, for partition enumeration.
    ///
    /// # Errors
    ///
    /// A site count incompatible with the topology.
    pub fn network(self, sites: usize) -> Result<Network, String> {
        match self {
            Topology::Flat => Ok(Network::single_segment(sites)),
            Topology::Figure8 => {
                if sites != 8 {
                    return Err(format!(
                        "--topology figure8 fixes --sites at 8, got {sites}"
                    ));
                }
                NetworkBuilder::new()
                    .segment("main", [0, 1, 2, 3, 4])
                    .segment("second", [5])
                    .segment("third", [6, 7])
                    .bridge(3, "second")
                    .bridge(4, "third")
                    .build()
                    .map_err(|e| format!("figure8 topology: {e}"))
            }
        }
    }

    /// The daemon's `--segments` flag value, if any.
    #[must_use]
    pub fn segments_flag(self) -> Option<String> {
        match self {
            Topology::Flat => None,
            Topology::Figure8 => Some("main=0,1,2,3,4;second=5;third=6,7".to_string()),
        }
    }

    /// The daemon's `--bridges` flag value, if any.
    #[must_use]
    pub fn bridges_flag(self) -> Option<String> {
        match self {
            Topology::Flat => None,
            Topology::Figure8 => Some("3=second;4=third".to_string()),
        }
    }

    /// The report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Topology::Flat => "flat",
            Topology::Figure8 => "figure8",
        }
    }
}

/// Everything a campaign run needs.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// The schedule seed — the campaign's full identity.
    pub seed: u64,
    /// How long the fault schedule runs (cooldown comes after).
    pub duration: Duration,
    /// Cluster size (fixed at 8 by [`Topology::Figure8`]).
    pub sites: usize,
    /// Network shape.
    pub topology: Topology,
    /// Protocol policy name (`mcv|dv|ldv|odv|tdv|otdv`).
    pub policy: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Hard per-operation client deadline.
    pub op_deadline: Duration,
    /// Where daemon data dirs live; a fresh temp dir when `None`.
    pub data_root: Option<PathBuf>,
    /// Where to write `BENCH_faults.json`; skipped when `None`.
    pub out: Option<PathBuf>,
    /// Keep the data root even on success.
    pub keep_data: bool,
    /// Explicit `dynvote-stored` path; auto-resolved when `None`.
    pub stored_bin: Option<PathBuf>,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            duration: Duration::from_secs(60),
            sites: 5,
            topology: Topology::Flat,
            policy: "odv".to_string(),
            clients: 4,
            op_deadline: Duration::from_secs(3),
            data_root: None,
            out: None,
            keep_data: false,
            stored_bin: None,
            quiet: false,
        }
    }
}

/// What a finished campaign found.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Every invariant violation (empty = the campaign passed).
    pub violations: Vec<String>,
    /// The rendered `BENCH_faults.json` body.
    pub report_json: String,
    /// How many client operations ran.
    pub ops: usize,
    /// Where the per-site logs, data dirs, and failure dossier live —
    /// always kept when there were violations.
    pub artifacts: Option<PathBuf>,
}

struct Links {
    dead: BTreeSet<usize>,
    stalled: BTreeSet<usize>,
    groups: Option<Vec<SiteSet>>,
}

impl Links {
    fn group_of(&self, site: usize) -> usize {
        match &self.groups {
            Some(groups) => groups
                .iter()
                .position(|g| g.contains(SiteId::new(site)))
                .unwrap_or(usize::MAX),
            None => 0,
        }
    }

    fn connected(&self, a: usize, b: usize) -> bool {
        !self.stalled.contains(&a)
            && !self.stalled.contains(&b)
            && self.group_of(a) == self.group_of(b)
    }

    fn reconcile(&self, fleet: &Fleet) -> Result<(), String> {
        let skip: Vec<usize> = self.dead.iter().copied().collect();
        push_link_rules(&fleet.nodes(), &skip, Duration::from_secs(5), &|a, b| {
            self.connected(a, b)
        })
    }
}

/// Polls `Get` at `addr` until granted; returns `(version, value)`.
fn read_until_granted(addr: &str, within: Duration) -> Result<(u64, String), String> {
    let deadline = Instant::now() + within;
    loop {
        if let Ok(Outcome::Value { version, value }) =
            request_deadline(addr, &Frame::Get, Duration::from_secs(8))
        {
            return Ok((version, String::from_utf8_lossy(&value).into_owned()));
        }
        if Instant::now() >= deadline {
            return Err(format!("{addr}: read never granted within {within:?}"));
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// Drives `RECOVER` at every site until each has been granted once.
///
/// Round-robin, not site-by-site: a SIGKILLed coordinator leaves its
/// voters wedged on the dead poll's ticket (votes are durable, by
/// design — a lost vote could elect a phantom partition), and a wedged
/// site abstains from every poll but its *own* blank-slate RECOVER.
/// Insisting on one site first can therefore deadlock on a cluster
/// that is perfectly recoverable in another order.
fn recover_all(addrs: &[String], within: Duration) -> Result<(), String> {
    let deadline = Instant::now() + within;
    let mut pending: BTreeSet<usize> = (0..addrs.len()).collect();
    while !pending.is_empty() {
        let mut progressed = false;
        for site in pending.clone() {
            if let Ok(Outcome::Done(_)) =
                request_deadline(&addrs[site], &Frame::Recover, Duration::from_secs(10))
            {
                pending.remove(&site);
                progressed = true;
            }
        }
        if pending.is_empty() {
            break;
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "RECOVER never granted at sites {pending:?} within {within:?}"
            ));
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(250));
        }
    }
    Ok(())
}

/// Runs one full campaign: boot, warm up, swing the nemesis for
/// `duration`, cool down, converge, check, report.
///
/// Invariant violations do *not* return `Err` — they come back in
/// [`CampaignOutcome::violations`] with the artifacts kept on disk.
/// `Err` means the harness itself failed (spawn failure, a daemon that
/// never came up, an unreachable fleet).
///
/// # Errors
///
/// Infrastructure failures only, described for humans.
pub fn run(config: &CampaignConfig) -> Result<CampaignOutcome, String> {
    let progress = |line: &str| {
        if !config.quiet {
            eprintln!("nemesis: {line}");
        }
    };
    let network = config.topology.network(config.sites)?;
    let partitions = network.segment_partitions();
    let schedule = schedule::generate(config.seed, config.sites, partitions.len(), config.duration);
    let tally = schedule.tally();
    progress(&format!(
        "seed {} on {} ({} sites, {} canonical partitions): {} faults scheduled \
         ({} kills, {} restarts, {} with disk faults, {} cuts, {} stalls)",
        config.seed,
        config.topology.label(),
        config.sites,
        partitions.len(),
        schedule.faults.len(),
        tally.kills,
        tally.restarts,
        tally.disk_faults,
        tally.partitions,
        tally.stalls,
    ));
    let stored_bin = match &config.stored_bin {
        Some(path) => path.clone(),
        None => fleet::default_stored_bin()?,
    };
    let data_root = config.data_root.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "dynvote-nemesis-{}-{}",
            config.seed,
            std::process::id()
        ))
    });
    std::fs::create_dir_all(&data_root).map_err(|e| format!("create {data_root:?}: {e}"))?;
    let mut fleet = Fleet::start(FleetConfig {
        stored_bin,
        ports: fleet::free_ports(config.sites),
        data_root: data_root.clone(),
        policy: config.policy.clone(),
        segments: config.topology.segments_flag(),
        bridges: config.topology.bridges_flag(),
        snapshot_every: 8,
    })?;
    for site in 0..config.sites {
        fleet.wait_status(site, Duration::from_secs(60))?;
    }
    let mut links = Links {
        dead: BTreeSet::new(),
        stalled: BTreeSet::new(),
        groups: None,
    };
    links.reconcile(&fleet)?; // known-clean fabric
    progress("fleet up; starting monitor and workload");

    let addrs: Vec<String> = (0..config.sites).map(|s| fleet.addr(s)).collect();
    let monitor = Monitor::start(addrs.clone(), Duration::from_millis(250));
    let workload = Workload::start(
        addrs.clone(),
        WorkloadConfig {
            clients: config.clients,
            op_deadline: config.op_deadline,
            ..WorkloadConfig::default()
        },
        config.seed,
    );

    // ---- the fault schedule -------------------------------------------------
    let started = Instant::now();
    let mut harness_error = None;
    'faults: for fault in &schedule.faults {
        loop {
            let remaining = fault.at.saturating_sub(started.elapsed());
            if remaining.is_zero() {
                break;
            }
            std::thread::sleep(remaining.min(Duration::from_millis(10)));
        }
        let applied: Result<String, String> = (|| match fault.action {
            schedule::FaultAction::Kill(site) => {
                fleet.kill(site)?;
                links.dead.insert(site);
                links.reconcile(&fleet)?;
                Ok("SIGKILLed".to_string())
            }
            schedule::FaultAction::Restart { site, disk } => {
                let note = match disk {
                    Some(fault) => fleet.apply_disk_fault(site, &fault)?,
                    None => "clean disk".to_string(),
                };
                fleet.spawn(site)?;
                fleet.wait_status(site, Duration::from_secs(60))?;
                links.dead.remove(&site);
                links.reconcile(&fleet)?;
                Ok(format!("restarted from disk ({note})"))
            }
            schedule::FaultAction::Partition(index) => {
                let groups = partitions
                    .get(index)
                    .ok_or_else(|| format!("partition {index} out of range"))?;
                links.groups = Some(groups.clone());
                links.reconcile(&fleet)?;
                Ok(format!("cut into {} groups", groups.len()))
            }
            schedule::FaultAction::Heal => {
                links.groups = None;
                links.reconcile(&fleet)?;
                Ok("healed".to_string())
            }
            schedule::FaultAction::Stall(site) => {
                links.stalled.insert(site);
                links.reconcile(&fleet)?;
                Ok("links dark".to_string())
            }
            schedule::FaultAction::Unstall(site) => {
                links.stalled.remove(&site);
                links.reconcile(&fleet)?;
                Ok("links back".to_string())
            }
        })();
        match applied {
            Ok(note) => progress(&format!("{} — {note}", fault.render())),
            Err(error) => {
                harness_error = Some(format!("{}: {error}", fault.render()));
                break 'faults;
            }
        }
    }
    if harness_error.is_none() {
        while started.elapsed() < config.duration {
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    // ---- cooldown and convergence ------------------------------------------
    progress("schedule done; cooling down (heal, restart, RECOVER, converge)");
    let records = workload.finish();
    let mut extra_violations = Vec::new();
    let cooldown: Result<Vec<(usize, u64, String)>, String> = (|| {
        if let Some(error) = harness_error {
            return Err(error);
        }
        links.groups = None;
        links.stalled.clear();
        for site in links.dead.clone() {
            fleet.spawn(site)?;
            fleet.wait_status(site, Duration::from_secs(60))?;
            links.dead.remove(&site);
        }
        links.reconcile(&fleet)?;
        recover_all(&addrs, Duration::from_secs(90))?;
        let mut finals = Vec::new();
        for (site, addr) in addrs.iter().enumerate() {
            let (version, value) = read_until_granted(addr, Duration::from_secs(60))?;
            finals.push((site, version, value));
        }
        Ok(finals)
    })();
    let monitor_report = monitor.finish();
    match &cooldown {
        Ok(finals) => {
            extra_violations.extend(monitor::convergence_violations(finals, &records));
        }
        Err(error) => {
            // A cluster that cannot converge after every fault is lifted
            // is itself a liveness violation, not just an infra error.
            extra_violations.push(format!("cooldown failed: {error}"));
        }
    }
    extra_violations.extend(monitor::lineage_violations(&records, config.op_deadline));
    fleet.shutdown();

    // ---- report and artifacts ----------------------------------------------
    let report_json = report::render(
        &schedule,
        config.topology.label(),
        &config.policy,
        &records,
        &monitor_report,
        &extra_violations,
    );
    if let Some(out) = &config.out {
        std::fs::write(out, &report_json).map_err(|e| format!("write {out:?}: {e}"))?;
    }
    let mut violations = monitor_report.violations;
    violations.extend(extra_violations);
    let artifacts = if violations.is_empty() && !config.keep_data {
        std::fs::remove_dir_all(&data_root).ok();
        None
    } else {
        if !violations.is_empty() {
            let dossier = format!(
                "dynvote-nemesis failure dossier\nreproduce: dynvote-nemesis campaign \
                 --seed {} --duration {}s --topology {} --sites {} --policy {}\n\n\
                 violations:\n{}\n\nschedule:\n{}",
                config.seed,
                config.duration.as_secs(),
                config.topology.label(),
                config.sites,
                config.policy,
                violations.join("\n"),
                schedule.render(),
            );
            std::fs::write(data_root.join("FAILURE.txt"), dossier).ok();
        }
        Some(data_root)
    };
    progress(&format!(
        "{} ops, {} violations",
        records.len(),
        violations.len()
    ));
    Ok(CampaignOutcome {
        violations,
        report_json,
        ops: records.len(),
        artifacts,
    })
}
