//! The seeded fault schedule: a deterministic function of
//! `(seed, sites, partitions, duration)` — same seed, same campaign.
//!
//! The schedule speaks the model checker's event grammar where the two
//! overlap (`crash s`, `repair s`, `partition i`, `heal` — rendered via
//! [`dynvote_check::CheckEvent`] so the words can never drift apart)
//! and extends it with the faults only a *live* cluster can express:
//! disk injection between kill and restart (`disk=wal-garbage:N`,
//! `disk=snapshot-flip`), and stalled peers (`stall s` / `unstall s` —
//! the process stays up and keeps answering clients, but its links go
//! dark, the live shadow of a long GC pause).
//!
//! Generation respects the same soundness budget the checker explores
//! under: at most `⌊(n-1)/2⌋` sites are silent (dead or stalled) at
//! once, so a majority always *exists* — whether the protocols let it
//! keep serving is exactly what the campaign measures. Partition
//! indices come from the scenario's canonical
//! [`segment_partitions`](dynvote_topology::Network::segment_partitions)
//! enumeration, index ≥ 1 (index 0 is the trivial one-block cut, which
//! the grammar spells `heal`).

use std::time::Duration;

use dynvote_check::CheckEvent;
use dynvote_sim::SimRng;
use dynvote_types::SiteId;

/// Corruption applied to a dead site's data directory just before its
/// restart — shapes real crashes leave behind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// Append `bytes` of garbage to `wal.log`: the torn tail a crash
    /// mid-append leaves. The WAL opener must repair it without losing
    /// any *acknowledged* record (those precede the tear by fsync).
    WalGarbageTail {
        /// How much garbage lands after the last real record.
        bytes: usize,
    },
    /// Flip one byte of `snapshot.bin` (at `offset_hint` modulo the
    /// file length): a latent media error. Recovery must reject the
    /// checksum and fall back to the previous snapshot generation plus
    /// parked WAL — losing nothing.
    SnapshotFlip {
        /// Pseudo-random offset seed; reduced modulo the actual size.
        offset_hint: u64,
    },
}

impl core::fmt::Display for DiskFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DiskFault::WalGarbageTail { bytes } => write!(f, "wal-garbage:{bytes}"),
            DiskFault::SnapshotFlip { .. } => write!(f, "snapshot-flip"),
        }
    }
}

/// One fault the nemesis will inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// SIGKILL the site's daemon — no shutdown path runs.
    Kill(usize),
    /// Restart the daemon from its data directory, optionally after
    /// corrupting the directory first.
    Restart {
        /// Which site comes back.
        site: usize,
        /// Damage applied to the data dir before the process starts.
        disk: Option<DiskFault>,
    },
    /// Install the canonical segment partition with this index (≥ 1).
    Partition(usize),
    /// Remove any forced partition.
    Heal,
    /// The site's links go dark (process and client port stay up).
    Stall(usize),
    /// The stalled site's links come back.
    Unstall(usize),
}

/// A fault and when (offset from campaign start) it fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduledFault {
    /// Offset from campaign start.
    pub at: Duration,
    /// What happens.
    pub action: FaultAction,
}

impl ScheduledFault {
    /// Renders one schedule line: `@12.345s <event grammar>`.
    #[must_use]
    pub fn render(&self) -> String {
        let word = match self.action {
            FaultAction::Kill(s) => CheckEvent::Crash(SiteId::new(s)).to_string(),
            FaultAction::Restart { site, disk: None } => {
                CheckEvent::Repair(SiteId::new(site)).to_string()
            }
            FaultAction::Restart {
                site,
                disk: Some(fault),
            } => format!("{} disk={fault}", CheckEvent::Repair(SiteId::new(site))),
            FaultAction::Partition(i) => CheckEvent::Partition(i).to_string(),
            FaultAction::Heal => CheckEvent::Heal.to_string(),
            FaultAction::Stall(s) => format!("stall {s}"),
            FaultAction::Unstall(s) => format!("unstall {s}"),
        };
        format!("@{:>8.3}s {word}", self.at.as_secs_f64())
    }
}

/// The full seeded schedule, plus the parameters that determined it.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The seed that produced it.
    pub seed: u64,
    /// Cluster size.
    pub sites: usize,
    /// How many canonical segment partitions the topology admits
    /// (including the trivial index 0).
    pub partitions: usize,
    /// Campaign length.
    pub duration: Duration,
    /// The faults, sorted by firing time.
    pub faults: Vec<ScheduledFault>,
}

impl Schedule {
    /// Renders the whole schedule, header included — two runs with the
    /// same parameters must render byte-identically (CI diffs this).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "# dynvote-nemesis schedule seed={} sites={} partitions={} duration={:.3}s\n",
            self.seed,
            self.sites,
            self.partitions,
            self.duration.as_secs_f64()
        );
        for fault in &self.faults {
            out.push_str(&fault.render());
            out.push('\n');
        }
        out
    }

    /// Counts by kind, for the report.
    #[must_use]
    pub fn tally(&self) -> ScheduleTally {
        let mut tally = ScheduleTally::default();
        for fault in &self.faults {
            match fault.action {
                FaultAction::Kill(_) => tally.kills += 1,
                FaultAction::Restart { disk, .. } => {
                    tally.restarts += 1;
                    if disk.is_some() {
                        tally.disk_faults += 1;
                    }
                }
                FaultAction::Partition(_) => tally.partitions += 1,
                FaultAction::Heal => tally.heals += 1,
                FaultAction::Stall(_) => tally.stalls += 1,
                FaultAction::Unstall(_) => {}
            }
        }
        tally
    }
}

/// Fault counts by kind.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScheduleTally {
    /// SIGKILLs.
    pub kills: usize,
    /// Restarts from disk.
    pub restarts: usize,
    /// Restarts preceded by disk corruption.
    pub disk_faults: usize,
    /// Canonical partition cuts.
    pub partitions: usize,
    /// Heals.
    pub heals: usize,
    /// Stalled-peer episodes.
    pub stalls: usize,
}

/// Seconds of quiet before the first fault: the fleet finishes its
/// boot RECOVERs and the workload establishes a baseline.
const WARMUP_SECS: f64 = 2.0;

/// Generates the schedule. Pure function of its arguments: the only
/// entropy is a [`SimRng`] substream of `seed`, drawn in one fixed
/// order, so equal inputs yield equal (byte-identical) schedules.
#[must_use]
pub fn generate(seed: u64, sites: usize, partitions: usize, duration: Duration) -> Schedule {
    let mut rng = SimRng::substream(seed, 0xFA01);
    let end = duration.as_secs_f64();
    // The silence budget: a strict majority must always exist.
    let budget = sites.saturating_sub(1) / 2;
    let mut faults: Vec<ScheduledFault> = Vec::new();
    let mut dead: Vec<usize> = Vec::new();
    // site -> when its scheduled unstall fires
    let mut stalled: Vec<(usize, f64)> = Vec::new();
    let mut partitioned = false;
    let mut t = WARMUP_SECS;
    while t < end {
        stalled.retain(|(_, until)| *until > t);
        let silent = dead.len() + stalled.len();
        let is_silent = |s: usize| dead.contains(&s) || stalled.iter().any(|(site, _)| *site == s);
        // A weighted menu of the action kinds legal right now.
        // 0 kill, 1 restart, 2 partition, 3 heal, 4 stall
        let mut menu: Vec<(u32, u8)> = Vec::new();
        if silent < budget {
            menu.push((3, 0));
            menu.push((2, 4));
        }
        if !dead.is_empty() {
            menu.push((4, 1));
        }
        if partitions > 1 {
            if partitioned {
                menu.push((3, 3));
            } else {
                menu.push((2, 2));
            }
        }
        if menu.is_empty() {
            // Saturated (everything killable is dead and nothing else
            // is legal) — wait for the model to drain.
            t += 0.5;
            continue;
        }
        let total: u32 = menu.iter().map(|(w, _)| w).sum();
        let mut draw = rng.below(total as usize) as u32;
        let kind = menu
            .iter()
            .find(|(w, _)| {
                if draw < *w {
                    true
                } else {
                    draw -= w;
                    false
                }
            })
            .map(|(_, k)| *k)
            .expect("weighted draw in range");
        let action = match kind {
            0 => {
                let alive: Vec<usize> = (0..sites).filter(|s| !is_silent(*s)).collect();
                let victim = alive[rng.below(alive.len())];
                dead.push(victim);
                FaultAction::Kill(victim)
            }
            1 => {
                let site = dead.remove(rng.below(dead.len()));
                let disk = if rng.bernoulli(0.5) {
                    Some(if rng.bernoulli(0.5) {
                        DiskFault::WalGarbageTail {
                            bytes: 1 + rng.below(48),
                        }
                    } else {
                        DiskFault::SnapshotFlip {
                            offset_hint: rng.below(1 << 20) as u64,
                        }
                    })
                } else {
                    None
                };
                FaultAction::Restart { site, disk }
            }
            2 => {
                partitioned = true;
                FaultAction::Partition(1 + rng.below(partitions - 1))
            }
            3 => {
                partitioned = false;
                FaultAction::Heal
            }
            _ => {
                let alive: Vec<usize> = (0..sites).filter(|s| !is_silent(*s)).collect();
                let victim = alive[rng.below(alive.len())];
                let pause = (0.6 + rng.exponential(0.8)).min(2.5);
                let until = (t + pause).min(end);
                stalled.push((victim, until));
                faults.push(ScheduledFault {
                    at: Duration::from_secs_f64(until),
                    action: FaultAction::Unstall(victim),
                });
                FaultAction::Stall(victim)
            }
        };
        faults.push(ScheduledFault {
            at: Duration::from_secs_f64(t),
            action,
        });
        t += (0.35 + rng.exponential(0.9)).min(3.0);
    }
    faults.sort_by_key(|f| f.at);
    Schedule {
        seed,
        sites,
        partitions,
        duration,
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn silent_high_water(schedule: &Schedule) -> usize {
        let mut silent: Vec<usize> = Vec::new();
        let mut peak = 0;
        for fault in &schedule.faults {
            match fault.action {
                FaultAction::Kill(s) | FaultAction::Stall(s) => {
                    silent.push(s);
                    peak = peak.max(silent.len());
                }
                FaultAction::Restart { site, .. } | FaultAction::Unstall(site) => {
                    if let Some(at) = silent.iter().position(|s| *s == site) {
                        silent.remove(at);
                    }
                }
                _ => {}
            }
        }
        peak
    }

    #[test]
    fn same_seed_renders_byte_identical_schedules() {
        let a = generate(42, 8, 5, Duration::from_secs(60));
        let b = generate(42, 8, 5, Duration::from_secs(60));
        assert_eq!(a.render(), b.render());
        assert!(
            a.faults.len() >= 10,
            "a 60s schedule should be busy, got {} faults",
            a.faults.len()
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let a = generate(1, 5, 2, Duration::from_secs(30));
        let b = generate(2, 5, 2, Duration::from_secs(30));
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn silence_budget_never_exceeds_minority() {
        for seed in 0..20 {
            for sites in [3usize, 5, 8] {
                let schedule = generate(seed, sites, 4, Duration::from_secs(45));
                let budget = (sites - 1) / 2;
                assert!(
                    silent_high_water(&schedule) <= budget,
                    "seed {seed} sites {sites}: more than {budget} sites silent at once"
                );
            }
        }
    }

    #[test]
    fn faults_are_time_sorted_and_inside_the_window() {
        let schedule = generate(7, 5, 3, Duration::from_secs(30));
        let mut last = Duration::ZERO;
        for fault in &schedule.faults {
            assert!(fault.at >= last, "schedule not sorted");
            assert!(fault.at <= schedule.duration);
            last = fault.at;
        }
    }

    #[test]
    fn partition_indices_skip_the_trivial_cut() {
        let schedule = generate(11, 8, 5, Duration::from_secs(60));
        for fault in &schedule.faults {
            if let FaultAction::Partition(index) = fault.action {
                assert!((1..5).contains(&index), "partition {index} out of range");
            }
        }
    }

    #[test]
    fn render_uses_the_checker_grammar_words() {
        let schedule = generate(42, 5, 3, Duration::from_secs(40));
        let text = schedule.render();
        assert!(text.contains(" crash "), "no crash line:\n{text}");
        assert!(text.contains(" repair "), "no repair line:\n{text}");
    }
}
