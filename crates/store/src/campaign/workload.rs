//! The concurrent client workload: while the nemesis swings, client
//! threads keep issuing reads and writes through the hardened client
//! ([`request_retry`]) — every operation resolves within its deadline,
//! by construction, and every resolution is classified.
//!
//! Write values are globally unique monotone tokens (`w1`, `w2`, …)
//! minted from one shared counter — the same trick the model checker's
//! world uses — so the lineage checks can reconstruct, from the grant
//! details alone, which write produced which `⟨o, v⟩` and detect a
//! split brain as two different tokens claiming the same version.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dynvote_sim::SimRng;

use crate::client::{request_retry, ClientError, Outcome, RetryPolicy};
use crate::jitter::Jitter;
use crate::wire::{Frame, UnavailableReason};

/// How one operation resolved. Every issued operation gets exactly one
/// of these — the "no client hangs" guarantee made checkable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// The cluster granted it.
    Granted,
    /// The paper's ABORT (read/write refused by the quorum logic).
    Refused,
    /// A typed prompt "cannot serve this now" answer.
    Unavailable(UnavailableReason),
    /// No daemon answered before the per-op deadline.
    TimedOut,
    /// The daemon answered garbage — always a bug, never weather.
    Protocol(String),
}

/// One completed client operation.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Offset from workload start when the op was issued.
    pub at: Duration,
    /// The site it was sent to.
    pub site: usize,
    /// `true` for writes, `false` for reads.
    pub is_write: bool,
    /// The write's token number (`w{token}`), if a write.
    pub token: Option<u64>,
    /// For granted writes: the committed `⟨o, v⟩` parsed from the grant
    /// detail; for granted reads: `(0, version)` plus the value.
    pub commit: Option<(u64, u64)>,
    /// For granted reads: the value served.
    pub read_value: Option<String>,
    /// How it resolved.
    pub result: OpResult,
    /// Wall-clock time from issue to resolution.
    pub latency: Duration,
}

/// Workload shape.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// How many client threads run concurrently.
    pub clients: usize,
    /// Hard per-operation deadline (retries included).
    pub op_deadline: Duration,
    /// Probability an operation is a write.
    pub write_ratio: f64,
    /// Think time between operations, mean (exponential).
    pub think_mean: Duration,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            clients: 4,
            op_deadline: Duration::from_secs(3),
            write_ratio: 0.5,
            think_mean: Duration::from_millis(120),
        }
    }
}

/// Parses `o` and `v` out of a write grant detail
/// (`committed o=2 v=7 P={0,1,2}`) or a recover detail.
#[must_use]
pub fn parse_commit(detail: &str) -> Option<(u64, u64)> {
    let mut o = None;
    let mut v = None;
    for word in detail.split_whitespace() {
        if let Some(raw) = word.strip_prefix("o=") {
            o = raw.parse().ok();
        } else if let Some(raw) = word.strip_prefix("v=") {
            v = raw.parse().ok();
        }
    }
    Some((o?, v?))
}

/// A running workload: join to collect the records.
pub struct Workload {
    handles: Vec<std::thread::JoinHandle<Vec<OpRecord>>>,
    stop: Arc<AtomicBool>,
}

impl Workload {
    /// Starts `config.clients` threads against `addrs` (index = site).
    /// Each thread draws from its own [`SimRng`] substream of `seed`,
    /// so the op mix is reproducible even though timing is not.
    #[must_use]
    pub fn start(addrs: Vec<String>, config: WorkloadConfig, seed: u64) -> Workload {
        let stop = Arc::new(AtomicBool::new(false));
        let tokens = Arc::new(AtomicU64::new(0));
        let started = Instant::now();
        let handles = (0..config.clients)
            .map(|client| {
                let addrs = addrs.clone();
                let stop = Arc::clone(&stop);
                let tokens = Arc::clone(&tokens);
                std::thread::spawn(move || {
                    client_loop(client, &addrs, config, seed, started, &stop, &tokens)
                })
            })
            .collect();
        Workload { handles, stop }
    }

    /// Signals the threads to finish their in-flight op and collects
    /// every record.
    #[must_use]
    pub fn finish(self) -> Vec<OpRecord> {
        self.stop.store(true, Ordering::SeqCst);
        let mut records = Vec::new();
        for handle in self.handles {
            records.extend(handle.join().expect("workload thread panicked"));
        }
        records.sort_by_key(|r| r.at);
        records
    }
}

fn client_loop(
    client: usize,
    addrs: &[String],
    config: WorkloadConfig,
    seed: u64,
    started: Instant,
    stop: &AtomicBool,
    tokens: &AtomicU64,
) -> Vec<OpRecord> {
    let mut rng = SimRng::substream(seed, 0xC11E + client as u64);
    let mut jitter = Jitter::new(seed ^ (client as u64).wrapping_mul(0x9E37_79B9));
    let policy = RetryPolicy::default();
    let mut records = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let site = rng.below(addrs.len());
        let is_write = rng.bernoulli(config.write_ratio);
        let token = if is_write {
            Some(tokens.fetch_add(1, Ordering::SeqCst) + 1)
        } else {
            None
        };
        let frame = match token {
            Some(n) => Frame::Put {
                value: format!("w{n}").into_bytes(),
            },
            None => Frame::Get,
        };
        let at = started.elapsed();
        let issued = Instant::now();
        let answer = request_retry(
            &addrs[site],
            &frame,
            config.op_deadline,
            policy,
            &mut jitter,
        );
        let latency = issued.elapsed();
        let mut commit = None;
        let mut read_value = None;
        let result = match answer {
            Ok(Outcome::Done(detail)) => {
                commit = parse_commit(&detail);
                OpResult::Granted
            }
            Ok(Outcome::Value { version, value }) => {
                commit = Some((0, version));
                read_value = Some(String::from_utf8_lossy(&value).into_owned());
                OpResult::Granted
            }
            Ok(Outcome::Refused(_)) => OpResult::Refused,
            Ok(Outcome::Unavailable { reason, .. }) => OpResult::Unavailable(reason),
            Ok(Outcome::Report(_)) => OpResult::Protocol("report to a data op".to_string()),
            Ok(Outcome::ShardMap(_)) => OpResult::Protocol("shard map to a data op".to_string()),
            Ok(Outcome::Stale { epoch }) => {
                OpResult::Protocol(format!("stale-map (epoch {epoch}) to an unsharded op"))
            }
            Err(ClientError::Timeout { .. }) => OpResult::TimedOut,
            // request_retry only surfaces Timeout or Protocol; spell it
            // out rather than swallow a future variant.
            Err(ClientError::Unreachable { detail }) => OpResult::Protocol(format!(
                "request_retry leaked Unreachable ({detail}) — retry loop broken"
            )),
            Err(ClientError::Protocol { detail }) => OpResult::Protocol(detail),
        };
        records.push(OpRecord {
            at,
            site,
            is_write,
            token,
            commit,
            read_value,
            result,
            latency,
        });
        let think =
            Duration::from_secs_f64(rng.exponential(config.think_mean.as_secs_f64()).min(1.0));
        // Sleep in short slices so a stop request is honoured promptly.
        let until = Instant::now() + think;
        while Instant::now() < until && !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_commit_details() {
        assert_eq!(parse_commit("committed o=2 v=7 P={0,1,2}"), Some((2, 7)));
        assert_eq!(parse_commit("recovered: o=12 v=40 P={1}"), Some((12, 40)));
        assert_eq!(parse_commit("linked"), None);
    }

    #[test]
    fn workload_against_nothing_still_terminates_with_all_ops_resolved() {
        // No daemon listening anywhere: every op must resolve as
        // TimedOut within its deadline — the no-hang guarantee.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let config = WorkloadConfig {
            clients: 2,
            op_deadline: Duration::from_millis(200),
            write_ratio: 0.5,
            think_mean: Duration::from_millis(10),
        };
        let workload = Workload::start(vec![addr], config, 7);
        std::thread::sleep(Duration::from_millis(600));
        let records = workload.finish();
        assert!(!records.is_empty(), "workload issued no ops");
        for record in &records {
            assert_eq!(record.result, OpResult::TimedOut, "{record:?}");
            assert!(
                record.latency < Duration::from_secs(2),
                "op overran its deadline: {record:?}"
            );
        }
    }
}
