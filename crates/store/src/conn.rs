//! The pipelined library client: one persistent connection per daemon,
//! N outstanding requests matched back by correlation id.
//!
//! [`crate::client`] pays resolve + connect + one round trip per
//! request — fine for `dynvote-ctl`'s one-shot commands, hopeless for
//! a load driver. A [`Connection`] instead:
//!
//! * keeps a single TCP stream open and sends every data request
//!   wrapped in a [`Frame::Tagged`] envelope with a fresh id;
//! * runs one background *demux* thread that reads tagged replies and
//!   routes each to the waiter registered under its id — replies may
//!   arrive in any order (the daemon completes batched data operations
//!   asynchronously from admin answers);
//! * reconnects on error with the same jittered capped-exponential
//!   backoff the peer links use ([`crate::jitter::Jitter`]), failing
//!   the requests that were in flight on the dead stream (their ids
//!   die with it — the daemon may or may not have served them, which
//!   is the usual at-most-once/at-least-once line the one-shot client
//!   draws too);
//! * charges every wait against an *absolute* [`Deadline`], so time
//!   spent parked behind other in-flight replies counts — the deadline
//!   attribution rule `client.rs` documents.
//!
//! Writes are buffered: [`Connection::submit`] queues bytes and
//! returns; [`Connection::flush`] (called implicitly by
//! [`Connection::wait`]) pushes the whole burst in one syscall. That,
//! plus pipelining itself, is where the throughput comes from — on a
//! loopback the alternative is one connect + four syscalls per request.
//!
//! [`ConnectionPool`] hands out one shared [`Connection`] per address.

use std::collections::HashMap;
use std::io::{BufReader, Write as _};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::client::{decode_outcome, ClientError, Deadline, Outcome};
use crate::jitter::Jitter;
use crate::wire::{read_frame, Frame};

/// Tuning for one [`Connection`]: connect budget and reconnect backoff.
#[derive(Clone, Copy, Debug)]
pub struct ConnOptions {
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// First reconnect backoff window.
    pub backoff_floor: Duration,
    /// Ceiling the backoff window doubles toward.
    pub backoff_cap: Duration,
}

impl Default for ConnOptions {
    fn default() -> Self {
        ConnOptions {
            connect_timeout: Duration::from_millis(500),
            backoff_floor: Duration::from_millis(25),
            backoff_cap: Duration::from_millis(400),
        }
    }
}

/// A waiter parked under a correlation id. The generation names the
/// stream the request went out on: when that stream dies, exactly its
/// waiters are failed — requests pipelined onto the replacement stream
/// keep waiting.
struct Slot {
    generation: u64,
    reply: SyncSender<Frame>,
}

/// The live stream, if any.
struct Wire {
    /// Buffered writer (its handle of the stream).
    writer: std::io::BufWriter<TcpStream>,
    /// A raw handle for `Drop` to shut the socket down with.
    raw: TcpStream,
    /// Which reader-thread generation owns this stream.
    generation: u64,
}

struct LiveState {
    wire: Option<Wire>,
    /// Monotonic stream counter; each (re)connect bumps it.
    generations: u64,
    /// Reconnect pacing.
    jitter: Jitter,
    window: Duration,
    /// Do not redial before this instant.
    retry_at: Option<Instant>,
}

struct Inner {
    addr: String,
    opts: ConnOptions,
    next_id: AtomicU64,
    slots: Mutex<HashMap<u64, Slot>>,
    live: Mutex<LiveState>,
}

/// A persistent, pipelined connection to one daemon.
pub struct Connection {
    inner: Arc<Inner>,
}

/// A submitted request: hold it, then [`Connection::wait`] on it.
#[derive(Debug)]
pub struct Pending {
    id: u64,
    reply: Receiver<Frame>,
}

impl Pending {
    /// The correlation id this request went out under.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Connection {
    /// A connection handle for `addr`. Dialing is lazy: the first
    /// [`submit`](Connection::submit) connects.
    #[must_use]
    pub fn new(addr: &str, opts: ConnOptions) -> Connection {
        Connection {
            inner: Arc::new(Inner {
                addr: addr.to_string(),
                opts,
                next_id: AtomicU64::new(1),
                slots: Mutex::new(HashMap::new()),
                live: Mutex::new(LiveState {
                    wire: None,
                    generations: 0,
                    jitter: Jitter::from_entropy(&addr),
                    window: opts.backoff_floor.max(Duration::from_millis(1)),
                    retry_at: None,
                }),
            }),
        }
    }

    /// Sends `frame` tagged with a fresh correlation id, (re)connecting
    /// if needed, and returns the [`Pending`] to wait on. The bytes may
    /// sit in the write buffer until [`flush`](Connection::flush) or
    /// the next [`wait`](Connection::wait).
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the deadline expires before the
    /// request is written; [`ClientError::Unreachable`] never surfaces
    /// here directly — connect failures back off and retry until the
    /// deadline rules.
    pub fn submit(&self, frame: &Frame, deadline: &Deadline) -> Result<Pending, ClientError> {
        loop {
            let mut live = self.inner.live.lock().expect("connection state poisoned");
            if live.wire.is_none() {
                // Honor the backoff window before redialing.
                if let Some(at) = live.retry_at {
                    let hold = at.saturating_duration_since(Instant::now());
                    if !hold.is_zero() {
                        drop(live);
                        std::thread::sleep(hold.min(deadline.remaining()?));
                        continue;
                    }
                }
                match self.dial(&mut live, deadline) {
                    Ok(()) => {}
                    Err(()) => {
                        let window = live.window;
                        let wait = live.jitter.equal_jitter(window);
                        live.retry_at = Some(Instant::now() + wait);
                        live.window = (live.window * 2).min(self.inner.opts.backoff_cap);
                        continue; // next iteration sleeps out the window
                    }
                }
            }
            let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
            let generation = live
                .wire
                .as_ref()
                .map(|w| w.generation)
                .expect("dialed above");
            // Register the waiter BEFORE the bytes go out: the reply
            // can race back before this thread does anything else.
            let (tx, rx) = mpsc::sync_channel(1);
            self.inner
                .slots
                .lock()
                .expect("slot table poisoned")
                .insert(
                    id,
                    Slot {
                        generation,
                        reply: tx,
                    },
                );
            let bytes = frame.encode_tagged(id);
            let wire = live.wire.as_mut().expect("dialed above");
            if wire.writer.write_all(&bytes).is_err() {
                // Dead stream: retire it (failing its waiters, ours
                // included) and go around — the loop redials under the
                // same deadline.
                let generation = wire.generation;
                self.retire(&mut live, generation);
                continue;
            }
            return Ok(Pending { id, reply: rx });
        }
    }

    /// Pushes buffered request bytes to the socket.
    ///
    /// # Errors
    ///
    /// [`ClientError::Unreachable`] when the stream died; in-flight
    /// requests on it fail, and the next submit reconnects.
    pub fn flush(&self) -> Result<(), ClientError> {
        let mut live = self.inner.live.lock().expect("connection state poisoned");
        let Some(wire) = live.wire.as_mut() else {
            return Ok(());
        };
        if let Err(error) = wire.writer.flush() {
            let generation = wire.generation;
            self.retire(&mut live, generation);
            return Err(ClientError::Unreachable {
                detail: format!("flush failed: {error}"),
            });
        }
        Ok(())
    }

    /// Waits for `pending`'s reply, flushing first. The wait is charged
    /// against the absolute `deadline` — however long the demux thread
    /// spends delivering *other* requests' replies counts too.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] at the deadline (the id is forgotten: a
    /// late reply is dropped on the floor); [`ClientError::Unreachable`]
    /// when the stream died with the request outstanding;
    /// [`ClientError::Protocol`] on a non-response reply frame.
    pub fn wait(&self, pending: &Pending, deadline: &Deadline) -> Result<Outcome, ClientError> {
        let _ = self.flush();
        match pending.reply.recv_timeout(
            deadline
                .remaining()
                .map_err(|_| self.forget(pending.id, deadline))?,
        ) {
            Ok(frame) => decode_outcome(frame),
            Err(RecvTimeoutError::Timeout) => Err(self.forget(pending.id, deadline)),
            Err(RecvTimeoutError::Disconnected) => Err(ClientError::Unreachable {
                detail: "connection lost with the request in flight".to_string(),
            }),
        }
    }

    /// One full exchange: submit, flush, wait.
    ///
    /// # Errors
    ///
    /// As [`Connection::submit`] and [`Connection::wait`].
    pub fn call(&self, frame: &Frame, deadline: &Deadline) -> Result<Outcome, ClientError> {
        let pending = self.submit(frame, deadline)?;
        self.wait(&pending, deadline)
    }

    /// Drops a timed-out waiter's slot and returns the typed timeout.
    fn forget(&self, id: u64, deadline: &Deadline) -> ClientError {
        self.inner
            .slots
            .lock()
            .expect("slot table poisoned")
            .remove(&id);
        deadline.timeout()
    }

    /// Dials the daemon once and installs the stream + demux thread.
    fn dial(&self, live: &mut LiveState, deadline: &Deadline) -> Result<(), ()> {
        let budget = match deadline.remaining() {
            Ok(left) => left.min(self.inner.opts.connect_timeout),
            Err(_) => return Err(()),
        };
        let Some(target) = self
            .inner
            .addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut addrs| addrs.next())
        else {
            return Err(());
        };
        let Ok(stream) = TcpStream::connect_timeout(&target, budget) else {
            return Err(());
        };
        let _ = stream.set_nodelay(true);
        let (Ok(raw), Ok(read_half)) = (stream.try_clone(), stream.try_clone()) else {
            return Err(());
        };
        live.generations += 1;
        let generation = live.generations;
        live.wire = Some(Wire {
            writer: std::io::BufWriter::with_capacity(64 * 1024, stream),
            raw,
            generation,
        });
        live.window = self.inner.opts.backoff_floor.max(Duration::from_millis(1));
        live.retry_at = None;
        let inner = Arc::clone(&self.inner);
        let _ = std::thread::Builder::new()
            .name("dynvote-conn-demux".to_string())
            .spawn(move || demux_loop(&inner, read_half, generation));
        Ok(())
    }

    /// Retires a dead stream: drops it and fails exactly the waiters
    /// whose requests went out on it (dropping a slot's sender wakes
    /// its receiver with `Disconnected`).
    fn retire(&self, live: &mut LiveState, generation: u64) {
        if live
            .wire
            .as_ref()
            .is_some_and(|w| w.generation == generation)
        {
            live.wire = None;
        }
        self.inner
            .slots
            .lock()
            .expect("slot table poisoned")
            .retain(|_, slot| slot.generation != generation);
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        // Shut the socket down so the demux thread (which holds its own
        // Arc to the shared state) reads EOF and exits.
        let mut live = self.inner.live.lock().expect("connection state poisoned");
        if let Some(wire) = live.wire.take() {
            let _ = wire.raw.shutdown(Shutdown::Both);
        }
    }
}

/// The demux thread: reads tagged replies off one stream generation and
/// routes each to its registered waiter. On any read error it fails the
/// generation's outstanding waiters and retires the stream — the next
/// submit reconnects.
fn demux_loop(inner: &Arc<Inner>, stream: TcpStream, generation: u64) {
    let mut reader = BufReader::with_capacity(128 * 1024, stream);
    // Any read error — and any *untagged* frame, which on a pipelined
    // stream is protocol confusion — ends the generation.
    while let Ok(Frame::Tagged { id, inner: reply }) = read_frame(&mut reader) {
        let slot = inner.slots.lock().expect("slot table poisoned").remove(&id);
        if let Some(slot) = slot {
            // A full reply channel cannot happen (capacity 1,
            // one reply per id); a dropped receiver just means
            // the waiter gave up — both are fine to ignore.
            let _ = slot.reply.send(*reply);
        }
    }
    let mut live = inner.live.lock().expect("connection state poisoned");
    if live
        .wire
        .as_ref()
        .is_some_and(|w| w.generation == generation)
    {
        live.wire = None;
    }
    drop(live);
    inner
        .slots
        .lock()
        .expect("slot table poisoned")
        .retain(|_, slot| slot.generation != generation);
}

/// One shared [`Connection`] per address.
pub struct ConnectionPool {
    opts: ConnOptions,
    conns: Mutex<HashMap<String, Arc<Connection>>>,
}

impl ConnectionPool {
    /// An empty pool with the given per-connection options.
    #[must_use]
    pub fn new(opts: ConnOptions) -> ConnectionPool {
        ConnectionPool {
            opts,
            conns: Mutex::new(HashMap::new()),
        }
    }

    /// The pooled connection for `addr`, created on first use.
    #[must_use]
    pub fn get(&self, addr: &str) -> Arc<Connection> {
        let mut conns = self.conns.lock().expect("pool poisoned");
        Arc::clone(
            conns
                .entry(addr.to_string())
                .or_insert_with(|| Arc::new(Connection::new(addr, self.opts))),
        )
    }
}

impl Default for ConnectionPool {
    fn default() -> Self {
        ConnectionPool::new(ConnOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::write_frame;
    use std::io::Read as _;
    use std::net::TcpListener;

    /// A hand-rolled daemon stand-in that reads tagged frames and
    /// replies according to `answer` — out of order, selectively, or
    /// not at all.
    fn scripted_server<F>(answer: F) -> String
    where
        F: Fn(u64, Frame) -> Vec<(u64, Frame)> + Send + 'static,
    {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            loop {
                let Ok(Frame::Tagged { id, inner }) = read_frame(&mut stream) else {
                    return;
                };
                for (reply_id, reply) in answer(id, *inner) {
                    let tagged = Frame::Tagged {
                        id: reply_id,
                        inner: Box::new(reply),
                    };
                    if write_frame(&mut stream, &tagged).is_err() {
                        return;
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn replies_match_requests_regardless_of_order() {
        // Hold every odd id until the next even id arrives, then answer
        // the even one FIRST — sustained out-of-order completion.
        let held: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let addr = scripted_server(move |id, _| {
            if id % 2 == 1 {
                held.lock().unwrap().push(id);
                Vec::new()
            } else {
                let mut out = vec![(
                    id,
                    Frame::Done {
                        detail: format!("id-{id}"),
                    },
                )];
                for odd in held.lock().unwrap().drain(..) {
                    out.push((
                        odd,
                        Frame::Done {
                            detail: format!("id-{odd}"),
                        },
                    ));
                }
                out
            }
        });
        let conn = Connection::new(&addr, ConnOptions::default());
        let deadline = Deadline::within(Duration::from_secs(5));
        let pendings: Vec<Pending> = (0..6)
            .map(|_| conn.submit(&Frame::Get, &deadline).unwrap())
            .collect();
        for pending in &pendings {
            let outcome = conn.wait(pending, &deadline).unwrap();
            assert_eq!(
                outcome,
                Outcome::Done(format!("id-{}", pending.id())),
                "reply routed to the wrong correlation id"
            );
        }
    }

    #[test]
    fn pipelined_wait_charges_the_absolute_deadline() {
        // The server answers every id but 1 — traffic keeps flowing
        // through the demux thread the whole time the caller waits, and
        // none of it may extend id 1's deadline.
        let addr = scripted_server(|id, _| {
            if id == 1 {
                Vec::new()
            } else {
                vec![(
                    id,
                    Frame::Done {
                        detail: "ok".into(),
                    },
                )]
            }
        });
        let conn = Connection::new(&addr, ConnOptions::default());
        let starved_deadline = Deadline::within(Duration::from_millis(400));
        let starved = conn.submit(&Frame::Get, &starved_deadline).unwrap();
        assert_eq!(starved.id(), 1);
        // Background chatter: keep replies arriving during the wait.
        let chatter_deadline = Deadline::within(Duration::from_secs(5));
        let chatter: Vec<Pending> = (0..4)
            .map(|_| conn.submit(&Frame::Get, &chatter_deadline).unwrap())
            .collect();
        for pending in &chatter {
            conn.wait(pending, &chatter_deadline).unwrap();
        }
        let started = Instant::now();
        let result = conn.wait(&starved, &starved_deadline);
        assert!(
            matches!(result, Err(ClientError::Timeout { .. })),
            "expected Timeout, got {result:?}"
        );
        assert!(
            started.elapsed() < Duration::from_millis(1500),
            "pipelined wait overran its absolute deadline"
        );
    }

    #[test]
    fn dead_stream_fails_in_flight_requests_then_reconnects() {
        // First connection: accept and slam the door with the request
        // in flight. Second connection: serve normally.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                // Read one frame's worth of bytes, then reset.
                let mut first = stream;
                let mut buf = [0u8; 64];
                let _ = first.read(&mut buf);
                drop(first);
            }
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            while let Ok(Frame::Tagged { id, .. }) = read_frame(&mut stream) {
                let tagged = Frame::Tagged {
                    id,
                    inner: Box::new(Frame::Done {
                        detail: "recovered".into(),
                    }),
                };
                if write_frame(&mut stream, &tagged).is_err() {
                    return;
                }
            }
        });
        let conn = Connection::new(&addr, ConnOptions::default());
        let deadline = Deadline::within(Duration::from_secs(5));
        let doomed = conn.submit(&Frame::Get, &deadline).unwrap();
        let result = conn.wait(&doomed, &deadline);
        assert!(
            matches!(result, Err(ClientError::Unreachable { .. })),
            "a request on a dead stream must fail typed, got {result:?}"
        );
        // The connection heals itself on the next call.
        let outcome = conn.call(&Frame::Get, &deadline).unwrap();
        assert_eq!(outcome, Outcome::Done("recovered".into()));
    }
}
