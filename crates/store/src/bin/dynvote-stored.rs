//! The node daemon: hosts one site of a live voting cluster.
//!
//! ```text
//! dynvote-stored --site 0 --policy odv \
//!     --peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102
//! ```
//!
//! Runs until killed. See `dynvote_store::config` for every flag.

use std::time::Duration;

use dynvote_store::config::Config;

fn main() {
    let config = match Config::parse_args(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("dynvote-stored: {message}");
            eprintln!(
                "usage: dynvote-stored --site N --policy P --peers 0=addr,1=addr,… \
                 [--witnesses i,j] [--segments name=i,j;…] [--bridges gw=name;…] \
                 [--value bytes] [--log file] [--data-dir dir] [--snapshot-every N] \
                 [--boot-recover-ms N] [--bind-retry-ms N] [--connect-timeout-ms N] \
                 [--read-timeout-ms N] [--backoff-ms N] [--backoff-cap-ms N]"
            );
            std::process::exit(2);
        }
    };
    let service = match dynvote_store::server::start(config) {
        Ok(service) => service,
        Err(error) => {
            eprintln!("dynvote-stored: failed to start: {error}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", service.addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
