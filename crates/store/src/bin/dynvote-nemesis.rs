//! The live nemesis driver.
//!
//! ```text
//! dynvote-nemesis campaign --seed 42 --duration 60s --topology figure8
//! dynvote-nemesis campaign --seed 7 --sites 5 --policy tdv --out BENCH_faults.json
//! dynvote-nemesis schedule --seed 42 --duration 60s --topology figure8
//! ```
//!
//! `campaign` boots a real `dynvote-stored` fleet on loopback, runs the
//! seeded fault schedule against it under a concurrent client workload
//! and an online invariant monitor, then converges and reports. Same
//! seed, same schedule — `schedule` prints it without touching a
//! process, so reproducibility is `diff`-checkable.
//!
//! Exit codes: 0 campaign passed, 1 invariant violations (artifacts
//! kept on disk, path printed), 2 usage or harness error.

use std::path::PathBuf;
use std::time::Duration;

use dynvote_store::campaign::{self, CampaignConfig, Topology};

fn fail(message: &str) -> ! {
    eprintln!("dynvote-nemesis: {message}");
    eprintln!(
        "usage: dynvote-nemesis campaign [--seed N] [--duration 60s] \
         [--topology flat|figure8] [--sites N] [--policy NAME] [--clients N] \
         [--op-deadline-ms N] [--out FILE.json] [--data-root DIR] [--keep-data] \
         [--stored BIN] [--quiet]\n       \
         dynvote-nemesis schedule [--seed N] [--duration 60s] \
         [--topology flat|figure8] [--sites N]\n       \
         exit codes: 0 pass, 1 invariant violations, 2 usage/harness error"
    );
    std::process::exit(2);
}

/// Parses `60`, `60s`, or `1500ms`.
fn parse_duration(raw: &str) -> Result<Duration, String> {
    let (digits, unit) = match raw {
        _ if raw.ends_with("ms") => (&raw[..raw.len() - 2], 1u64),
        _ if raw.ends_with('s') => (&raw[..raw.len() - 1], 1000),
        _ => (raw, 1000),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration {raw:?} (want e.g. 60s or 1500ms)"))?;
    Ok(Duration::from_millis(n * unit))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| fail("missing command"));
    let mut config = CampaignConfig::default();
    let mut sites_given = false;
    while let Some(arg) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| fail(&format!("{arg} requires a value")))
        };
        match arg.as_str() {
            "--seed" => {
                config.seed = value().parse().unwrap_or_else(|_| fail("bad --seed"));
            }
            "--duration" => {
                config.duration = parse_duration(&value()).unwrap_or_else(|e| fail(&e));
            }
            "--topology" => {
                config.topology = match value().as_str() {
                    "flat" => Topology::Flat,
                    "figure8" => Topology::Figure8,
                    other => fail(&format!("unknown topology {other:?} (flat|figure8)")),
                };
            }
            "--sites" => {
                config.sites = value().parse().unwrap_or_else(|_| fail("bad --sites"));
                sites_given = true;
            }
            "--policy" => config.policy = value(),
            "--clients" => {
                config.clients = value().parse().unwrap_or_else(|_| fail("bad --clients"));
            }
            "--op-deadline-ms" => {
                config.op_deadline = Duration::from_millis(
                    value()
                        .parse()
                        .unwrap_or_else(|_| fail("bad --op-deadline-ms")),
                );
            }
            "--out" => config.out = Some(PathBuf::from(value())),
            "--data-root" => config.data_root = Some(PathBuf::from(value())),
            "--keep-data" => config.keep_data = true,
            "--stored" => config.stored_bin = Some(PathBuf::from(value())),
            "--quiet" => config.quiet = true,
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if config.topology == Topology::Figure8 && !sites_given {
        config.sites = 8;
    }
    if config.sites < 3 {
        fail("--sites must be at least 3 (a majority needs somebody to outvote)");
    }
    match command.as_str() {
        "schedule" => {
            let network = config
                .topology
                .network(config.sites)
                .unwrap_or_else(|e| fail(&e));
            let partitions = network.segment_partitions().len();
            let schedule = campaign::schedule::generate(
                config.seed,
                config.sites,
                partitions,
                config.duration,
            );
            print!("{}", schedule.render());
        }
        "campaign" => match campaign::run(&config) {
            Ok(outcome) => {
                print!("{}", outcome.report_json);
                if outcome.violations.is_empty() {
                    eprintln!(
                        "dynvote-nemesis: PASS — {} ops, 0 violations (seed {})",
                        outcome.ops, config.seed
                    );
                } else {
                    eprintln!(
                        "dynvote-nemesis: FAIL — {} violations (seed {}):",
                        outcome.violations.len(),
                        config.seed
                    );
                    for violation in &outcome.violations {
                        eprintln!("  * {violation}");
                    }
                    if let Some(artifacts) = &outcome.artifacts {
                        eprintln!(
                            "dynvote-nemesis: logs, data dirs, and dossier kept at {}",
                            artifacts.display()
                        );
                    }
                    std::process::exit(1);
                }
            }
            Err(error) => fail(&error),
        },
        other => fail(&format!("unknown command {other:?}")),
    }
}
