//! The control client for a live `dynvote-stored` cluster.
//!
//! ```text
//! dynvote-ctl --node 127.0.0.1:7100 put "new contents"
//! dynvote-ctl --node 127.0.0.1:7100 put bench --repeat 500 --pipeline 16
//! dynvote-ctl --node 127.0.0.1:7100 get
//! dynvote-ctl --node 127.0.0.1:7100 recover
//! dynvote-ctl --node 127.0.0.1:7100 status
//! dynvote-ctl --node 127.0.0.1:7100 deny 2 | allow 2 | heal-links
//! dynvote-ctl --nodes 0=127.0.0.1:7100,1=127.0.0.1:7101 replay fork.trace
//! ```
//!
//! `--repeat N` (put/get only) issues the operation N times over ONE
//! persistent, pipelined connection with up to `--pipeline D` (default
//! 16) requests outstanding — what a script loop of one-shot
//! invocations would measure is process spawn + connect, not the
//! store. Prints a one-line req/s summary.
//!
//! Exit codes: 0 granted, 1 refused or unavailable (the paper's
//! ABORT / a typed no-quorum answer), 2 usage or connection error,
//! 3 client-side deadline expired (the daemon never answered inside
//! `--timeout-ms` — it may be down or wedged, but this client did not
//! hang on it).
//!
//! Every operation honours `--timeout-ms` (default 5000) as a *hard*
//! deadline over the whole exchange: connect, send, and read.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use dynvote_check::TraceFile;
use dynvote_store::client::{request_deadline, ClientError, Deadline, Outcome};
use dynvote_store::conn::{ConnOptions, Connection};
use dynvote_store::replay;
use dynvote_store::wire::Frame;
use dynvote_types::SiteId;

fn fail(message: &str) -> ! {
    eprintln!("dynvote-ctl: {message}");
    eprintln!(
        "usage: dynvote-ctl --node ADDR (put VALUE | get | recover | status | \
         deny SITE | allow SITE | heal-links) [--timeout-ms N] \
         [--repeat N [--pipeline D]]\n       \
         dynvote-ctl --nodes 0=ADDR,1=ADDR,… replay FILE.trace [--timeout-ms N] \
         [--crash-cmd CMD]\n       \
         (--crash-cmd maps crash/repair events to `sh -c \"CMD crash S\"` / \
         `sh -c \"CMD restart S\"` — real kill -9 + restart-from-disk \
         instead of link isolation)\n       \
         exit codes: 0 granted, 1 refused/unavailable, 2 usage or \
         connection error, 3 deadline expired"
    );
    std::process::exit(2);
}

fn parse_site(value: &str) -> SiteId {
    value
        .parse::<usize>()
        .ok()
        .and_then(SiteId::try_new)
        .unwrap_or_else(|| fail(&format!("bad site index {value:?}")))
}

fn report(outcome: &Outcome) -> ! {
    match outcome {
        Outcome::Done(detail) => {
            println!("ok: {detail}");
            std::process::exit(0);
        }
        Outcome::Value { version, value } => {
            println!("{}", String::from_utf8_lossy(value));
            eprintln!("version={version}");
            std::process::exit(0);
        }
        Outcome::Report(text) => {
            print!("{text}");
            std::process::exit(0);
        }
        Outcome::Refused(message) => {
            eprintln!("refused: {message}");
            std::process::exit(1);
        }
        Outcome::Unavailable { reason, message } => {
            eprintln!("unavailable ({reason}): {message}");
            std::process::exit(1);
        }
    }
}

/// `--repeat` batch mode: `count` copies of `frame` over one
/// persistent connection, `depth` outstanding, then a req/s summary.
/// Never returns — exits with the usual codes (a single refusal or
/// error fails the whole batch).
fn run_repeated(node: &str, frame: &Frame, count: u64, depth: usize, timeout: Duration) -> ! {
    let conn = Connection::new(node, ConnOptions::default());
    let started = Instant::now();
    let mut inflight = VecDeque::with_capacity(depth);
    let reap = |inflight: &mut VecDeque<dynvote_store::conn::Pending>| {
        let Some(oldest) = inflight.pop_front() else {
            return;
        };
        match conn.wait(&oldest, &Deadline::within(timeout)) {
            Ok(outcome) if outcome.granted() => {}
            Ok(Outcome::Refused(message)) => {
                eprintln!("refused: {message}");
                std::process::exit(1);
            }
            Ok(Outcome::Unavailable { reason, message }) => {
                eprintln!("unavailable ({reason}): {message}");
                std::process::exit(1);
            }
            Ok(_) => unreachable!("granted() covered above"),
            Err(error @ ClientError::Timeout { .. }) => {
                eprintln!("dynvote-ctl: {node}: {error}");
                std::process::exit(3);
            }
            Err(error) => {
                eprintln!("dynvote-ctl: {node}: {error}");
                std::process::exit(2);
            }
        }
    };
    for _ in 0..count {
        match conn.submit(frame, &Deadline::within(timeout)) {
            Ok(pending) => inflight.push_back(pending),
            Err(error) => {
                eprintln!("dynvote-ctl: {node}: {error}");
                std::process::exit(2);
            }
        }
        if inflight.len() >= depth {
            reap(&mut inflight);
        }
    }
    while !inflight.is_empty() {
        reap(&mut inflight);
    }
    let secs = started.elapsed().as_secs_f64();
    println!(
        "ok: {count} ops in {secs:.3}s ({:.0} req/s, pipeline {depth})",
        count as f64 / secs
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut node = None;
    let mut nodes: Vec<(usize, String)> = Vec::new();
    let mut timeout = Duration::from_secs(5);
    let mut crash_cmd: Option<String> = None;
    let mut repeat = 1u64;
    let mut pipeline = 16usize;
    let mut rest = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--node" => {
                node = Some(
                    iter.next()
                        .unwrap_or_else(|| fail("--node requires a value")),
                );
            }
            "--nodes" => {
                let list = iter
                    .next()
                    .unwrap_or_else(|| fail("--nodes requires a value"));
                for entry in list.split(',') {
                    let Some((site, addr)) = entry.split_once('=') else {
                        fail(&format!("--nodes: expected site=addr, got {entry:?}"));
                    };
                    nodes.push((parse_site(site.trim()).index(), addr.trim().to_string()));
                }
            }
            "--timeout-ms" => {
                let ms = iter
                    .next()
                    .unwrap_or_else(|| fail("--timeout-ms requires a value"));
                timeout = Duration::from_millis(
                    ms.parse()
                        .unwrap_or_else(|_| fail("bad --timeout-ms value")),
                );
            }
            "--crash-cmd" => {
                crash_cmd = Some(
                    iter.next()
                        .unwrap_or_else(|| fail("--crash-cmd requires a value")),
                );
            }
            "--repeat" => {
                let n = iter
                    .next()
                    .unwrap_or_else(|| fail("--repeat requires a value"));
                repeat = n.parse().unwrap_or_else(|_| fail("bad --repeat value"));
                if repeat == 0 {
                    fail("--repeat must be at least 1");
                }
            }
            "--pipeline" => {
                let d = iter
                    .next()
                    .unwrap_or_else(|| fail("--pipeline requires a value"));
                pipeline = d.parse().unwrap_or_else(|_| fail("bad --pipeline value"));
                if pipeline == 0 {
                    fail("--pipeline must be at least 1");
                }
            }
            _ => rest.push(arg),
        }
    }
    let mut rest = rest.into_iter();
    let command = rest.next().unwrap_or_else(|| fail("missing command"));
    if command == "replay" {
        let path = rest
            .next()
            .unwrap_or_else(|| fail("replay needs a trace file"));
        if nodes.is_empty() {
            fail("replay needs --nodes 0=addr,1=addr,…");
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let trace =
            TraceFile::parse(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
        println!(
            "# replaying {path}: {} sites, {} events",
            trace.scenario.sites,
            trace.events.len()
        );
        let options = replay::ReplayOptions { crash_cmd };
        let steps = replay::run_with(&trace, &nodes, timeout, &options)
            .unwrap_or_else(|e| fail(&format!("replay failed: {e}")));
        for (index, step) in steps.iter().enumerate() {
            println!("{:>3}. {:<14} -> {}", index + 1, step.event, step.outcome);
        }
        std::process::exit(0);
    }
    let node = node.unwrap_or_else(|| fail("--node is required"));
    let frame = match command.as_str() {
        "put" => Frame::Put {
            value: rest
                .next()
                .unwrap_or_else(|| fail("put needs a value"))
                .into_bytes(),
        },
        "get" => Frame::Get,
        "recover" => Frame::Recover,
        "status" => Frame::Status,
        "deny" => Frame::Deny {
            site: parse_site(&rest.next().unwrap_or_else(|| fail("deny needs a site"))),
        },
        "allow" => Frame::Allow {
            site: parse_site(&rest.next().unwrap_or_else(|| fail("allow needs a site"))),
        },
        "heal-links" => Frame::HealLinks,
        other => fail(&format!("unknown command {other:?}")),
    };
    if repeat > 1 {
        if !matches!(frame, Frame::Put { .. } | Frame::Get) {
            fail("--repeat applies to put and get only");
        }
        run_repeated(&node, &frame, repeat, pipeline, timeout);
    }
    match request_deadline(&node, &frame, timeout) {
        Ok(outcome) => report(&outcome),
        Err(error @ ClientError::Timeout { .. }) => {
            eprintln!("dynvote-ctl: {node}: {error}");
            std::process::exit(3);
        }
        Err(error) => {
            eprintln!("dynvote-ctl: {node}: {error}");
            std::process::exit(2);
        }
    }
}
