//! The control client for a live `dynvote-stored` cluster.
//!
//! ```text
//! dynvote-ctl --node 127.0.0.1:7100 put "new contents"
//! dynvote-ctl --node 127.0.0.1:7100 put bench --repeat 500 --pipeline 16
//! dynvote-ctl --node 127.0.0.1:7100 get
//! dynvote-ctl --node 127.0.0.1:7100 recover
//! dynvote-ctl --node 127.0.0.1:7100 status
//! dynvote-ctl --node 127.0.0.1:7100 deny 2 | allow 2 | heal-links
//! dynvote-ctl --nodes 0=127.0.0.1:7100,1=127.0.0.1:7101 replay fork.trace
//! ```
//!
//! Against a *sharded* store (`dynvote-stored --shards N`):
//!
//! ```text
//! dynvote-ctl --node 127.0.0.1:7100 putk user:42 "contents"   # routed by key
//! dynvote-ctl --node 127.0.0.1:7100 getk user:42
//! dynvote-ctl --node 127.0.0.1:7100 shardmap                  # print the map
//! dynvote-ctl --node 127.0.0.1:7100 rebalance 1 --add 3       # grow shard 1
//! dynvote-ctl --node 127.0.0.1:7100 rebalance 1 --drop 0      # shrink shard 1
//! dynvote-ctl --node 127.0.0.1:7100 --shard 1 status          # one shard group
//! ```
//!
//! `putk`/`getk` fetch the shard map from `--node`, hash the key, and
//! talk to the owning shard's coordinator directly — retrying through
//! typed `StaleShardMap` answers, so they work across a concurrent
//! rebalance. `--shard K` wraps a plain command (put/get/recover/
//! status) in a shard envelope, addressing shard `K`'s group at
//! `--node` without routing.
//!
//! `--repeat N` (put/get only) issues the operation N times over ONE
//! persistent, pipelined connection with up to `--pipeline D` (default
//! 16) requests outstanding — what a script loop of one-shot
//! invocations would measure is process spawn + connect, not the
//! store. Prints a one-line req/s summary.
//!
//! Exit codes: 0 granted, 1 refused or unavailable (the paper's
//! ABORT / a typed no-quorum answer), 2 usage or connection error,
//! 3 client-side deadline expired (the daemon never answered inside
//! `--timeout-ms` — it may be down or wedged, but this client did not
//! hang on it).
//!
//! Every operation honours `--timeout-ms` (default 5000) as a *hard*
//! deadline over the whole exchange: connect, send, and read.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use dynvote_check::TraceFile;
use dynvote_store::client::{request_deadline, ClientError, Deadline, Outcome};
use dynvote_store::conn::{ConnOptions, Connection};
use dynvote_store::replay;
use dynvote_store::router::ShardRouter;
use dynvote_store::wire::Frame;
use dynvote_types::SiteId;

fn fail(message: &str) -> ! {
    eprintln!("dynvote-ctl: {message}");
    eprintln!(
        "usage: dynvote-ctl --node ADDR (put VALUE | get | recover | status | \
         deny SITE | allow SITE | heal-links) [--shard K] [--timeout-ms N] \
         [--repeat N [--pipeline D]]\n       \
         dynvote-ctl --node ADDR (putk KEY VALUE | getk KEY | shardmap | \
         rebalance SHARD [--add SITE] [--drop SITE]) [--timeout-ms N]\n       \
         dynvote-ctl --nodes 0=ADDR,1=ADDR,… replay FILE.trace [--timeout-ms N] \
         [--crash-cmd CMD]\n       \
         (--crash-cmd maps crash/repair events to `sh -c \"CMD crash S\"` / \
         `sh -c \"CMD restart S\"` — real kill -9 + restart-from-disk \
         instead of link isolation)\n       \
         exit codes: 0 granted, 1 refused/unavailable, 2 usage or \
         connection error, 3 deadline expired"
    );
    std::process::exit(2);
}

fn parse_site(value: &str) -> SiteId {
    value
        .parse::<usize>()
        .ok()
        .and_then(SiteId::try_new)
        .unwrap_or_else(|| fail(&format!("bad site index {value:?}")))
}

fn report(outcome: &Outcome) -> ! {
    match outcome {
        Outcome::Done(detail) => {
            println!("ok: {detail}");
            std::process::exit(0);
        }
        Outcome::Value { version, value } => {
            println!("{}", String::from_utf8_lossy(value));
            eprintln!("version={version}");
            std::process::exit(0);
        }
        Outcome::Report(text) => {
            print!("{text}");
            std::process::exit(0);
        }
        Outcome::Refused(message) => {
            eprintln!("refused: {message}");
            std::process::exit(1);
        }
        Outcome::Unavailable { reason, message } => {
            eprintln!("unavailable ({reason}): {message}");
            std::process::exit(1);
        }
        Outcome::ShardMap(bytes) => match dynvote_control::ShardMap::decode(bytes) {
            Ok(map) => {
                println!("epoch={}", map.epoch);
                println!("shards={}", map.shards.len());
                for (shard, spec) in map.shards.iter().enumerate() {
                    let placement: Vec<String> =
                        spec.placement.iter().map(usize::to_string).collect();
                    println!("shard.{shard}.placement={}", placement.join(","));
                }
                for (site, addr) in &map.sites {
                    println!("site.{site}.addr={addr}");
                }
                std::process::exit(0);
            }
            Err(error) => {
                eprintln!("dynvote-ctl: undecodable shard map: {error}");
                std::process::exit(2);
            }
        },
        Outcome::Stale { epoch } => {
            eprintln!("stale shard map: daemon is at epoch {epoch}");
            std::process::exit(1);
        }
    }
}

/// `--repeat` batch mode: `count` copies of `frame` over one
/// persistent connection, `depth` outstanding, then a req/s summary.
/// Never returns — exits with the usual codes (a single refusal or
/// error fails the whole batch).
fn run_repeated(node: &str, frame: &Frame, count: u64, depth: usize, timeout: Duration) -> ! {
    let conn = Connection::new(node, ConnOptions::default());
    let started = Instant::now();
    let mut inflight = VecDeque::with_capacity(depth);
    let reap = |inflight: &mut VecDeque<dynvote_store::conn::Pending>| {
        let Some(oldest) = inflight.pop_front() else {
            return;
        };
        match conn.wait(&oldest, &Deadline::within(timeout)) {
            Ok(outcome) if outcome.granted() => {}
            Ok(Outcome::Refused(message)) => {
                eprintln!("refused: {message}");
                std::process::exit(1);
            }
            Ok(Outcome::Unavailable { reason, message }) => {
                eprintln!("unavailable ({reason}): {message}");
                std::process::exit(1);
            }
            Ok(_) => unreachable!("granted() covered above"),
            Err(error @ ClientError::Timeout { .. }) => {
                eprintln!("dynvote-ctl: {node}: {error}");
                std::process::exit(3);
            }
            Err(error) => {
                eprintln!("dynvote-ctl: {node}: {error}");
                std::process::exit(2);
            }
        }
    };
    for _ in 0..count {
        match conn.submit(frame, &Deadline::within(timeout)) {
            Ok(pending) => inflight.push_back(pending),
            Err(error) => {
                eprintln!("dynvote-ctl: {node}: {error}");
                std::process::exit(2);
            }
        }
        if inflight.len() >= depth {
            reap(&mut inflight);
        }
    }
    while !inflight.is_empty() {
        reap(&mut inflight);
    }
    let secs = started.elapsed().as_secs_f64();
    println!(
        "ok: {count} ops in {secs:.3}s ({:.0} req/s, pipeline {depth})",
        count as f64 / secs
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut node = None;
    let mut nodes: Vec<(usize, String)> = Vec::new();
    let mut timeout = Duration::from_secs(5);
    let mut crash_cmd: Option<String> = None;
    let mut repeat = 1u64;
    let mut pipeline = 16usize;
    let mut shard: Option<u16> = None;
    let mut add_site: Option<usize> = None;
    let mut drop_site: Option<usize> = None;
    let mut rest = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--node" => {
                node = Some(
                    iter.next()
                        .unwrap_or_else(|| fail("--node requires a value")),
                );
            }
            "--nodes" => {
                let list = iter
                    .next()
                    .unwrap_or_else(|| fail("--nodes requires a value"));
                for entry in list.split(',') {
                    let Some((site, addr)) = entry.split_once('=') else {
                        fail(&format!("--nodes: expected site=addr, got {entry:?}"));
                    };
                    nodes.push((parse_site(site.trim()).index(), addr.trim().to_string()));
                }
            }
            "--timeout-ms" => {
                let ms = iter
                    .next()
                    .unwrap_or_else(|| fail("--timeout-ms requires a value"));
                timeout = Duration::from_millis(
                    ms.parse()
                        .unwrap_or_else(|_| fail("bad --timeout-ms value")),
                );
            }
            "--crash-cmd" => {
                crash_cmd = Some(
                    iter.next()
                        .unwrap_or_else(|| fail("--crash-cmd requires a value")),
                );
            }
            "--repeat" => {
                let n = iter
                    .next()
                    .unwrap_or_else(|| fail("--repeat requires a value"));
                repeat = n.parse().unwrap_or_else(|_| fail("bad --repeat value"));
                if repeat == 0 {
                    fail("--repeat must be at least 1");
                }
            }
            "--shard" => {
                let k = iter
                    .next()
                    .unwrap_or_else(|| fail("--shard requires a value"));
                shard = Some(k.parse().unwrap_or_else(|_| fail("bad --shard value")));
            }
            "--add" => {
                let s = iter.next().unwrap_or_else(|| fail("--add requires a site"));
                add_site = Some(parse_site(&s).index());
            }
            "--drop" => {
                let s = iter
                    .next()
                    .unwrap_or_else(|| fail("--drop requires a site"));
                drop_site = Some(parse_site(&s).index());
            }
            "--pipeline" => {
                let d = iter
                    .next()
                    .unwrap_or_else(|| fail("--pipeline requires a value"));
                pipeline = d.parse().unwrap_or_else(|_| fail("bad --pipeline value"));
                if pipeline == 0 {
                    fail("--pipeline must be at least 1");
                }
            }
            _ => rest.push(arg),
        }
    }
    let mut rest = rest.into_iter();
    let command = rest.next().unwrap_or_else(|| fail("missing command"));
    if command == "replay" {
        let path = rest
            .next()
            .unwrap_or_else(|| fail("replay needs a trace file"));
        if nodes.is_empty() {
            fail("replay needs --nodes 0=addr,1=addr,…");
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let trace =
            TraceFile::parse(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
        println!(
            "# replaying {path}: {} sites, {} events",
            trace.scenario.sites,
            trace.events.len()
        );
        let options = replay::ReplayOptions { crash_cmd };
        let steps = replay::run_with(&trace, &nodes, timeout, &options)
            .unwrap_or_else(|e| fail(&format!("replay failed: {e}")));
        for (index, step) in steps.iter().enumerate() {
            println!("{:>3}. {:<14} -> {}", index + 1, step.event, step.outcome);
        }
        std::process::exit(0);
    }
    let node = node.unwrap_or_else(|| fail("--node is required"));
    match command.as_str() {
        // Routed keyed operations: map fetch + key hash + coordinator
        // dispatch, with typed stale-map retry — live across a
        // concurrent rebalance.
        "putk" | "getk" => {
            let key = rest
                .next()
                .unwrap_or_else(|| fail(&format!("{command} needs a key")));
            let router = ShardRouter::new(vec![node.clone()], ConnOptions::default());
            let deadline = Deadline::within(timeout);
            let result = if command == "putk" {
                let value = rest.next().unwrap_or_else(|| fail("putk needs a value"));
                router.put(&key, value.as_bytes(), &deadline)
            } else {
                router.get(&key, &deadline)
            };
            match result {
                Ok(outcome) => report(&outcome),
                Err(error @ ClientError::Timeout { .. }) => {
                    eprintln!("dynvote-ctl: {node}: {error}");
                    std::process::exit(3);
                }
                Err(error) => {
                    eprintln!("dynvote-ctl: {node}: {error}");
                    std::process::exit(2);
                }
            }
        }
        "rebalance" => {
            let shard_arg = rest
                .next()
                .unwrap_or_else(|| fail("rebalance needs a shard index"));
            let target: u16 = shard_arg
                .parse()
                .unwrap_or_else(|_| fail(&format!("bad shard index {shard_arg:?}")));
            if add_site.is_none() && drop_site.is_none() {
                fail("rebalance needs --add SITE and/or --drop SITE");
            }
            match dynvote_store::router::rebalance(&node, target, add_site, drop_site, timeout) {
                Ok(steps) => {
                    for step in steps {
                        println!("ok: {step}");
                    }
                    std::process::exit(0);
                }
                Err(error) => {
                    eprintln!("dynvote-ctl: rebalance failed: {error}");
                    std::process::exit(1);
                }
            }
        }
        _ => {}
    }
    let frame = match command.as_str() {
        "put" => Frame::Put {
            value: rest
                .next()
                .unwrap_or_else(|| fail("put needs a value"))
                .into_bytes(),
        },
        "get" => Frame::Get,
        "recover" => Frame::Recover,
        "status" => Frame::Status,
        "deny" => Frame::Deny {
            site: parse_site(&rest.next().unwrap_or_else(|| fail("deny needs a site"))),
        },
        "allow" => Frame::Allow {
            site: parse_site(&rest.next().unwrap_or_else(|| fail("allow needs a site"))),
        },
        "heal-links" => Frame::HealLinks,
        "shardmap" => Frame::GetShardMap,
        other => fail(&format!("unknown command {other:?}")),
    };
    // `--shard K` addresses one shard group directly: wrap the plain
    // frame in a shard envelope (the daemon refuses nested envelopes,
    // so only plain commands qualify).
    let frame = match shard {
        Some(shard)
            if matches!(
                frame,
                Frame::Put { .. } | Frame::Get | Frame::Recover | Frame::Status
            ) =>
        {
            Frame::Shard {
                shard,
                inner: Box::new(frame),
            }
        }
        Some(_) => fail("--shard applies to put, get, recover, and status"),
        None => frame,
    };
    if repeat > 1 {
        let repeatable = match &frame {
            Frame::Put { .. } | Frame::Get => true,
            Frame::Shard { inner, .. } => matches!(**inner, Frame::Put { .. } | Frame::Get),
            _ => false,
        };
        if !repeatable {
            fail("--repeat applies to put and get only");
        }
        run_repeated(&node, &frame, repeat, pipeline, timeout);
    }
    match request_deadline(&node, &frame, timeout) {
        Ok(outcome) => report(&outcome),
        Err(error @ ClientError::Timeout { .. }) => {
            eprintln!("dynvote-ctl: {node}: {error}");
            std::process::exit(3);
        }
        Err(error) => {
            eprintln!("dynvote-ctl: {node}: {error}");
            std::process::exit(2);
        }
    }
}
