//! Wedge resolution: the durable vote-probe ledger.
//!
//! A participant that answers a `START` with `mark_pending` holds an
//! *outstanding vote* — it abstains from every other operation until
//! the coordinator's `COMMIT` or `RELEASE` arrives. Both of those are
//! delivered best-effort: a `RELEASE` is fire-and-forget, and a
//! `COMMIT` whose retries run out simply leaves the participant in the
//! coordinator's `missing` set. On the in-memory transport that is
//! harmless (the model's operations are atomic), but on a real network
//! a lost resolution frame wedges the participant *forever* — live
//! fault campaigns reliably drive whole clusters into a state where
//! every site is wedged, every site abstains, and no RECOVER can ever
//! hear a reply.
//!
//! The escape is a pull path to complement the push: a wedged site
//! periodically sends a `VOTE-PROBE` for its pending ticket to the
//! coordinator that issued it (tickets encode the coordinator's site
//! index, so the target is always known). The coordinator answers from
//! the **ledger** ([`OpLedger`]): an append-only file in the data
//! directory, written at the *commit point* of every operation —
//! after the decision, strictly before the coordinator applies the
//! commit to its own replica and before any `COMMIT` frame leaves the
//! host — and replayed at boot, so the record survives a coordinator
//! crash.
//!
//! The answers, and why each direction is sound:
//!
//! * Ticket ledgered as **committed**, prober in the committed
//!   partition: re-send the `COMMIT` itself (state + value). The
//!   prober voted for exactly this operation, so this is the frame it
//!   lost; applying it twice is idempotent. A committed participant is
//!   **never** answered with a release — releasing a stale member of
//!   `P_new` would let it assemble a majority of `P_old` with other
//!   stale sites and fork the partition lineage.
//! * Ticket ledgered as **committed**, prober outside the committed
//!   partition: it voted but was excluded from `P_new` (it lacked the
//!   maximal version). Release it. The excluded sites are a strict
//!   minority of `P_old`, and any group they later join that could win
//!   a decision must contain a `P_new` member whose state dominates —
//!   so freeing their votes cannot fork the lineage.
//! * Ticket ledgered as **released** (the operation aborted): re-send
//!   the release — a decision the coordinator already made.
//! * Ticket from a **dead incarnation** of the coordinator, absent
//!   from the ledger and **above its high-water mark**: the ledger
//!   record is fsync'd before any effect of a commit exists, so an
//!   unledgered ticket provably never committed anywhere — every vote
//!   for it is non-binding and releasable. (Tickets are totally
//!   ordered across incarnations: the boot epoch is salted into bits
//!   32–47.)
//! * Anything else — in flight, or evicted from the bounded in-memory
//!   ring: abstain. The prober stays wedged, which is the safe
//!   direction.

use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use dynvote_core::state::ReplicaState;
use dynvote_types::{SiteId, SiteSet};

/// The durable operation ledger inside a site's data directory.
pub const LEDGER_FILE: &str = "ledger.log";

/// The coordinator site index encoded in a vote ticket (bits 48–63).
#[must_use]
pub fn coordinator_of(ticket: u64) -> usize {
    (ticket >> 48) as usize
}

/// The coordinator boot epoch encoded in a vote ticket (bits 32–47).
#[must_use]
pub fn epoch_of(ticket: u64) -> u64 {
    (ticket >> 32) & 0xFFFF
}

/// The commit content recorded for one operation — what a kept
/// participant's lost `COMMIT` frame carried.
#[derive(Clone, Debug)]
pub struct CommitRecord {
    /// The committed `⟨o, v, P⟩`.
    pub state: ReplicaState,
    /// The write value riding the commit, when there was one.
    pub value: Option<Vec<u8>>,
}

/// How a coordinator answers a vote probe for a ticket it has ledgered.
#[derive(Clone, Debug)]
pub enum ProbeAnswer {
    /// The vote is non-binding for the prober: re-send the release
    /// (with the set of sites that must still hold, so a kept site
    /// that somehow probes is still not freed).
    Release(SiteSet),
    /// The prober is a committed participant: re-send the commit.
    Commit(CommitRecord),
    /// Not in the ledger — in flight, evicted, or from a dead
    /// incarnation. The caller falls back to the high-water rule.
    Unknown,
}

enum LedgerEntry {
    /// The operation reached its commit point with this content.
    Committed(CommitRecord),
    /// The operation aborted; everyone outside `keep` may release.
    Released(SiteSet),
}

const TAG_COMMIT: u8 = 1;
const TAG_RELEASE: u8 = 2;

/// The operation ledger: bounded in memory (old entries are evicted
/// in ticket order, which is issue order), append-only on disk when
/// opened against a data directory. Commit records are fsync'd at the
/// commit point; release records are appended best-effort (losing one
/// only costs liveness — the prober stays wedged — never safety).
pub struct OpLedger {
    entries: BTreeMap<u64, LedgerEntry>,
    order: VecDeque<u64>,
    cap: usize,
    file: Option<File>,
    high_water: u64,
}

impl Default for OpLedger {
    fn default() -> Self {
        OpLedger::new(1024)
    }
}

impl OpLedger {
    /// An in-memory ledger keeping at most `cap` tickets.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        OpLedger {
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
            file: None,
            high_water: 0,
        }
    }

    /// Opens (or creates) the durable ledger in `dir`, replaying every
    /// intact record a previous incarnation appended. Replay stops at
    /// the first truncated or unrecognised record — the torn tail a
    /// crash mid-append leaves behind.
    ///
    /// # Errors
    ///
    /// File creation or the initial read failed.
    pub fn open(dir: &Path) -> std::io::Result<OpLedger> {
        let path = dir.join(LEDGER_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut ledger = OpLedger::default();
        ledger.replay(&bytes);
        ledger.file = Some(file);
        Ok(ledger)
    }

    /// The highest ticket that ever reached its commit point here —
    /// replayed records included. Tickets above it provably never
    /// committed in any dead incarnation of this site.
    #[must_use]
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    fn insert(&mut self, ticket: u64, entry: LedgerEntry) {
        if !self.entries.contains_key(&ticket) {
            if self.order.len() >= self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.entries.remove(&old);
                }
            }
            self.order.push_back(ticket);
        }
        self.entries.insert(ticket, entry);
    }

    /// Records the commit content of `ticket` at its commit point and
    /// makes the record durable (fsync) before returning. The caller
    /// must invoke this before the commit has *any* effect — local
    /// apply included.
    ///
    /// # Errors
    ///
    /// The append or fsync failed. The commit must not proceed on an
    /// error: an unledgered committed ticket looks releasable to the
    /// next incarnation.
    pub fn note_commit(
        &mut self,
        ticket: u64,
        state: ReplicaState,
        value: Option<&Vec<u8>>,
    ) -> std::io::Result<()> {
        if let Some(file) = &mut self.file {
            let mut record = Vec::with_capacity(38 + value.map_or(0, Vec::len));
            record.push(TAG_COMMIT);
            record.extend_from_slice(&ticket.to_le_bytes());
            record.extend_from_slice(&state.op.to_le_bytes());
            record.extend_from_slice(&state.version.to_le_bytes());
            record.extend_from_slice(&state.partition.bits().to_le_bytes());
            match value {
                Some(bytes) => {
                    record.push(1);
                    record.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    record.extend_from_slice(bytes);
                }
                None => record.push(0),
            }
            file.write_all(&record)?;
            file.sync_data()?;
        }
        self.insert(
            ticket,
            LedgerEntry::Committed(CommitRecord {
                state,
                value: value.cloned(),
            }),
        );
        self.high_water = self.high_water.max(ticket);
        Ok(())
    }

    /// Records that `ticket` was released with `keep` still bound —
    /// the moment the release broadcast goes out. Appended without
    /// fsync: a lost release record leaves the prober wedged (safe),
    /// never mis-freed. A ticket already ledgered as committed keeps
    /// its commit record — the post-commit release of the `missing`
    /// set must not downgrade kept participants to releasable.
    pub fn note_release(&mut self, ticket: u64, keep: SiteSet) {
        if matches!(self.entries.get(&ticket), Some(LedgerEntry::Committed(_))) {
            return;
        }
        if let Some(file) = &mut self.file {
            let mut record = [0u8; 17];
            record[0] = TAG_RELEASE;
            record[1..9].copy_from_slice(&ticket.to_le_bytes());
            record[9..17].copy_from_slice(&keep.bits().to_le_bytes());
            let _ = file.write_all(&record);
        }
        self.insert(ticket, LedgerEntry::Released(keep));
    }

    /// Answers a probe from `prober` about `ticket`.
    #[must_use]
    pub fn answer(&self, ticket: u64, prober: SiteId) -> ProbeAnswer {
        match self.entries.get(&ticket) {
            Some(LedgerEntry::Committed(record)) => {
                if record.state.partition.contains(prober) {
                    ProbeAnswer::Commit(record.clone())
                } else {
                    ProbeAnswer::Release(record.state.partition)
                }
            }
            Some(LedgerEntry::Released(keep)) => {
                if keep.contains(prober) {
                    ProbeAnswer::Unknown
                } else {
                    ProbeAnswer::Release(*keep)
                }
            }
            None => ProbeAnswer::Unknown,
        }
    }

    fn replay(&mut self, bytes: &[u8]) {
        let mut at = 0usize;
        let read_u64 = |bytes: &[u8], at: usize| {
            bytes
                .get(at..at + 8)
                .map(|s| u64::from_le_bytes(s.try_into().expect("8-byte slice")))
        };
        while at < bytes.len() {
            match bytes[at] {
                TAG_COMMIT => {
                    let (Some(ticket), Some(op), Some(version), Some(partition)) = (
                        read_u64(bytes, at + 1),
                        read_u64(bytes, at + 9),
                        read_u64(bytes, at + 17),
                        read_u64(bytes, at + 25),
                    ) else {
                        return;
                    };
                    let Some(&flag) = bytes.get(at + 33) else {
                        return;
                    };
                    let mut next = at + 34;
                    let value = if flag == 1 {
                        let Some(len) = bytes
                            .get(next..next + 4)
                            .map(|s| u32::from_le_bytes(s.try_into().expect("4-byte slice")))
                        else {
                            return;
                        };
                        next += 4;
                        let Some(body) = bytes.get(next..next + len as usize) else {
                            return;
                        };
                        next += len as usize;
                        Some(body.to_vec())
                    } else {
                        None
                    };
                    self.insert(
                        ticket,
                        LedgerEntry::Committed(CommitRecord {
                            state: ReplicaState {
                                op,
                                version,
                                partition: SiteSet::from_bits(partition),
                            },
                            value,
                        }),
                    );
                    self.high_water = self.high_water.max(ticket);
                    at = next;
                }
                TAG_RELEASE => {
                    let (Some(ticket), Some(keep)) =
                        (read_u64(bytes, at + 1), read_u64(bytes, at + 9))
                    else {
                        return;
                    };
                    if !matches!(self.entries.get(&ticket), Some(LedgerEntry::Committed(_))) {
                        self.insert(ticket, LedgerEntry::Released(SiteSet::from_bits(keep)));
                    }
                    at += 17;
                }
                // Unrecognised tag: a torn or corrupt tail. Everything
                // before it was intact; stop here.
                _ => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(op: u64, version: u64) -> ReplicaState {
        ReplicaState {
            op,
            version,
            partition: SiteSet::from_iter([0, 1, 2].map(SiteId::new)),
        }
    }

    #[test]
    fn ticket_fields_decode() {
        let ticket = (3u64 << 48) | (7u64 << 32) | 42;
        assert_eq!(coordinator_of(ticket), 3);
        assert_eq!(epoch_of(ticket), 7);
    }

    #[test]
    fn unledgered_tickets_answer_unknown() {
        let ledger = OpLedger::default();
        assert!(matches!(
            ledger.answer(9, SiteId::new(1)),
            ProbeAnswer::Unknown
        ));
    }

    #[test]
    fn committed_tickets_recommit_participants_and_release_the_rest() {
        let mut ledger = OpLedger::default();
        let value = vec![1u8, 2, 3];
        let committed = ReplicaState {
            op: 2,
            version: 5,
            partition: SiteSet::from_iter([0, 2].map(SiteId::new)),
        };
        ledger
            .note_commit(9, committed, Some(&value))
            .expect("in-memory note_commit");
        match ledger.answer(9, SiteId::new(2)) {
            ProbeAnswer::Commit(record) => {
                assert_eq!(record.state.op, 2);
                assert_eq!(record.value.as_deref(), Some(&[1u8, 2, 3][..]));
            }
            other => panic!("expected commit, got {other:?}"),
        }
        // Excluded from P_new: released, never recommitted.
        match ledger.answer(9, SiteId::new(1)) {
            ProbeAnswer::Release(keep) => assert!(keep.contains(SiteId::new(2))),
            other => panic!("expected release, got {other:?}"),
        }
        assert!(matches!(
            ledger.answer(8, SiteId::new(1)),
            ProbeAnswer::Unknown
        ));
    }

    #[test]
    fn post_commit_release_does_not_downgrade_the_commit() {
        let mut ledger = OpLedger::default();
        ledger
            .note_commit(9, state(2, 5), None)
            .expect("in-memory note_commit");
        // The coordinator releases the missing set after the fanout;
        // a kept participant probing later must still get the commit.
        ledger.note_release(9, SiteSet::from_iter([SiteId::new(1)]));
        assert!(matches!(
            ledger.answer(9, SiteId::new(1)),
            ProbeAnswer::Commit(_)
        ));
    }

    #[test]
    fn refusals_ledger_as_releases() {
        let mut ledger = OpLedger::default();
        ledger.note_release(4, SiteSet::EMPTY);
        assert!(matches!(
            ledger.answer(4, SiteId::new(0)),
            ProbeAnswer::Release(keep) if keep.is_empty()
        ));
    }

    #[test]
    fn ledger_evicts_in_issue_order() {
        let mut ledger = OpLedger::new(2);
        ledger.note_release(1, SiteSet::EMPTY);
        ledger.note_release(2, SiteSet::EMPTY);
        ledger.note_release(3, SiteSet::EMPTY);
        assert!(matches!(
            ledger.answer(1, SiteId::new(0)),
            ProbeAnswer::Unknown
        ));
        assert!(matches!(
            ledger.answer(3, SiteId::new(0)),
            ProbeAnswer::Release(_)
        ));
    }

    #[test]
    fn durable_ledger_replays_across_reopen() {
        let dir = std::env::temp_dir().join(format!("dynvote-ledger-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let value = vec![9u8, 8];
        {
            let mut ledger = OpLedger::open(&dir).expect("open ledger");
            assert_eq!(ledger.high_water(), 0);
            ledger
                .note_commit(77, state(3, 2), Some(&value))
                .expect("durable note_commit");
            ledger.note_release(78, SiteSet::EMPTY);
            assert_eq!(ledger.high_water(), 77);
        }
        let reopened = OpLedger::open(&dir).expect("reopen ledger");
        assert_eq!(reopened.high_water(), 77);
        match reopened.answer(77, SiteId::new(1)) {
            ProbeAnswer::Commit(record) => {
                assert_eq!(record.state.version, 2);
                assert_eq!(record.value.as_deref(), Some(&[9u8, 8][..]));
            }
            other => panic!("expected replayed commit, got {other:?}"),
        }
        assert!(matches!(
            reopened.answer(78, SiteId::new(0)),
            ProbeAnswer::Release(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_keeps_the_intact_prefix() {
        let dir = std::env::temp_dir().join(format!("dynvote-ledger-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        {
            let mut ledger = OpLedger::open(&dir).expect("open ledger");
            ledger
                .note_commit(10, state(1, 1), None)
                .expect("durable note_commit");
        }
        // A crash mid-append: half a record of garbage at the tail.
        let mut file = OpenOptions::new()
            .append(true)
            .open(dir.join(LEDGER_FILE))
            .expect("append");
        file.write_all(&[TAG_COMMIT, 0xAA, 0xBB]).expect("tear");
        drop(file);
        let reopened = OpLedger::open(&dir).expect("reopen ledger");
        assert_eq!(reopened.high_water(), 10);
        assert!(matches!(
            reopened.answer(10, SiteId::new(0)),
            ProbeAnswer::Commit(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
