//! The client side: one-shot framed requests, as `dynvote-ctl` (and
//! the loopback integration tests) issue them.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{read_frame, write_frame, Frame};

/// The outcome of one client command, decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The command succeeded.
    Done(String),
    /// A read's value, with the serving site's version.
    Value {
        /// The version number at the serving site.
        version: u64,
        /// The file contents.
        value: Vec<u8>,
    },
    /// The access was refused (the paper's ABORT), with the clause.
    Refused(String),
    /// A status report (key=value lines).
    Report(String),
}

impl Outcome {
    /// Whether the cluster granted the command.
    #[must_use]
    pub fn granted(&self) -> bool {
        !matches!(self, Outcome::Refused(_))
    }
}

fn other(text: String) -> io::Error {
    io::Error::new(io::ErrorKind::Other, text)
}

/// Connects, sends one request frame, reads one response frame.
///
/// # Errors
///
/// Connection or framing failures; a daemon refusal is *not* an error
/// (it decodes to [`Outcome::Refused`]).
pub fn request(addr: &str, frame: &Frame, timeout: Duration) -> io::Result<Outcome> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| other(format!("{addr}: no address")))?;
    let mut stream = TcpStream::connect_timeout(&target, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write_frame(&mut stream, frame)?;
    match read_frame(&mut stream)? {
        Frame::Done { detail } => Ok(Outcome::Done(detail)),
        Frame::Value { version, value } => Ok(Outcome::Value { version, value }),
        Frame::Refused { message } => Ok(Outcome::Refused(message)),
        Frame::Report { text } => Ok(Outcome::Report(text)),
        unexpected => Err(other(format!("unexpected response frame {unexpected:?}"))),
    }
}
