//! The client side: one-shot framed requests, as `dynvote-ctl` (and
//! the loopback integration tests) issue them — hardened so that no
//! call ever hangs on a dead or wedged daemon.
//!
//! Two layers:
//!
//! * [`request_deadline`] — one attempt under a *hard* deadline that
//!   covers the whole exchange (resolve + connect + write + read), with
//!   typed failures: [`ClientError::Timeout`] when the deadline
//!   expires, [`ClientError::Unreachable`] when the daemon is plainly
//!   gone (connection refused/reset), [`ClientError::Protocol`] on a
//!   malformed response.
//! * [`request_retry`] — retries transient failures under the same
//!   overall deadline with capped exponential backoff *plus jitter*, so
//!   a thousand clients stampeding a restarted daemon decorrelate
//!   instead of re-colliding every window.

use std::fmt;
use std::io::{self, Read};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::jitter::Jitter;
use crate::wire::{read_frame, write_frame, Frame, UnavailableReason};

/// A hard deadline as an *absolute* instant, shared by every phase of
/// an exchange — resolve, connect, write, read, and (for the pipelined
/// [`crate::conn::Connection`]) the wait for an out-of-order reply.
///
/// Phases never re-arm from a fresh duration: each asks the deadline
/// what is left *now*, so time one phase consumes (or time spent parked
/// behind other in-flight replies) is charged against the same budget.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    started: Instant,
    ends: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    #[must_use]
    pub fn within(budget: Duration) -> Self {
        let started = Instant::now();
        Deadline {
            started,
            ends: started + budget,
        }
    }

    /// Time since the deadline was armed.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The typed expiry, attributing the full span since arming.
    #[must_use]
    pub fn timeout(&self) -> ClientError {
        ClientError::Timeout {
            elapsed: self.elapsed(),
        }
    }

    /// What is left, or the typed [`ClientError::Timeout`] when the
    /// deadline has passed.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] once the absolute instant is reached.
    pub fn remaining(&self) -> Result<Duration, ClientError> {
        let left = self.ends.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(self.timeout());
        }
        Ok(left)
    }
}

/// A [`Read`] adapter that re-arms the socket read timeout from the
/// absolute deadline before *every* read call. `read_frame` issues
/// separate reads for the length prefix and the body; arming the socket
/// once before the frame (the old behaviour) let each partial read
/// start a fresh window, so a responder dribbling one field per window
/// could hold the caller past the deadline. Re-arming per read caps the
/// whole frame at what the deadline has left.
struct DeadlineRead<'a> {
    stream: &'a TcpStream,
    deadline: &'a Deadline,
}

impl Read for DeadlineRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let left = self
            .deadline
            .remaining()
            .map_err(|_| io::Error::new(io::ErrorKind::TimedOut, "deadline expired"))?;
        self.stream.set_read_timeout(Some(left))?;
        (&mut &*self.stream).read(buf)
    }
}

/// The outcome of one client command, decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The command succeeded.
    Done(String),
    /// A read's value, with the serving site's version.
    Value {
        /// The version number at the serving site.
        version: u64,
        /// The file contents.
        value: Vec<u8>,
    },
    /// The access was refused (the paper's ABORT), with the clause.
    Refused(String),
    /// The site answered promptly that it cannot serve the operation
    /// right now — graceful degradation, with a typed cause.
    Unavailable {
        /// Why the operation cannot be served.
        reason: UnavailableReason,
        /// The refusal prose, with the clause that fired.
        message: String,
    },
    /// A status report (key=value lines).
    Report(String),
    /// The daemon's shard map, as encoded `dynvote-control` bytes.
    ShardMap(Vec<u8>),
    /// The keyed operation routed by a map epoch the daemon no longer
    /// holds. Retryable: refetch the map and reissue.
    Stale {
        /// The daemon's current map epoch.
        epoch: u64,
    },
}

impl Outcome {
    /// Whether the cluster granted the command. A stale-map answer is
    /// not a grant — the operation did not happen — but routers treat
    /// it as retryable rather than failed.
    #[must_use]
    pub fn granted(&self) -> bool {
        !matches!(
            self,
            Outcome::Refused(_) | Outcome::Unavailable { .. } | Outcome::Stale { .. }
        )
    }
}

/// Why one client exchange failed — typed, so callers can distinguish
/// "took too long" from "nobody listening" without parsing strings.
#[derive(Debug)]
pub enum ClientError {
    /// The hard deadline expired before a response frame arrived.
    Timeout {
        /// Time spent before giving up.
        elapsed: Duration,
    },
    /// The daemon is plainly not there: connection refused, reset, or
    /// the address did not resolve. Resolves fast — retrying is the
    /// caller's (or [`request_retry`]'s) choice.
    Unreachable {
        /// The underlying failure.
        detail: String,
    },
    /// The daemon answered with bytes that do not decode to a response
    /// frame (or to any frame a client expects).
    Protocol {
        /// The underlying failure.
        detail: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Timeout { elapsed } => {
                write!(f, "request timed out after {}ms", elapsed.as_millis())
            }
            ClientError::Unreachable { detail } => write!(f, "daemon unreachable: {detail}"),
            ClientError::Protocol { detail } => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ClientError> for io::Error {
    fn from(error: ClientError) -> io::Error {
        let kind = match &error {
            ClientError::Timeout { .. } => io::ErrorKind::TimedOut,
            ClientError::Unreachable { .. } => io::ErrorKind::ConnectionRefused,
            ClientError::Protocol { .. } => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, error.to_string())
    }
}

/// Decodes a response frame into an [`Outcome`] — shared by the
/// one-shot path here and the pipelined [`crate::conn::Connection`].
///
/// # Errors
///
/// [`ClientError::Protocol`] when the frame is not a response type.
pub fn decode_outcome(frame: Frame) -> Result<Outcome, ClientError> {
    match frame {
        Frame::Done { detail } => Ok(Outcome::Done(detail)),
        Frame::Value { version, value } => Ok(Outcome::Value { version, value }),
        Frame::Refused { message } => Ok(Outcome::Refused(message)),
        Frame::Unavailable { reason, message } => Ok(Outcome::Unavailable { reason, message }),
        Frame::Report { text } => Ok(Outcome::Report(text)),
        Frame::ShardMapRep { map } => Ok(Outcome::ShardMap(map)),
        Frame::StaleShardMap { epoch } => Ok(Outcome::Stale { epoch }),
        unexpected => Err(ClientError::Protocol {
            detail: format!("unexpected response frame {unexpected:?}"),
        }),
    }
}

/// Classifies an I/O failure by *when* it happened and what it was.
fn classify(error: &io::Error, started: Instant, connected: bool) -> ClientError {
    match error.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ClientError::Timeout {
            elapsed: started.elapsed(),
        },
        io::ErrorKind::InvalidData => ClientError::Protocol {
            detail: error.to_string(),
        },
        _ if !connected => ClientError::Unreachable {
            detail: error.to_string(),
        },
        // Post-connect resets/EOF: the daemon died mid-exchange. It is
        // gone *now*, which is what Unreachable means to a retrier.
        _ => ClientError::Unreachable {
            detail: error.to_string(),
        },
    }
}

/// Connects, sends one request frame, reads one response frame.
///
/// The legacy `io::Result` surface, kept for existing callers; the
/// deadline is hard (see [`request_deadline`]).
///
/// # Errors
///
/// Connection or framing failures; a daemon refusal is *not* an error
/// (it decodes to [`Outcome::Refused`] / [`Outcome::Unavailable`]).
pub fn request(addr: &str, frame: &Frame, timeout: Duration) -> io::Result<Outcome> {
    request_deadline(addr, frame, timeout).map_err(io::Error::from)
}

/// Connects, sends one request frame, reads one response frame — all
/// under one *hard* deadline. Each socket phase gets only the time the
/// deadline has left, so a daemon that accepts the connection and then
/// goes silent still cannot hold the caller past `deadline`.
///
/// # Errors
///
/// [`ClientError`], typed; a refusal or unavailability answer is *not*
/// an error.
pub fn request_deadline(
    addr: &str,
    frame: &Frame,
    deadline: Duration,
) -> Result<Outcome, ClientError> {
    let deadline = Deadline::within(deadline);
    let started = deadline.started;
    let target = addr
        .to_socket_addrs()
        .map_err(|e| classify(&e, started, false))?
        .next()
        .ok_or_else(|| ClientError::Unreachable {
            detail: format!("{addr}: no address"),
        })?;
    let mut stream = TcpStream::connect_timeout(&target, deadline.remaining()?)
        .map_err(|e| classify(&e, started, false))?;
    stream
        .set_write_timeout(Some(deadline.remaining()?))
        .map_err(|e| classify(&e, started, true))?;
    write_frame(&mut stream, frame).map_err(|e| classify(&e, started, true))?;
    // Read through the deadline adapter: every partial read re-arms
    // from the *absolute* deadline, so the whole response frame —
    // prefix and body, however many reads it takes — shares one budget.
    let response = read_frame(&mut DeadlineRead {
        stream: &stream,
        deadline: &deadline,
    })
    .map_err(|e| classify(&e, started, true))?;
    decode_outcome(response)
}

/// Backoff policy for [`request_retry`]: capped exponential windows,
/// jittered per attempt.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// The first backoff window.
    pub floor: Duration,
    /// The ceiling the window doubles toward.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            floor: Duration::from_millis(25),
            cap: Duration::from_millis(400),
        }
    }
}

/// Issues `frame` repeatedly until the daemon *answers* (grant, refusal,
/// or typed unavailability) or the overall `deadline` runs out.
/// Transient failures — unreachable, reset mid-exchange, a slow
/// attempt — are retried after a jittered, capped-exponential backoff;
/// each attempt's own deadline is whatever the overall one has left.
///
/// The guarantee the fault-campaign workload builds on: this function
/// returns within `deadline` (plus one scheduler wake), and every
/// return is either a decoded answer or [`ClientError::Timeout`].
///
/// # Errors
///
/// [`ClientError::Timeout`] when the deadline ran out; or
/// [`ClientError::Protocol`] when the daemon answered garbage (not
/// retried — a protocol error is a bug, not weather).
pub fn request_retry(
    addr: &str,
    frame: &Frame,
    deadline: Duration,
    policy: RetryPolicy,
    jitter: &mut Jitter,
) -> Result<Outcome, ClientError> {
    let started = Instant::now();
    let ends = started + deadline;
    let mut window = policy.floor.max(Duration::from_millis(1));
    loop {
        let left = ends.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(ClientError::Timeout {
                elapsed: started.elapsed(),
            });
        }
        match request_deadline(addr, frame, left) {
            Ok(outcome) => return Ok(outcome),
            Err(ClientError::Protocol { detail }) => return Err(ClientError::Protocol { detail }),
            Err(ClientError::Timeout { .. }) | Err(ClientError::Unreachable { .. }) => {}
        }
        let wait = jitter.equal_jitter(window);
        let left = ends.saturating_duration_since(Instant::now());
        if left <= wait {
            // Not enough room for another attempt after the backoff.
            std::thread::sleep(left);
            return Err(ClientError::Timeout {
                elapsed: started.elapsed(),
            });
        }
        std::thread::sleep(wait);
        window = (window * 2).min(policy.cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A port with nothing listening: bind, learn the port, release.
    fn dead_addr() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        addr
    }

    #[test]
    fn unreachable_daemon_resolves_fast_and_typed() {
        let addr = dead_addr();
        let started = Instant::now();
        let result = request_deadline(&addr, &Frame::Get, Duration::from_secs(5));
        assert!(
            matches!(result, Err(ClientError::Unreachable { .. })),
            "expected Unreachable, got {result:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "a refused connection must not consume the deadline"
        );
    }

    #[test]
    fn accepted_but_silent_daemon_times_out_at_the_deadline() {
        // A listener that accepts and never answers: the classic hang.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let started = Instant::now();
        let result = request_deadline(&addr, &Frame::Get, Duration::from_millis(300));
        let elapsed = started.elapsed();
        assert!(
            matches!(result, Err(ClientError::Timeout { .. })),
            "expected Timeout, got {result:?}"
        );
        assert!(
            elapsed < Duration::from_secs(3),
            "deadline 300ms but the call took {elapsed:?}"
        );
        drop(hold);
    }

    #[test]
    fn retry_gives_up_within_the_overall_deadline() {
        let addr = dead_addr();
        let mut jitter = Jitter::new(7);
        let started = Instant::now();
        let result = request_retry(
            &addr,
            &Frame::Get,
            Duration::from_millis(400),
            RetryPolicy::default(),
            &mut jitter,
        );
        let elapsed = started.elapsed();
        assert!(matches!(result, Err(ClientError::Timeout { .. })));
        assert!(
            elapsed < Duration::from_secs(3),
            "retry loop overran its deadline: {elapsed:?}"
        );
    }

    #[test]
    fn dribbling_responder_cannot_extend_the_deadline() {
        use std::io::Write;

        // A daemon that answers one byte at a time, each gap shorter
        // than the deadline. With per-*read* timeout arming (the old
        // behaviour) every byte restarts the clock and the exchange
        // runs for seconds; with absolute-deadline re-arming the caller
        // is released once the overall budget is spent.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let dribble = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Drain the request, then dribble a large valid frame.
            let mut sink = [0u8; 256];
            let _ = stream.read(&mut sink);
            let frame = Frame::Done {
                detail: "x".repeat(64),
            };
            for byte in frame.encode() {
                if stream.write_all(&[byte]).is_err() {
                    return;
                }
                let _ = stream.flush();
                std::thread::sleep(Duration::from_millis(100));
            }
        });
        let started = Instant::now();
        let result = request_deadline(&addr, &Frame::Get, Duration::from_millis(400));
        let elapsed = started.elapsed();
        assert!(
            matches!(result, Err(ClientError::Timeout { .. })),
            "expected Timeout, got {result:?}"
        );
        assert!(
            elapsed < Duration::from_millis(1500),
            "dribbled bytes re-armed the deadline: took {elapsed:?} for a 400ms budget"
        );
        if let Err(ClientError::Timeout { elapsed }) = result {
            assert!(
                elapsed >= Duration::from_millis(350),
                "timeout under-attributes time spent waiting: {elapsed:?}"
            );
        }
        drop(dribble);
    }

    #[test]
    fn client_error_maps_to_io_kinds() {
        let timeout = ClientError::Timeout {
            elapsed: Duration::from_millis(10),
        };
        assert_eq!(io::Error::from(timeout).kind(), io::ErrorKind::TimedOut);
        let gone = ClientError::Unreachable {
            detail: "refused".into(),
        };
        assert_eq!(
            io::Error::from(gone).kind(),
            io::ErrorKind::ConnectionRefused
        );
    }
}
