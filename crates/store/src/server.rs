//! The `dynvote-stored` daemon: one site of a live voting cluster.
//!
//! A daemon owns exactly one participant — built with
//! [`ClusterBuilder::build_remote`], so the [`Cluster`] holds only the
//! local node and reaches every other site through a
//! [`TcpTransport`] — and serves one TCP listener for all three frame
//! families:
//!
//! * **peer frames** run the recipient side of Figures 1–3/5–7 via
//!   [`Cluster::serve_at`] — the *same* handler the in-memory
//!   transport's callback invokes, which is the whole point of the
//!   transport seam;
//! * **client data frames** (`put`/`get`/`recover`) run the
//!   coordinator side via [`Cluster::write`]/`read`/`recover`;
//! * **admin frames** mutate the shared [`LinkRules`] to cut or heal
//!   links at runtime, and report status.
//!
//! Concurrency model: one `Mutex<Cluster>` guards all protocol state.
//! A coordinated operation holds the lock across its network
//! exchanges; inbound peer frames wait on the same lock. Two daemons
//! coordinating at each other simultaneously therefore serve each
//! other only between operations — the socket read timeouts bound the
//! wait, the poll's bounded retry absorbs it, and the worst case is an
//! honest `Timeout` refusal, never a deadlock (see DESIGN.md §9).
//!
//! Sessions are persistent and pipelined (DESIGN.md §12): a client may
//! keep one connection open and send any number of
//! [`Frame::Tagged`]-wrapped data requests without waiting; replies
//! come back tagged with the same correlation id, in completion order.
//! Client data operations do not run on the session thread — they
//! queue for the daemon's single *batch worker*, which drains the
//! queue under the cluster lock and serves runs of consecutive writes
//! through one poll/commit quorum exchange ([`Cluster::write_batch`])
//! and runs of reads through one quorum read, then fsyncs once for the
//! whole batch strictly before any acknowledgement leaves. Untagged
//! data frames keep the old one-at-a-time semantics on the wire but
//! share the same batch worker underneath.
//!
//! Every grant and refusal is logged with the paper clause that fired,
//! so a partition experiment reads as a protocol trace.
//!
//! With `--data-dir` the daemon is *durable* (DESIGN.md §10): every
//! protocol event that changes the local ⟨o, v, P⟩, data, or
//! outstanding vote is appended to a fsync'd write-ahead log **before**
//! the matching acknowledgement (state reply, commit ack, or client
//! `Done`) leaves the site — [`sync_durable`] is the single seam every
//! dispatch arm passes through. A restart restores snapshot + WAL and
//! then retries the protocol-level RECOVER (Figures 3/7) in the
//! background to catch up from the majority partition.

use std::fs::File;
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use dynvote_replica::wal::{SiteStore, WalRecord};
use dynvote_replica::{Cluster, ClusterBuilder, MessageKind, Reply};
use dynvote_types::{AccessError, SiteId, SiteSet};

use crate::config::Config;
use crate::probe::{coordinator_of, epoch_of, OpLedger, ProbeAnswer};
use crate::tcp::{LinkRules, TcpTransport};
use crate::wire::{read_frame, write_frame, Frame, UnavailableReason};

/// The paper clause behind a refusal — every ABORT in Figures 1–3/5–7
/// traces back to one of these.
#[must_use]
pub fn refusal_clause(err: &AccessError) -> &'static str {
    match err {
        AccessError::NoQuorum { .. } => {
            "Algorithm 1, step 3: the reachable votes are not a strict majority of the partition set P_m"
        }
        AccessError::TieLost { .. } => {
            "Algorithm 1, tie-break: exactly half of P_m reachable, without its highest-ranked site"
        }
        AccessError::NoCurrentCopy { .. } => {
            "Figures 1/5: no current full copy among the reachable sites"
        }
        AccessError::OriginUnavailable { .. } => {
            "the requesting site belongs to no reachable group"
        }
        AccessError::Timeout { .. } => {
            "bounded retry exhausted: reachable sites stayed silent, so the coordinator cannot rule on the partition"
        }
        AccessError::Indeterminate { .. } => {
            "Figure 2, commit fan-out: the COMMIT did not close at every participant (partial commit)"
        }
    }
}

/// Comma-separated site indices — status/log-friendly [`SiteSet`].
fn fmt_sites(set: SiteSet) -> String {
    let mut out = String::new();
    for site in set.iter() {
        if !out.is_empty() {
            out.push(',');
        }
        out.push_str(&site.index().to_string());
    }
    if out.is_empty() {
        out.push('-');
    }
    out
}

struct Logger {
    site: usize,
    file: Option<Mutex<File>>,
    /// Drop the stderr copy (`--quiet`): under a load driver the
    /// terminal write, not the protocol, would dominate the profile.
    quiet: bool,
}

impl Logger {
    fn log(&self, line: &str) {
        if self.quiet && self.file.is_none() {
            return;
        }
        let stamp = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let full = format!("[{stamp}] S{} {line}", self.site);
        if !self.quiet {
            eprintln!("{full}");
        }
        if let Some(file) = &self.file {
            if let Ok(mut file) = file.lock() {
                let _ = writeln!(file, "{full}");
            }
        }
    }
}

/// A client data operation, decoupled from the session that carried
/// it: the batch worker executes these in queue order.
enum DataOp {
    Put(Vec<u8>),
    Get,
}

/// One queued data operation plus the completion that routes its reply
/// back to whichever session (tagged or legacy) submitted it.
struct PendingData {
    op: DataOp,
    done: Box<dyn FnOnce(Frame) + Send>,
}

struct Daemon {
    cluster: Mutex<Cluster<Vec<u8>, TcpTransport>>,
    links: Arc<LinkRules>,
    local: SiteId,
    policy_name: &'static str,
    log: Logger,
    /// Durable storage — `None` runs the pre-durability in-memory mode.
    store: Option<Mutex<SiteStore>>,
    /// Crash-test hook: abort after a client write's WAL fsync, before
    /// the ack (see `Config::crash_after_wal_append`).
    crash_after_wal_append: bool,
    /// Finished-operation ledger shared with the transport — answers
    /// `VOTE-PROBE` frames without touching the cluster lock.
    ledger: Arc<Mutex<OpLedger>>,
    /// The commit fence a *dead* incarnation left behind: tickets of
    /// older epochs above it provably never started a commit fanout.
    /// `None` without durable storage (epochs are meaningless there).
    boot_fence: Option<u64>,
    /// This incarnation's boot epoch (16-bit, as salted into tickets).
    boot_epoch: Option<u64>,
    /// Peer client addresses, for the wedge-probe loop.
    peers: Vec<(SiteId, String)>,
    /// Wedges resolved by probing (released / late commits applied).
    probe_released: std::sync::atomic::AtomicU64,
    probe_commits: std::sync::atomic::AtomicU64,
    /// The data-operation queue feeding the batch worker.
    batch: mpsc::Sender<PendingData>,
    /// Batch-worker counters for `status`: batches run, operations
    /// served through them, and the largest single batch.
    batch_rounds: AtomicU64,
    batch_ops: AtomicU64,
    batch_max: AtomicU64,
}

/// Folds the local participant's current protocol state into the
/// durable store: diffs ⟨o, v, P⟩ + data + outstanding vote against the
/// store's image and appends the WAL records that close the gap,
/// fsync'ing each. Call this *before* letting any acknowledgement leave
/// the site; on `Ok` the acknowledged state survives a crash.
///
/// Always called with the cluster lock held, so the image diff and the
/// append are atomic with respect to other operations.
fn sync_durable(
    daemon: &Daemon,
    cluster: &Cluster<Vec<u8>, TcpTransport>,
) -> std::io::Result<bool> {
    let Some(store) = &daemon.store else {
        return Ok(false);
    };
    let mut store = store.lock().expect("site store poisoned");
    let state = cluster.state_at(daemon.local);
    let pending = cluster.pending_at(daemon.local);
    let value = cluster
        .copies()
        .contains(daemon.local)
        .then(|| cluster.value_at(daemon.local));
    let mut wrote = false;
    if store.image().state != state || store.image().value != value {
        let value_changed = store.image().value != value;
        store.log(WalRecord::Commit {
            state,
            value: if value_changed { value } else { None },
        })?;
        wrote = true;
    }
    if store.image().pending != pending {
        let record = match pending {
            Some(ticket) => WalRecord::Vote { ticket },
            None => WalRecord::Release {
                ticket: store.image().pending.unwrap_or(0),
            },
        };
        store.log(record)?;
        wrote = true;
    }
    Ok(wrote)
}

/// A running daemon: its bound address and a stop handle.
pub struct ServiceHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The address the daemon is accepting on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop. Connection handler
    /// threads notice the flag at their next idle poll and exit.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the accept loop awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

/// Starts a daemon on the address named in the config, retrying a busy
/// address for up to `config.bind_retry` — a daemon restarted right
/// after a `kill -9` can race the kernel's cleanup of the dead
/// process's sockets on the same port.
///
/// # Errors
///
/// Bad topology descriptions surface as `InvalidInput`; bind failures
/// pass through (after the retry window, for `AddrInUse`).
pub fn start(config: Config) -> std::io::Result<ServiceHandle> {
    let deadline = Instant::now() + config.bind_retry;
    let listener = loop {
        match TcpListener::bind(config.listen_addr()) {
            Ok(listener) => break listener,
            Err(error)
                if error.kind() == std::io::ErrorKind::AddrInUse && Instant::now() < deadline =>
            {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(error) => return Err(error),
        }
    };
    start_on(config, listener)
}

/// Starts a daemon on an already-bound listener — tests bind port 0
/// everywhere first, learn the real addresses, then hand each daemon
/// its listener.
///
/// # Errors
///
/// Bad topology descriptions surface as `InvalidInput`.
pub fn start_on(config: Config, listener: TcpListener) -> std::io::Result<ServiceHandle> {
    let network = config
        .network()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let addr = listener.local_addr()?;
    let links = Arc::new(LinkRules::new());
    let transport = TcpTransport::new(
        config.local,
        &config.peers,
        Arc::clone(&links),
        config.timeouts,
    );
    let ledger = transport.ledger();
    // The durable operation ledger: replay what every dead incarnation
    // recorded at its commit points (the vote-probe answers and the
    // high-water mark of the dead-epoch rule), then swap it into the
    // transport's shared handle so this incarnation's commit points
    // keep appending to it.
    let mut boot_fence = None;
    if let Some(dir) = &config.data_dir {
        std::fs::create_dir_all(dir)?;
        let durable = OpLedger::open(Path::new(dir))?;
        boot_fence = Some(durable.high_water());
        *ledger.lock().expect("op ledger poisoned") = durable;
    }
    let mut cluster = ClusterBuilder::new()
        .network(network)
        .copies(config.copies())
        .witnesses(config.witnesses.iter().copied())
        .protocol(config.policy)
        .build_remote(config.local.index(), transport, config.initial.clone());
    let log = Logger {
        site: config.local.index(),
        file: match &config.log {
            Some(path) => Some(Mutex::new(File::create(path)?)),
            None => None,
        },
        quiet: config.quiet,
    };

    // Durable boot: restore snapshot + WAL replay into the local node,
    // or seed a fresh data directory with the boot state.
    let mut restored_from_disk = false;
    let mut boot_epoch = None;
    let store = match &config.data_dir {
        Some(dir) => {
            let (mut store, restored) = SiteStore::open(Path::new(dir), config.snapshot_every)?;
            if restored.snapshot_was_corrupt {
                log.log("durable restore: snapshot failed validation, moved aside; falling back");
            }
            if restored.used_previous_snapshot {
                log.log(
                    "durable restore: recovered from previous-generation snapshot + parked WAL",
                );
            }
            match restored.wal_tail {
                dynvote_replica::WalTail::Clean => {}
                tail => log.log(&format!("durable restore: WAL tail repaired ({tail})")),
            }
            match restored.image {
                Some(image) => {
                    log.log(&format!(
                        "durable restore: o={} v={} P={{{}}} pending={} seq={} wal_replayed={}",
                        image.state.op,
                        image.state.version,
                        fmt_sites(image.state.partition),
                        image
                            .pending
                            .map_or_else(|| "-".to_string(), |t| t.to_string()),
                        image.seq,
                        restored.replayed,
                    ));
                    cluster.install_durable_state(
                        config.local,
                        image.state,
                        image.value.clone(),
                        image.pending,
                    );
                    restored_from_disk = true;
                }
                None => {
                    let state = cluster.state_at(config.local);
                    let value = cluster
                        .copies()
                        .contains(config.local)
                        .then(|| cluster.value_at(config.local));
                    store.seed(state, cluster.pending_at(config.local), value)?;
                    log.log(&format!("durable boot: fresh data dir seeded at {dir}"));
                }
            }
            // Salt the vote-ticket namespace with the boot epoch: a
            // restarted coordinator must never reissue a pre-crash
            // ticket number, or a site the old incarnation left wedged
            // under it would mistake the new operation for the old one
            // and vote again. 16 bits of epoch inside the site's
            // 48-bit-shifted namespace bounds this to 65 535 restarts
            // before wraparound.
            cluster.advance_ticket_past(
                ((config.local.index() as u64) << 48) | ((store.epoch() & 0xFFFF) << 32),
            );
            boot_epoch = Some(store.epoch() & 0xFFFF);
            Some(Mutex::new(store))
        }
        None => None,
    };

    let policy_name = cluster.protocol().name();
    let (batch_tx, batch_rx) = mpsc::channel();
    let daemon = Arc::new(Daemon {
        cluster: Mutex::new(cluster),
        links,
        local: config.local,
        policy_name,
        log,
        store,
        crash_after_wal_append: config.crash_after_wal_append,
        ledger,
        boot_fence,
        boot_epoch,
        peers: config.peers.clone(),
        probe_released: std::sync::atomic::AtomicU64::new(0),
        probe_commits: std::sync::atomic::AtomicU64::new(0),
        batch: batch_tx,
        batch_rounds: AtomicU64::new(0),
        batch_ops: AtomicU64::new(0),
        batch_max: AtomicU64::new(0),
    });
    daemon.log.log(&format!(
        "dynvote-stored up: policy={policy_name} listen={addr} peers={} durable={}",
        config.peers.len(),
        daemon.store.is_some(),
    ));
    let shutdown = Arc::new(AtomicBool::new(false));
    // The batch worker: the single consumer of the data-operation
    // queue. Every client put/get — pipelined or legacy — funnels
    // through it, which is what lets the daemon amortize one quorum
    // exchange and one fsync over a run of concurrent operations.
    {
        let batch_daemon = Arc::clone(&daemon);
        let batch_shutdown = Arc::clone(&shutdown);
        let _ = std::thread::Builder::new()
            .name(format!("dynvote-batch-{}", config.local.index()))
            .spawn(move || batch_loop(&batch_daemon, &batch_shutdown, &batch_rx));
    }
    // A site restarted from disk holds pre-crash state that may be
    // stale; catch up from the majority partition in the background
    // (serving is already safe — quorum logic refuses what it must).
    if restored_from_disk && !config.boot_recover.is_zero() {
        let recover_daemon = Arc::clone(&daemon);
        let recover_shutdown = Arc::clone(&shutdown);
        let window = config.boot_recover;
        let _ = std::thread::Builder::new()
            .name(format!("dynvote-boot-recover-{}", config.local.index()))
            .spawn(move || boot_recover(&recover_daemon, &recover_shutdown, window));
    }
    // The wedge-probe loop: while this site holds an outstanding vote,
    // periodically ask the ticket's coordinator what became of it (see
    // `crate::probe`). Without it, a single lost RELEASE or COMMIT
    // frame wedges the site until an operator intervenes.
    if !config.peers.is_empty() {
        let probe_daemon = Arc::clone(&daemon);
        let probe_shutdown = Arc::clone(&shutdown);
        let _ = std::thread::Builder::new()
            .name(format!("dynvote-wedge-probe-{}", config.local.index()))
            .spawn(move || wedge_probe_loop(&probe_daemon, &probe_shutdown));
    }
    let accept_shutdown = Arc::clone(&shutdown);
    let idle = config.timeouts.read;
    let accept_thread = std::thread::Builder::new()
        .name(format!("dynvote-accept-{}", config.local.index()))
        .spawn(move || accept_loop(&listener, &daemon, &accept_shutdown, idle))?;
    Ok(ServiceHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

/// Retries the protocol-level RECOVER (Figures 3/7) until it is granted
/// or the boot window elapses — run in the background after a
/// restore-from-disk so a restarted site rejoins the majority partition
/// without an operator in the loop.
fn boot_recover(daemon: &Arc<Daemon>, shutdown: &AtomicBool, window: Duration) {
    let deadline = Instant::now() + window;
    let mut logged_refusal = false;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        {
            let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
            match cluster.recover(daemon.local) {
                Ok(()) => {
                    let state = cluster.state_at(daemon.local);
                    if let Err(error) = sync_durable(daemon, &cluster) {
                        daemon
                            .log
                            .log(&format!("boot RECOVER: durability failure: {error}"));
                    }
                    daemon.log.log(&format!(
                        "boot RECOVER: caught up — o={} v={} P={{{}}}",
                        state.op,
                        state.version,
                        fmt_sites(state.partition)
                    ));
                    return;
                }
                Err(err) if !logged_refusal => {
                    logged_refusal = true;
                    daemon
                        .log
                        .log(&format!("boot RECOVER: not yet — {err}; retrying"));
                }
                Err(_) => {}
            }
        }
        if Instant::now() >= deadline {
            daemon.log.log(
                "boot RECOVER: window elapsed; serving restored state (run `dynvote-ctl recover` once peers are reachable)",
            );
            return;
        }
        std::thread::sleep(Duration::from_millis(250));
    }
}

/// How often a wedged site probes its coordinator.
const WEDGE_PROBE_INTERVAL: Duration = Duration::from_millis(400);

/// Per-probe reply deadline (resolve + connect + exchange).
const WEDGE_PROBE_DEADLINE: Duration = Duration::from_millis(1500);

/// Whether `ticket` was issued by a dead incarnation of this daemon
/// *and* sits above the ledger high-water mark it left — the two facts
/// that together prove the ticket never reached a commit point, so
/// every vote for it is non-binding.
fn dead_and_unfenced(daemon: &Daemon, ticket: u64) -> bool {
    coordinator_of(ticket) == daemon.local.index()
        && match (daemon.boot_epoch, daemon.boot_fence) {
            (Some(epoch), Some(fence)) => epoch_of(ticket) < epoch && ticket > fence,
            _ => false,
        }
}

/// Persists and logs a wedge resolution (the cluster lock is held).
fn note_probe_resolution(
    daemon: &Daemon,
    cluster: &Cluster<Vec<u8>, TcpTransport>,
    ticket: u64,
    what: &str,
) {
    if let Err(error) = sync_durable(daemon, cluster) {
        daemon.log.log(&format!(
            "wedge probe ticket={ticket}: durability failure: {error}"
        ));
    }
    daemon
        .log
        .log(&format!("wedge probe: ticket={ticket} {what}"));
}

/// One raw frame exchange with a peer daemon under a hard deadline —
/// the probe loop speaks peer frames, which the client API's typed
/// outcomes do not carry.
fn probe_exchange(addr: &str, frame: &Frame, deadline: Duration) -> std::io::Result<Frame> {
    use std::net::ToSocketAddrs;
    let ends = Instant::now() + deadline;
    let left = || {
        let left = ends.saturating_duration_since(Instant::now());
        if left.is_zero() {
            Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "probe deadline",
            ))
        } else {
            Ok(left)
        }
    };
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&target, left()?)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(left()?))?;
    write_frame(&mut stream, frame)?;
    stream.set_read_timeout(Some(left()?))?;
    read_frame(&mut stream)
}

/// The wedge-probe loop: while this site holds an outstanding vote,
/// periodically asks the ticket's coordinator what became of it (see
/// `crate::probe` for the soundness argument). Without this pull path
/// a single lost `RELEASE` or `COMMIT` frame wedges the site forever.
fn wedge_probe_loop(daemon: &Arc<Daemon>, shutdown: &AtomicBool) {
    loop {
        std::thread::sleep(WEDGE_PROBE_INTERVAL);
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let pending = {
            let cluster = daemon.cluster.lock().expect("cluster poisoned");
            cluster.pending_at(daemon.local)
        };
        let Some(ticket) = pending else { continue };
        let coordinator = coordinator_of(ticket);
        if coordinator == daemon.local.index() {
            // Wedged on a ticket of a dead incarnation of *ourselves*
            // (the vote is durable; a crash between the commit point
            // and the local apply leaves it outstanding). The replayed
            // ledger or the high-water rule resolves it locally, no
            // network needed. The ledger guard is dropped before the
            // cluster lock is taken — the transport locks in the
            // opposite order.
            let answer = {
                daemon
                    .ledger
                    .lock()
                    .expect("op ledger poisoned")
                    .answer(ticket, daemon.local)
            };
            match answer {
                ProbeAnswer::Commit(record) => {
                    let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
                    if cluster.pending_at(daemon.local) == Some(ticket) {
                        let kind = MessageKind::Commit {
                            op: record.state.op,
                            version: record.state.version,
                            partition: record.state.partition,
                        };
                        let _ = cluster.serve_at(
                            daemon.local,
                            &kind,
                            record.value.as_ref(),
                            ticket,
                            false,
                        );
                        note_probe_resolution(
                            daemon,
                            &cluster,
                            ticket,
                            "own ledgered COMMIT applied",
                        );
                        daemon.probe_commits.fetch_add(1, Ordering::Relaxed);
                    }
                }
                ProbeAnswer::Release(keep) if !keep.contains(daemon.local) => {
                    let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
                    if cluster.pending_at(daemon.local) == Some(ticket) {
                        cluster.local_release(ticket, keep);
                        note_probe_resolution(
                            daemon,
                            &cluster,
                            ticket,
                            "self-released (own ledgered release)",
                        );
                        daemon.probe_released.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => {
                    if dead_and_unfenced(daemon, ticket) {
                        let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
                        if cluster.pending_at(daemon.local) == Some(ticket) {
                            cluster.local_release(ticket, SiteSet::EMPTY);
                            note_probe_resolution(
                                daemon,
                                &cluster,
                                ticket,
                                "self-released (dead own epoch, above high water)",
                            );
                            daemon.probe_released.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            continue;
        }
        let Some((to, addr)) = daemon
            .peers
            .iter()
            .find(|(site, _)| site.index() == coordinator)
            .cloned()
        else {
            continue;
        };
        if daemon.links.is_blocked(to) {
            // The partition surface applies to probes too.
            continue;
        }
        let probe = Frame::VoteProbe {
            ticket,
            from: daemon.local,
            to,
        };
        match probe_exchange(&addr, &probe, WEDGE_PROBE_DEADLINE) {
            Ok(Frame::Release {
                ticket: answered,
                keep,
                ..
            }) if answered == ticket && !keep.contains(daemon.local) => {
                let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
                if cluster.pending_at(daemon.local) == Some(ticket) {
                    cluster.local_release(ticket, keep);
                    note_probe_resolution(daemon, &cluster, ticket, "released by coordinator");
                    daemon.probe_released.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(Frame::Commit {
                ticket: answered,
                state,
                value,
                ..
            }) if answered == ticket => {
                let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
                // Re-check under the lock: only the exact wedge this
                // probe was sent for may be resolved by its reply.
                if cluster.pending_at(daemon.local) == Some(ticket) {
                    let kind = MessageKind::Commit {
                        op: state.op,
                        version: state.version,
                        partition: state.partition,
                    };
                    let _ = cluster.serve_at(daemon.local, &kind, value.as_ref(), ticket, false);
                    note_probe_resolution(daemon, &cluster, ticket, "late COMMIT applied");
                    daemon.probe_commits.fetch_add(1, Ordering::Relaxed);
                }
            }
            _ => {}
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    daemon: &Arc<Daemon>,
    shutdown: &Arc<AtomicBool>,
    idle: Duration,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let daemon = Arc::clone(daemon);
        let shutdown = Arc::clone(shutdown);
        let _ = std::thread::Builder::new()
            .name("dynvote-conn".to_string())
            .spawn(move || handle_connection(&daemon, stream, &shutdown, idle));
    }
}

/// Waits until the stream has a readable byte, EOF, or shutdown.
/// Peeking (instead of reading with a timeout) keeps the frame decoder
/// from ever starting a frame it cannot finish on an idle tick.
fn wait_readable(stream: &TcpStream, shutdown: &AtomicBool) -> bool {
    let mut probe = [0u8; 1];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return false;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return false, // clean close
            Ok(_) => return true,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return false,
        }
    }
}

fn handle_connection(
    daemon: &Arc<Daemon>,
    stream: TcpStream,
    shutdown: &AtomicBool,
    idle: Duration,
) {
    let _ = stream.set_read_timeout(Some(idle));
    let _ = stream.set_write_timeout(Some(idle));
    let _ = stream.set_nodelay(true);
    // Replies completed by the batch worker race replies written inline
    // by this thread, so every write goes through one locked writer.
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut reader = BufReader::with_capacity(64 * 1024, stream);
    loop {
        // Park on the idle poll only when the buffer is drained: the
        // peek sees the socket, not bytes already pulled into the
        // BufReader.
        if reader.buffer().is_empty() && !wait_readable(reader.get_ref(), shutdown) {
            return;
        }
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(e) => {
                if e.kind() == std::io::ErrorKind::InvalidData {
                    daemon
                        .log
                        .log(&format!("conn: malformed frame ({e}), closing"));
                }
                return;
            }
        };
        match frame {
            // Tagged data frames pipeline: queue for the batch worker
            // and read the next frame immediately; the completion
            // writes the tagged reply whenever the worker finishes, in
            // whatever order that happens.
            Frame::Tagged { id, inner } => match *inner {
                Frame::Put { value } => {
                    if !enqueue_data(daemon, DataOp::Put(value), tagged_completion(&writer, id)) {
                        return;
                    }
                }
                Frame::Get => {
                    if !enqueue_data(daemon, DataOp::Get, tagged_completion(&writer, id)) {
                        return;
                    }
                }
                // Every other tagged frame answers inline on this
                // thread — admin and status stay snappy even while the
                // batch worker sits in a slow quorum round (which is
                // exactly what the out-of-order pipelining test pins).
                inner => match dispatch(daemon, inner) {
                    Dispatch::Reply(reply) => {
                        let tagged = Frame::Tagged {
                            id,
                            inner: Box::new(reply),
                        };
                        if write_shared(&writer, &tagged).is_err() {
                            return;
                        }
                    }
                    Dispatch::Silent => {}
                    Dispatch::Close => return,
                },
            },
            // Untagged data frames keep the one-at-a-time wire
            // semantics: queue, wait for the reply, answer, read on.
            Frame::Put { value } => {
                if !serve_legacy_data(daemon, &writer, DataOp::Put(value)) {
                    return;
                }
            }
            Frame::Get => {
                if !serve_legacy_data(daemon, &writer, DataOp::Get) {
                    return;
                }
            }
            frame => match dispatch(daemon, frame) {
                Dispatch::Reply(reply) => {
                    if write_shared(&writer, &reply).is_err() {
                        return;
                    }
                }
                Dispatch::Silent => {}
                Dispatch::Close => return,
            },
        }
    }
}

/// Writes one frame through a session's shared writer.
fn write_shared(writer: &Arc<Mutex<TcpStream>>, frame: &Frame) -> std::io::Result<()> {
    let mut guard = writer.lock().expect("session writer poisoned");
    write_frame(&mut *guard, frame)
}

/// Queues a data operation for the batch worker. `false` means the
/// daemon is shutting down (the queue is gone): close the session.
fn enqueue_data(daemon: &Arc<Daemon>, op: DataOp, done: Box<dyn FnOnce(Frame) + Send>) -> bool {
    daemon.batch.send(PendingData { op, done }).is_ok()
}

/// A completion that wraps the reply in the request's correlation id
/// and writes it through the session's shared writer.
fn tagged_completion(writer: &Arc<Mutex<TcpStream>>, id: u64) -> Box<dyn FnOnce(Frame) + Send> {
    let writer = Arc::clone(writer);
    Box::new(move |reply| {
        let tagged = Frame::Tagged {
            id,
            inner: Box::new(reply),
        };
        let _ = write_shared(&writer, &tagged);
    })
}

/// The legacy (untagged) data path: queue the operation, block this
/// session until the batch worker answers, write the bare reply.
fn serve_legacy_data(daemon: &Arc<Daemon>, writer: &Arc<Mutex<TcpStream>>, op: DataOp) -> bool {
    let (tx, rx) = mpsc::sync_channel(1);
    let done: Box<dyn FnOnce(Frame) + Send> = Box::new(move |reply| {
        let _ = tx.send(reply);
    });
    if !enqueue_data(daemon, op, done) {
        return false;
    }
    // A dropped sender (worker gone at shutdown) unblocks us with Err.
    let Ok(reply) = rx.recv() else { return false };
    write_shared(writer, &reply).is_ok()
}

/// The largest number of queued operations one batch absorbs — bounds
/// the cluster-lock hold and the blast radius of a durability failure.
const BATCH_CAP: usize = 256;

/// The batch worker: single consumer of the data-operation queue.
/// Drains what queued, serves it in runs — consecutive writes become
/// one poll/commit quorum exchange ([`Cluster::write_batch`]),
/// consecutive reads coalesce into one quorum read — then fsyncs once
/// for the whole batch before releasing any reply (DESIGN.md §12).
fn batch_loop(daemon: &Arc<Daemon>, shutdown: &AtomicBool, queue: &mpsc::Receiver<PendingData>) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let first = match queue.recv_timeout(Duration::from_millis(100)) {
            Ok(item) => item,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        // Take the lock first, then drain: every operation that queued
        // while the previous batch held it joins this one.
        let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
        let mut items = vec![first];
        while items.len() < BATCH_CAP {
            match queue.try_recv() {
                Ok(item) => items.push(item),
                Err(_) => break,
            }
        }
        daemon.batch_rounds.fetch_add(1, Ordering::Relaxed);
        daemon
            .batch_ops
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        daemon
            .batch_max
            .fetch_max(items.len() as u64, Ordering::Relaxed);
        run_batch(daemon, &mut cluster, items);
    }
}

/// Serves one drained batch under the cluster lock, syncs durably ONCE,
/// and only then releases the replies — the batched generalisation of
/// fsync-before-ack: no acknowledgement in the batch leaves before the
/// WAL holds every state change the batch made.
fn run_batch(
    daemon: &Arc<Daemon>,
    cluster: &mut Cluster<Vec<u8>, TcpTransport>,
    items: Vec<PendingData>,
) {
    // (completion, reply, Some(op name) when the reply is a grant that
    // a failed fsync must downgrade to a durability refusal).
    type Staged = (Box<dyn FnOnce(Frame) + Send>, Frame, Option<&'static str>);
    let mut replies: Vec<Staged> = Vec::with_capacity(items.len());
    let mut wrote = false;
    let mut iter = items.into_iter().peekable();
    while let Some(item) = iter.next() {
        match item.op {
            DataOp::Put(value) => {
                wrote = true;
                let mut values = vec![value];
                let mut dones = vec![item.done];
                while matches!(iter.peek().map(|next| &next.op), Some(DataOp::Put(_))) {
                    let next = iter.next().expect("peeked");
                    if let DataOp::Put(value) = next.op {
                        values.push(value);
                        dones.push(next.done);
                    }
                }
                let results = cluster.write_batch(daemon.local, values);
                for (done, result) in dones.into_iter().zip(results) {
                    let staged = match result {
                        Ok(op) => {
                            let detail = format!(
                                "committed o={} v={} P={{{}}}",
                                op.op,
                                op.version,
                                fmt_sites(op.participants)
                            );
                            daemon.log.log(&format!(
                                "GRANT write: {detail} — Algorithm 1: the group holds a strict majority of P_m"
                            ));
                            (Frame::Done { detail }, Some("write"))
                        }
                        Err(err) => (refuse(daemon, "write", &err), None),
                    };
                    replies.push((done, staged.0, staged.1));
                }
            }
            DataOp::Get => {
                let mut dones = vec![item.done];
                while matches!(iter.peek().map(|next| &next.op), Some(DataOp::Get)) {
                    dones.push(iter.next().expect("peeked").done);
                }
                // One quorum read serves the run: every waiter queued
                // before the round decided, so each is entitled to
                // exactly this answer.
                let (frame, granted) = match cluster.read(daemon.local) {
                    Ok(value) => {
                        // The version of the value *served*, from the
                        // read's committed history entry — the local
                        // copy may still be stale when a repaired site
                        // reads before running RECOVER.
                        let version = cluster.history().last().map_or_else(
                            || cluster.state_at(daemon.local).version,
                            |op| op.version,
                        );
                        daemon.log.log(&format!(
                            "GRANT read ×{}: v={version} — Algorithm 1: the group holds a strict majority of P_m",
                            dones.len()
                        ));
                        (Frame::Value { version, value }, Some("read"))
                    }
                    Err(err) => (refuse(daemon, "read", &err), None),
                };
                for done in dones {
                    replies.push((done, frame.clone(), granted));
                }
            }
        }
    }
    // Persist regardless of the outcomes: even a refused operation may
    // have changed local state (a partial commit landed).
    let synced = sync_durable(daemon, cluster);
    if wrote && daemon.crash_after_wal_append && matches!(synced, Ok(true)) {
        // Crash-test hook: the WAL holds the commit, the client never
        // hears about it. The restart must serve it anyway —
        // fsync-before-ack, proven from outside.
        daemon
            .log
            .log("crash-after-wal-append: aborting before the ack");
        std::process::abort();
    }
    let fsync_failed = synced.err();
    for (done, frame, granted) in replies {
        let frame = match (&fsync_failed, granted) {
            (Some(error), Some(op)) => durability_refuse(daemon, op, error),
            _ => frame,
        };
        done(frame);
    }
}

enum Dispatch {
    Reply(Frame),
    Silent,
    Close,
}

fn dispatch(daemon: &Arc<Daemon>, frame: Frame) -> Dispatch {
    match frame {
        // ---- peer frames: the recipient side of the protocol --------
        Frame::StartReq {
            ticket,
            from,
            to,
            mark_pending,
        } => {
            if daemon.links.is_blocked(from) {
                return Dispatch::Silent; // partitioned: the frame "never arrived"
            }
            let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
            match cluster.serve_at(to, &MessageKind::StartRequest, None, ticket, mark_pending) {
                Some(Reply::State {
                    op,
                    version,
                    partition,
                }) => {
                    // The vote this reply casts may wedge the site; it
                    // must survive a crash, or the site could vote
                    // again in a conflicting operation. Fsync before
                    // the state reply leaves — abstain if the disk
                    // cannot hold the vote.
                    if let Err(error) = sync_durable(daemon, &cluster) {
                        daemon.log.log(&format!(
                            "abstain: START from S{} ticket={ticket} — durability failure: {error}",
                            from.index()
                        ));
                        return Dispatch::Reply(Frame::Abstain {
                            ticket,
                            from: to,
                            to: from,
                        });
                    }
                    Dispatch::Reply(Frame::StateRep {
                        ticket,
                        from: to,
                        to: from,
                        state: dynvote_core::state::ReplicaState {
                            op,
                            version,
                            partition,
                        },
                    })
                }
                _ => {
                    daemon.log.log(&format!(
                        "abstain: START from S{} ticket={ticket} — outstanding vote wedges this site",
                        from.index()
                    ));
                    Dispatch::Reply(Frame::Abstain {
                        ticket,
                        from: to,
                        to: from,
                    })
                }
            }
        }
        Frame::Commit {
            ticket,
            from,
            to,
            state,
            value,
        } => {
            if daemon.links.is_blocked(from) {
                return Dispatch::Silent;
            }
            let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
            let kind = MessageKind::Commit {
                op: state.op,
                version: state.version,
                partition: state.partition,
            };
            match cluster.serve_at(to, &kind, value.as_ref(), ticket, false) {
                Some(Reply::Ack) => {
                    // Fsync the installed commit before acknowledging
                    // it — an acked commit must survive a crash. A
                    // durability failure stays silent: the coordinator
                    // treats it as a missing ack (partial commit),
                    // which is the honest outcome.
                    if let Err(error) = sync_durable(daemon, &cluster) {
                        daemon.log.log(&format!(
                            "commit from S{} NOT acked — durability failure: {error}",
                            from.index()
                        ));
                        return Dispatch::Silent;
                    }
                    daemon.log.log(&format!(
                        "commit installed from S{}: o={} v={} P={{{}}}",
                        from.index(),
                        state.op,
                        state.version,
                        fmt_sites(state.partition)
                    ));
                    Dispatch::Reply(Frame::CommitAck {
                        ticket,
                        from: to,
                        to: from,
                    })
                }
                _ => Dispatch::Silent,
            }
        }
        Frame::CopyReq { ticket, from, to } => {
            if daemon.links.is_blocked(from) {
                return Dispatch::Silent;
            }
            let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
            match cluster.serve_at(to, &MessageKind::CopyRequest, None, ticket, false) {
                Some(Reply::Copy { version, value }) => Dispatch::Reply(Frame::CopyRep {
                    ticket,
                    from: to,
                    to: from,
                    version,
                    value,
                }),
                _ => Dispatch::Reply(Frame::Abstain {
                    ticket,
                    from: to,
                    to: from,
                }),
            }
        }
        Frame::VoteProbe { ticket, from, .. } => {
            if daemon.links.is_blocked(from) {
                // The simulated partition drops the probe: no reply,
                // the prober times out as it would across a real cut.
                return Dispatch::Close;
            }
            let answer = daemon
                .ledger
                .lock()
                .expect("op ledger poisoned")
                .answer(ticket, from);
            match answer {
                ProbeAnswer::Release(keep) => {
                    daemon.log.log(&format!(
                        "vote probe from S{}: ticket={ticket} finished — re-sent RELEASE",
                        from.index()
                    ));
                    Dispatch::Reply(Frame::Release {
                        ticket,
                        from: daemon.local,
                        keep,
                    })
                }
                ProbeAnswer::Commit(record) => {
                    daemon.log.log(&format!(
                        "vote probe from S{}: ticket={ticket} committed — re-sent COMMIT",
                        from.index()
                    ));
                    Dispatch::Reply(Frame::Commit {
                        ticket,
                        from: daemon.local,
                        to: from,
                        state: record.state,
                        value: record.value,
                    })
                }
                ProbeAnswer::Unknown => {
                    if dead_and_unfenced(daemon, ticket) {
                        daemon.log.log(&format!(
                            "vote probe from S{}: ticket={ticket} is a dead epoch's, above the fence — released",
                            from.index()
                        ));
                        Dispatch::Reply(Frame::Release {
                            ticket,
                            from: daemon.local,
                            keep: SiteSet::EMPTY,
                        })
                    } else {
                        // In flight, evicted, or a dead epoch at or
                        // below the fence: cannot soundly say.
                        Dispatch::Reply(Frame::Abstain {
                            ticket,
                            from: daemon.local,
                            to: from,
                        })
                    }
                }
            }
        }
        Frame::Release { ticket, from, keep } => {
            if !daemon.links.is_blocked(from) {
                let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
                cluster.local_release(ticket, keep);
                // Best-effort: a release that fails to persist only
                // leaves the site wedged after a crash — the safe
                // direction (it abstains until a commit clears it).
                if let Err(error) = sync_durable(daemon, &cluster) {
                    daemon.log.log(&format!(
                        "release ticket={ticket}: durability failure: {error}"
                    ));
                }
            }
            Dispatch::Silent
        }

        // ---- client data frames: the coordinator side ---------------
        // Put/Get never reach dispatch: `handle_connection` intercepts
        // them (tagged or not) and queues them for the batch worker.
        // Arriving here means a peer-loop path sent one — confusion.
        Frame::Put { .. } | Frame::Get | Frame::Tagged { .. } => Dispatch::Close,
        Frame::Recover => {
            let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
            match cluster.recover(daemon.local) {
                Ok(()) => {
                    if let Err(error) = sync_durable(daemon, &cluster) {
                        return Dispatch::Reply(durability_refuse(daemon, "recover", &error));
                    }
                    let state = cluster.state_at(daemon.local);
                    let detail = format!(
                        "recovered: o={} v={} P={{{}}}",
                        state.op,
                        state.version,
                        fmt_sites(state.partition)
                    );
                    daemon.log.log(&format!(
                        "GRANT recover: {detail} — Figure 3/7: majority of P_m reachable, copy refreshed"
                    ));
                    Dispatch::Reply(Frame::Done { detail })
                }
                Err(err) => {
                    if let Err(error) = sync_durable(daemon, &cluster) {
                        daemon
                            .log
                            .log(&format!("recover refusal: durability failure: {error}"));
                    }
                    Dispatch::Reply(refuse(daemon, "recover", &err))
                }
            }
        }

        // ---- admin frames -------------------------------------------
        Frame::Deny { site } => {
            daemon.links.block(site);
            daemon
                .log
                .log(&format!("link cut: S{} denied", site.index()));
            Dispatch::Reply(Frame::Done {
                detail: format!("link to site {} cut", site.index()),
            })
        }
        Frame::Allow { site } => {
            daemon.links.unblock(site);
            daemon
                .log
                .log(&format!("link restored: S{} allowed", site.index()));
            Dispatch::Reply(Frame::Done {
                detail: format!("link to site {} restored", site.index()),
            })
        }
        Frame::HealLinks => {
            daemon.links.clear();
            daemon.log.log("links healed: all rules dropped");
            Dispatch::Reply(Frame::Done {
                detail: "all links restored".to_string(),
            })
        }
        Frame::Status => {
            // `status` doubles as the liveness probe for every harness
            // (fleet boot, nemesis cooldown, smoke scripts). Under
            // faults a quorum round can hold the cluster lock for many
            // seconds of bounded peer timeouts, so blocking here would
            // starve the probe behind queued data operations and make
            // an alive daemon look dead. Spin briefly for the lock;
            // past that, answer `busy=1` — the prober learns the
            // process is up even when no state can be sampled.
            let give_up = Instant::now() + Duration::from_millis(1500);
            loop {
                match daemon.cluster.try_lock() {
                    Ok(cluster) => {
                        break Dispatch::Reply(Frame::Report {
                            text: status_text(daemon, &cluster),
                        });
                    }
                    Err(std::sync::TryLockError::Poisoned(error)) => {
                        panic!("cluster poisoned: {error}")
                    }
                    Err(std::sync::TryLockError::WouldBlock) => {
                        if Instant::now() >= give_up {
                            break Dispatch::Reply(Frame::Report {
                                text: format!("site={}\nbusy=1\n", daemon.local.index()),
                            });
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
        }

        // A response frame arriving as a request is protocol confusion.
        Frame::StateRep { .. }
        | Frame::CommitAck { .. }
        | Frame::CopyRep { .. }
        | Frame::Abstain { .. }
        | Frame::Done { .. }
        | Frame::Value { .. }
        | Frame::Refused { .. }
        | Frame::Unavailable { .. }
        | Frame::Report { .. } => Dispatch::Close,
    }
}

/// The typed cause behind a data-operation refusal — what a client (or
/// the fault-campaign workload) branches on without parsing prose.
#[must_use]
pub fn unavailable_reason(err: &AccessError) -> UnavailableReason {
    match err {
        AccessError::NoQuorum { .. } => UnavailableReason::NoQuorum,
        AccessError::TieLost { .. } => UnavailableReason::TieLost,
        AccessError::NoCurrentCopy { .. } => UnavailableReason::NoCurrentCopy,
        AccessError::OriginUnavailable { .. } => UnavailableReason::OriginDown,
        AccessError::Timeout { .. } => UnavailableReason::PeerSilence,
        AccessError::Indeterminate { .. } => UnavailableReason::Indeterminate,
    }
}

/// A data operation the quorum logic cannot serve answers promptly with
/// a typed [`Frame::Unavailable`] — graceful degradation, never a
/// stall: the client learns *why* (no quorum, tie lost, peers silent…)
/// and decides whether to retry elsewhere.
fn refuse(daemon: &Arc<Daemon>, op: &str, err: &AccessError) -> Frame {
    let clause = refusal_clause(err);
    daemon.log.log(&format!("REFUSE {op}: {err} — {clause}"));
    Frame::Unavailable {
        reason: unavailable_reason(err),
        message: format!("{err} [{clause}]"),
    }
}

/// A granted operation whose durable record could not be fsync'd is
/// refused to the client — the site never acknowledges state its disk
/// does not hold. (The cluster-wide commit may still have landed at the
/// other participants; the refusal message says so.)
fn durability_refuse(daemon: &Arc<Daemon>, op: &str, error: &std::io::Error) -> Frame {
    daemon
        .log
        .log(&format!("REFUSE {op}: local WAL fsync failed: {error}"));
    Frame::Refused {
        message: format!("{op} not acknowledged: local WAL fsync failed ({error}); the operation may have committed at other sites"),
    }
}

/// The `dynvote-ctl status` body: the paper's per-copy state
/// `⟨o_i, v_i, P_i⟩`, the operation counters, and per-link transport
/// health, one `key=value` per line.
fn status_text(daemon: &Arc<Daemon>, cluster: &Cluster<Vec<u8>, TcpTransport>) -> String {
    let state = cluster.state_at(daemon.local);
    let stats = cluster.stats();
    let pending = cluster.pending_sites().contains(daemon.local);
    let mut out = String::new();
    let mut line = |k: &str, v: String| {
        out.push_str(k);
        out.push('=');
        out.push_str(&v);
        out.push('\n');
    };
    line("site", daemon.local.index().to_string());
    line("policy", daemon.policy_name.to_string());
    line("op", state.op.to_string());
    line("version", state.version.to_string());
    line("partition", fmt_sites(state.partition));
    line("pending", pending.to_string());
    if cluster.copies().contains(daemon.local) {
        line(
            "value_len",
            cluster.value_at(daemon.local).len().to_string(),
        );
    } else {
        line("role", "witness".to_string());
    }
    line("reads_ok", stats.reads_ok.to_string());
    line("reads_refused", stats.reads_refused.to_string());
    line("writes_ok", stats.writes_ok.to_string());
    line("writes_refused", stats.writes_refused.to_string());
    line("recovers_ok", stats.recovers_ok.to_string());
    line("recovers_refused", stats.recovers_refused.to_string());
    line("links_blocked", fmt_sites(daemon.links.blocked()));
    line(
        "probe.released",
        daemon.probe_released.load(Ordering::Relaxed).to_string(),
    );
    line(
        "probe.commits",
        daemon.probe_commits.load(Ordering::Relaxed).to_string(),
    );
    line(
        "batch.rounds",
        daemon.batch_rounds.load(Ordering::Relaxed).to_string(),
    );
    line(
        "batch.ops",
        daemon.batch_ops.load(Ordering::Relaxed).to_string(),
    );
    line(
        "batch.max",
        daemon.batch_max.load(Ordering::Relaxed).to_string(),
    );
    match &daemon.store {
        Some(store) => {
            let store = store.lock().expect("site store poisoned");
            line("durability.enabled", "true".to_string());
            line("durability.snapshot_seq", store.snapshot_seq().to_string());
            line("durability.wal_records", store.wal_records().to_string());
            line("durability.wal_bytes", store.wal_bytes().to_string());
            line("durability.last_fsync", store.last_fsync().to_string());
        }
        None => line("durability.enabled", "false".to_string()),
    }
    for (site, peer) in cluster.transport().peer_stats() {
        let prefix = format!("peer.{}", site.index());
        line(&format!("{prefix}.connected"), peer.connected.to_string());
        line(
            &format!("{prefix}.blocked"),
            daemon.links.is_blocked(site).to_string(),
        );
        line(&format!("{prefix}.sends"), peer.sends.to_string());
        line(&format!("{prefix}.failures"), peer.failures.to_string());
        line(&format!("{prefix}.reconnects"), peer.reconnects.to_string());
        line(&format!("{prefix}.backoff_ms"), peer.backoff_ms.to_string());
    }
    out
}
